#include "streamrel/maxflow/residual_graph.hpp"

#include <stdexcept>

namespace streamrel {

ResidualGraph::ResidualGraph(int num_nodes) : num_nodes_(num_nodes) {
  if (num_nodes < 0) throw std::invalid_argument("negative node count");
  adj_.resize(static_cast<std::size_t>(num_nodes));
}

NodeId ResidualGraph::add_node() {
  adj_.emplace_back();
  return num_nodes_++;
}

std::int32_t ResidualGraph::add_arc_pair(NodeId u, NodeId v, Capacity cap_uv,
                                         Capacity cap_vu, EdgeId edge_id) {
  if (u < 0 || u >= num_nodes_ || v < 0 || v >= num_nodes_) {
    throw std::invalid_argument("arc endpoint out of range");
  }
  const auto fwd = static_cast<std::int32_t>(arcs_.size());
  arcs_.push_back(ResidualArc{v, cap_uv, fwd + 1, edge_id});
  arcs_.push_back(ResidualArc{u, cap_vu, fwd, edge_id});
  adj_[static_cast<std::size_t>(u)].push_back(fwd);
  adj_[static_cast<std::size_t>(v)].push_back(fwd + 1);
  return fwd;
}

void ResidualGraph::remove_last_arc_pair() {
  if (arcs_.size() < 2) throw std::logic_error("no arc pair to remove");
  const ResidualArc rev = arcs_.back();   // v -> u
  const ResidualArc fwd = arcs_[arcs_.size() - 2];  // u -> v
  const NodeId u = rev.to;
  const NodeId v = fwd.to;
  auto& adj_u = adj_[static_cast<std::size_t>(u)];
  auto& adj_v = adj_[static_cast<std::size_t>(v)];
  if (adj_u.empty() || adj_v.empty() ||
      adj_u.back() != static_cast<std::int32_t>(arcs_.size() - 2) ||
      adj_v.back() != static_cast<std::int32_t>(arcs_.size() - 1)) {
    throw std::logic_error("last arc pair is not the newest adjacency entry");
  }
  adj_u.pop_back();
  adj_v.pop_back();
  arcs_.pop_back();
  arcs_.pop_back();
}

ResidualGraph ResidualGraph::from_network(const FlowNetwork& net, Mask alive) {
  if (!net.fits_mask()) {
    throw std::invalid_argument("network too large for edge masks");
  }
  ResidualGraph g(net.num_nodes());
  for (EdgeId id = 0; id < net.num_edges(); ++id) {
    if (!test_bit(alive, id)) continue;
    const Edge& e = net.edge(id);
    g.add_arc_pair(e.u, e.v, e.capacity, e.directed() ? 0 : e.capacity, id);
  }
  return g;
}

ResidualGraph ResidualGraph::from_network_all(const FlowNetwork& net) {
  ResidualGraph g(net.num_nodes());
  for (EdgeId id = 0; id < net.num_edges(); ++id) {
    const Edge& e = net.edge(id);
    g.add_arc_pair(e.u, e.v, e.capacity, e.directed() ? 0 : e.capacity, id);
  }
  return g;
}

std::vector<bool> ResidualGraph::residual_reachable(NodeId from) const {
  std::vector<bool> seen(static_cast<std::size_t>(num_nodes_), false);
  std::vector<NodeId> queue{from};
  seen[static_cast<std::size_t>(from)] = true;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    for (std::int32_t ai : adj_[static_cast<std::size_t>(queue[head])]) {
      const ResidualArc& a = arcs_[static_cast<std::size_t>(ai)];
      if (a.cap > 0 && !seen[static_cast<std::size_t>(a.to)]) {
        seen[static_cast<std::size_t>(a.to)] = true;
        queue.push_back(a.to);
      }
    }
  }
  return seen;
}

}  // namespace streamrel
