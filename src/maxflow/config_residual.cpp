#include "streamrel/maxflow/config_residual.hpp"

#include <stdexcept>

namespace streamrel {

void ConfigResidual::add_edge_arc(NodeId u, NodeId v, Capacity cap,
                                  bool directed, EdgeId id) {
  capacity_.push_back(cap);
  eu_.push_back(u);
  ev_.push_back(v);
  directed_.push_back(directed ? std::uint8_t{1} : std::uint8_t{0});
  fwd_.push_back(g_.add_arc_pair(u, v, cap, directed ? 0 : cap, id));
}

ConfigResidual::ConfigResidual(const FlowNetwork& net) : g_(net.num_nodes()) {
  const auto m = static_cast<std::size_t>(net.num_edges());
  capacity_.reserve(m);
  eu_.reserve(m);
  ev_.reserve(m);
  directed_.reserve(m);
  fwd_.reserve(m);
  for (const Edge& e : net.edges()) {
    add_edge_arc(e.u, e.v, e.capacity, e.directed(),
                 static_cast<EdgeId>(fwd_.size()));
  }
}

ConfigResidual::ConfigResidual(const CompiledNetwork& net)
    : g_(net.num_nodes()) {
  const auto m = static_cast<std::size_t>(net.num_edges());
  capacity_.reserve(m);
  eu_.reserve(m);
  ev_.reserve(m);
  directed_.reserve(m);
  fwd_.reserve(m);
  for (EdgeId id = 0; id < net.num_edges(); ++id) {
    add_edge_arc(net.edge_u(id), net.edge_v(id), net.edge_capacity(id),
                 net.edge_directed(id), id);
  }
}

ConfigResidual::ConfigResidual(const NetworkView& view)
    : g_(view.num_nodes()) {
  const auto m = static_cast<std::size_t>(view.num_edges());
  capacity_.reserve(m);
  eu_.reserve(m);
  ev_.reserve(m);
  directed_.reserve(m);
  fwd_.reserve(m);
  for (EdgeId id = 0; id < view.num_edges(); ++id) {
    add_edge_arc(view.edge_u(id), view.edge_v(id), view.edge_capacity(id),
                 view.edge_directed(id), id);
  }
}

void ConfigResidual::add_super_arc(NodeId u, NodeId v, Capacity cap_uv,
                                   Capacity cap_vu) {
  super_arcs_.push_back(
      SuperArc{g_.add_arc_pair(u, v, cap_uv, cap_vu), cap_uv, cap_vu});
}

void ConfigResidual::set_super_arc(std::size_t index, Capacity cap_uv,
                                   Capacity cap_vu) {
  if (index >= super_arcs_.size()) {
    throw std::out_of_range("super arc index out of range");
  }
  super_arcs_[index].cap_uv = cap_uv;
  super_arcs_[index].cap_vu = cap_vu;
}

void ConfigResidual::reset(Mask alive) {
  const int m = num_edges();
  for (EdgeId id = 0; id < m; ++id) {
    const auto i = static_cast<std::size_t>(id);
    const bool up = test_bit(alive, id);
    const Capacity cap = capacity_[i];
    const std::int32_t fi = fwd_[i];
    g_.arc(fi).cap = up ? cap : 0;
    g_.arc(g_.arc(fi).rev).cap = (up && directed_[i] == 0) ? cap : 0;
  }
  for (const SuperArc& sa : super_arcs_) {
    g_.arc(sa.arc).cap = sa.cap_uv;
    g_.arc(g_.arc(sa.arc).rev).cap = sa.cap_vu;
  }
}

void ConfigResidual::reset_with(const std::vector<bool>& alive) {
  if (alive.size() != static_cast<std::size_t>(num_edges())) {
    throw std::invalid_argument("alive vector size mismatch");
  }
  const int m = num_edges();
  for (EdgeId id = 0; id < m; ++id) {
    const auto i = static_cast<std::size_t>(id);
    const bool up = alive[i];
    const Capacity cap = capacity_[i];
    const std::int32_t fi = fwd_[i];
    g_.arc(fi).cap = up ? cap : 0;
    g_.arc(g_.arc(fi).rev).cap = (up && directed_[i] == 0) ? cap : 0;
  }
  for (const SuperArc& sa : super_arcs_) {
    g_.arc(sa.arc).cap = sa.cap_uv;
    g_.arc(g_.arc(sa.arc).rev).cap = sa.cap_vu;
  }
}

}  // namespace streamrel
