#include "streamrel/maxflow/config_residual.hpp"

#include <stdexcept>

namespace streamrel {

ConfigResidual::ConfigResidual(const FlowNetwork& net)
    : net_(&net), g_(net.num_nodes()) {
  fwd_.reserve(static_cast<std::size_t>(net.num_edges()));
  for (EdgeId id = 0; id < net.num_edges(); ++id) {
    const Edge& e = net.edge(id);
    fwd_.push_back(g_.add_arc_pair(e.u, e.v, e.capacity,
                                   e.directed() ? 0 : e.capacity, id));
  }
}

void ConfigResidual::add_super_arc(NodeId u, NodeId v, Capacity cap_uv,
                                   Capacity cap_vu) {
  super_arcs_.push_back(
      SuperArc{g_.add_arc_pair(u, v, cap_uv, cap_vu), cap_uv, cap_vu});
}

void ConfigResidual::set_super_arc(std::size_t index, Capacity cap_uv,
                                   Capacity cap_vu) {
  if (index >= super_arcs_.size()) {
    throw std::out_of_range("super arc index out of range");
  }
  super_arcs_[index].cap_uv = cap_uv;
  super_arcs_[index].cap_vu = cap_vu;
}

void ConfigResidual::reset(Mask alive) {
  for (EdgeId id = 0; id < net_->num_edges(); ++id) {
    const Edge& e = net_->edge(id);
    const bool up = test_bit(alive, id);
    const std::int32_t fi = fwd_[static_cast<std::size_t>(id)];
    g_.arc(fi).cap = up ? e.capacity : 0;
    g_.arc(g_.arc(fi).rev).cap = (up && !e.directed()) ? e.capacity : 0;
  }
  for (const SuperArc& sa : super_arcs_) {
    g_.arc(sa.arc).cap = sa.cap_uv;
    g_.arc(g_.arc(sa.arc).rev).cap = sa.cap_vu;
  }
}

void ConfigResidual::reset_with(const std::vector<bool>& alive) {
  if (alive.size() != static_cast<std::size_t>(net_->num_edges())) {
    throw std::invalid_argument("alive vector size mismatch");
  }
  for (EdgeId id = 0; id < net_->num_edges(); ++id) {
    const Edge& e = net_->edge(id);
    const bool up = alive[static_cast<std::size_t>(id)];
    const std::int32_t fi = fwd_[static_cast<std::size_t>(id)];
    g_.arc(fi).cap = up ? e.capacity : 0;
    g_.arc(g_.arc(fi).rev).cap = (up && !e.directed()) ? e.capacity : 0;
  }
  for (const SuperArc& sa : super_arcs_) {
    g_.arc(sa.arc).cap = sa.cap_uv;
    g_.arc(g_.arc(sa.arc).rev).cap = sa.cap_vu;
  }
}

}  // namespace streamrel
