#include "streamrel/maxflow/push_relabel.hpp"

#include <deque>
#include <limits>

namespace streamrel {

Capacity PushRelabelSolver::solve(ResidualGraph& g, NodeId s, NodeId t,
                                  Capacity limit) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  const int ni = static_cast<int>(n);
  excess_.assign(n, 0);
  height_.assign(n, 0);
  height_count_.assign(2 * n + 2, 0);
  height_[static_cast<std::size_t>(s)] = ni;
  height_count_[0] = ni - 1;
  height_count_[n] = 1;

  std::deque<NodeId> active;
  auto activate = [&](NodeId v) {
    if (v != s && v != t && excess_[static_cast<std::size_t>(v)] > 0) {
      active.push_back(v);
    }
  };

  // Saturate all source arcs.
  for (std::int32_t ai : g.out_arcs(s)) {
    ResidualArc& a = g.arc(ai);
    if (a.cap > 0 && a.to != s) {
      const Capacity amt = a.cap;
      const bool was_inactive = excess_[static_cast<std::size_t>(a.to)] == 0;
      g.push(ai, amt);
      excess_[static_cast<std::size_t>(a.to)] += amt;
      excess_[static_cast<std::size_t>(s)] -= amt;
      if (was_inactive) activate(a.to);
    }
  }

  while (!active.empty()) {
    const NodeId v = active.front();
    active.pop_front();
    const auto vi = static_cast<std::size_t>(v);
    // Discharge v completely before moving on (FIFO discipline).
    while (excess_[vi] > 0) {
      bool pushed_any = false;
      for (std::int32_t ai : g.out_arcs(v)) {
        ResidualArc& a = g.arc(ai);
        if (a.cap <= 0 ||
            height_[vi] != height_[static_cast<std::size_t>(a.to)] + 1) {
          continue;
        }
        const Capacity amt = excess_[vi] < a.cap ? excess_[vi] : a.cap;
        const bool was_inactive = excess_[static_cast<std::size_t>(a.to)] == 0;
        g.push(ai, amt);
        excess_[vi] -= amt;
        excess_[static_cast<std::size_t>(a.to)] += amt;
        if (was_inactive) activate(a.to);
        pushed_any = true;
        if (excess_[vi] == 0) break;
      }
      if (excess_[vi] == 0) break;
      if (pushed_any) continue;

      // Relabel v to one above its lowest residual neighbour.
      int min_h = std::numeric_limits<int>::max();
      for (std::int32_t ai : g.out_arcs(v)) {
        const ResidualArc& a = g.arc(ai);
        if (a.cap > 0) {
          min_h = std::min(min_h, height_[static_cast<std::size_t>(a.to)]);
        }
      }
      if (min_h == std::numeric_limits<int>::max()) break;  // stranded excess
      const int old_h = height_[vi];
      const int new_h = std::min(min_h + 1, 2 * ni + 1);
      height_count_[static_cast<std::size_t>(old_h)]--;
      height_[vi] = new_h;
      height_count_[static_cast<std::size_t>(new_h)]++;

      // Gap heuristic: if level old_h just emptied and lies below n, no
      // node with height in (old_h, n] can reach t anymore — lift them
      // all past n so they drain back towards s.
      if (height_count_[static_cast<std::size_t>(old_h)] == 0 && old_h < ni) {
        for (std::size_t u = 0; u < n; ++u) {
          if (u == static_cast<std::size_t>(s)) continue;
          if (height_[u] > old_h && height_[u] <= ni) {
            height_count_[static_cast<std::size_t>(height_[u])]--;
            height_[u] = ni + 1;
            height_count_[static_cast<std::size_t>(height_[u])]++;
          }
        }
      }
      if (height_[vi] > 2 * ni) break;  // cannot reach anything useful
    }
  }

  const Capacity value = excess_[static_cast<std::size_t>(t)];
  decompose_excess_back_to_source(g, s, t);
  if (limit != kUnbounded && value > limit) return limit;
  return value;
}

void PushRelabelSolver::decompose_excess_back_to_source(ResidualGraph& g,
                                                        NodeId s, NodeId t) {
  // Phase 2: nodes may hold excess that never reached t. Return each
  // excess unit to s along residual arcs (such paths exist by preflow
  // decomposition), leaving a valid maximum flow so callers can extract
  // min cuts from the residual graph. BFS per drain keeps this simple.
  const auto n = static_cast<std::size_t>(g.num_nodes());
  std::vector<std::int32_t> parent(n);
  for (std::size_t v = 0; v < n; ++v) {
    while (v != static_cast<std::size_t>(s) &&
           v != static_cast<std::size_t>(t) && excess_[v] > 0) {
      parent.assign(n, -1);
      std::vector<NodeId> queue{static_cast<NodeId>(v)};
      bool found = false;
      for (std::size_t head = 0; head < queue.size() && !found; ++head) {
        for (std::int32_t ai : g.out_arcs(queue[head])) {
          const ResidualArc& a = g.arc(ai);
          if (a.cap <= 0) continue;
          const auto to = static_cast<std::size_t>(a.to);
          if (to == v || parent[to] != -1) continue;
          parent[to] = ai;
          if (a.to == s) {
            found = true;
            break;
          }
          queue.push_back(a.to);
        }
      }
      if (!found) break;  // cannot happen for a valid preflow
      // Bottleneck along v -> s, capped by the excess.
      Capacity amt = excess_[v];
      for (NodeId x = s; x != static_cast<NodeId>(v);) {
        const ResidualArc& a = g.arc(parent[static_cast<std::size_t>(x)]);
        if (a.cap < amt) amt = a.cap;
        x = g.arc(a.rev).to;
      }
      for (NodeId x = s; x != static_cast<NodeId>(v);) {
        const std::int32_t ai = parent[static_cast<std::size_t>(x)];
        g.push(ai, amt);
        x = g.arc(g.arc(ai).rev).to;
      }
      excess_[v] -= amt;
    }
  }
}

}  // namespace streamrel
