#pragma once
// Shared result/option types for the exact reliability algorithms.

#include <cstdint>

#include "maxflow/maxflow.hpp"

namespace streamrel {

/// Result of an exact reliability computation, with work counters the
/// benches report alongside wall-clock time.
struct ReliabilityResult {
  double reliability = 0.0;
  std::uint64_t configurations = 0;  ///< failure configurations visited
  std::uint64_t maxflow_calls = 0;   ///< feasibility subproblems solved
};

}  // namespace streamrel
