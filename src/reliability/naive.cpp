#include "streamrel/reliability/naive.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "streamrel/maxflow/config_residual.hpp"
#include "streamrel/maxflow/incremental_dinic.hpp"
#include "streamrel/util/config_prob.hpp"
#include "streamrel/util/stats.hpp"
#include "streamrel/util/trace.hpp"

namespace streamrel {

namespace {

// Sequential from-scratch sweep over an inclusive mask range; shared by
// the sequential and parallel strategies. Polls the context every
// kPollStride configurations; on a stop it sets `aborted` (shared across
// shards) and returns the number of configurations it actually visited.
std::uint64_t sweep_range(const FlowNetwork& net, const FlowDemand& demand,
                          MaxFlowAlgorithm algorithm,
                          const ConfigProbTable& probs, Mask first, Mask last,
                          KahanSum& sum, std::uint64_t& maxflow_calls,
                          const ExecContext* ctx, std::atomic<bool>& aborted) {
  ConfigResidual residual(net);
  auto solver = make_solver(algorithm);
  ProgressMarker progress(exec_progress(ctx));
  std::uint64_t visited = 0;
  for (Mask alive = first;; ++alive) {
    if (((alive - first) & (ExecContext::kPollStride - 1)) == 0) {
      if (ctx &&
          (aborted.load(std::memory_order_relaxed) || ctx->should_stop())) {
        aborted.store(true, std::memory_order_relaxed);
        break;
      }
      progress.at(visited);
    }
    residual.reset(alive);
    ++maxflow_calls;
    ++visited;
    STREAMREL_TRACE_SAMPLED_SPAN(mf_span, maxflow_calls, "maxflow", "maxflow");
    if (solver->solve(residual.graph(), demand.source, demand.sink,
                      demand.rate) >= demand.rate) {
      sum.add(probs.prob(alive));
    }
    if (alive == last) break;
  }
  progress.at(visited);
  return visited;
}

ReliabilityResult naive_gray(const FlowNetwork& net, const FlowDemand& demand,
                             const ConfigProbTable& probs,
                             const ExecContext* ctx) {
  ReliabilityResult result;
  std::uint64_t configurations = 0;
  KahanSum sum;
  IncrementalMaxFlow inc(net, demand);

  // Gray-code walk: step i toggles one edge, moving from configuration
  // gray_code(i) to gray_code(i+1). The walk starts at gray_code(0) = 0
  // (all edges dead), so kill every edge first.
  for (EdgeId id = 0; id < net.num_edges(); ++id) {
    inc.set_edge_alive(id, false);
  }
  const Mask total = Mask{1} << net.num_edges();
  ProgressMarker progress(exec_progress(ctx));
  for (Mask i = 0;; ++i) {
    if ((i & (ExecContext::kPollStride - 1)) == 0) {
      if (ctx && ctx->should_stop()) {
        result.status = ctx->stop_status();
        break;
      }
      progress.at(i);
    }
    const Mask alive = gray_code(i);
    ++configurations;
    STREAMREL_TRACE_SAMPLED_SPAN(mf_span, i, "maxflow_sync", "maxflow");
    if (inc.admits()) sum.add(probs.prob(alive));
    if (i + 1 == total) break;
    const int flip = gray_flip_bit(i);
    inc.set_edge_alive(flip, !test_bit(alive, flip));
  }
  progress.at(configurations);
  result.telemetry.counter(telemetry_keys::kConfigurations) = configurations;
  // One repair per step.
  result.telemetry.counter(telemetry_keys::kMaxflowCalls) = configurations;
  result.reliability = sum.value();
  return result;
}

}  // namespace

ReliabilityResult reliability_naive(const FlowNetwork& net,
                                    const FlowDemand& demand,
                                    const NaiveOptions& options,
                                    const ExecContext* ctx) {
  net.check_demand(demand);
  if (!net.fits_mask()) {
    throw std::invalid_argument(
        "naive reliability requires <= 63 edges (2^|E| enumeration)");
  }
  const ConfigProbTable probs(net.failure_probs());
  const Mask total = Mask{1} << net.num_edges();

  if (ProgressReporter* progress = exec_progress(ctx)) {
    progress->add_total(static_cast<std::uint64_t>(total));
  }

  if (options.strategy == NaiveStrategy::kGrayIncremental) {
    return naive_gray(net, demand, probs, ctx);
  }

  ReliabilityResult result;
  std::uint64_t configurations = 0;
  std::uint64_t maxflow_calls = 0;
  std::atomic<bool> aborted{false};

#ifdef _OPENMP
  if (options.strategy == NaiveStrategy::kParallel && total >= 1024) {
    const int threads = static_cast<int>(std::min<Mask>(
        static_cast<Mask>(exec_resolved_threads(ctx)), total));
    std::vector<KahanSum> sums(static_cast<std::size_t>(threads));
    std::vector<std::uint64_t> calls(static_cast<std::size_t>(threads), 0);
    std::vector<std::uint64_t> visited(static_cast<std::size_t>(threads), 0);
#pragma omp parallel num_threads(threads)
    {
      const auto tid = static_cast<std::size_t>(omp_get_thread_num());
      const Mask chunk = total / static_cast<Mask>(threads);
      const Mask first = static_cast<Mask>(tid) * chunk;
      const Mask last = (tid + 1 == static_cast<std::size_t>(threads))
                            ? total - 1
                            : first + chunk - 1;
      visited[tid] = sweep_range(net, demand, options.algorithm, probs, first,
                                 last, sums[tid], calls[tid], ctx, aborted);
    }
    KahanSum sum;
    for (std::size_t i = 0; i < sums.size(); ++i) {
      sum.merge(sums[i]);
      maxflow_calls += calls[i];
      configurations += visited[i];
    }
    result.reliability = sum.value();
    if (aborted.load(std::memory_order_relaxed) && ctx) {
      result.status = ctx->stop_status();
    }
    result.telemetry.counter(telemetry_keys::kConfigurations) =
        result.exact() ? total : configurations;
    result.telemetry.counter(telemetry_keys::kMaxflowCalls) = maxflow_calls;
    return result;
  }
#endif

  KahanSum sum;
  configurations = sweep_range(net, demand, options.algorithm, probs, 0,
                               total - 1, sum, maxflow_calls, ctx, aborted);
  result.reliability = sum.value();
  if (aborted.load(std::memory_order_relaxed) && ctx) {
    result.status = ctx->stop_status();
  }
  result.telemetry.counter(telemetry_keys::kConfigurations) =
      result.exact() ? total : configurations;
  result.telemetry.counter(telemetry_keys::kMaxflowCalls) = maxflow_calls;
  return result;
}

}  // namespace streamrel
