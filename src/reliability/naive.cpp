#include "reliability/naive.hpp"

#include <stdexcept>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "maxflow/config_residual.hpp"
#include "maxflow/incremental_dinic.hpp"
#include "util/config_prob.hpp"
#include "util/stats.hpp"

namespace streamrel {

namespace {

// Sequential from-scratch sweep over an inclusive mask range; shared by
// the sequential and parallel strategies.
void sweep_range(const FlowNetwork& net, const FlowDemand& demand,
                 MaxFlowAlgorithm algorithm, const ConfigProbTable& probs,
                 Mask first, Mask last, KahanSum& sum,
                 std::uint64_t& maxflow_calls) {
  ConfigResidual residual(net);
  auto solver = make_solver(algorithm);
  for (Mask alive = first;; ++alive) {
    residual.reset(alive);
    ++maxflow_calls;
    if (solver->solve(residual.graph(), demand.source, demand.sink,
                      demand.rate) >= demand.rate) {
      sum.add(probs.prob(alive));
    }
    if (alive == last) break;
  }
}

ReliabilityResult naive_gray(const FlowNetwork& net, const FlowDemand& demand,
                             const ConfigProbTable& probs) {
  ReliabilityResult result;
  KahanSum sum;
  IncrementalMaxFlow inc(net, demand);

  // Gray-code walk: step i toggles one edge, moving from configuration
  // gray_code(i) to gray_code(i+1). The walk starts at gray_code(0) = 0
  // (all edges dead), so kill every edge first.
  for (EdgeId id = 0; id < net.num_edges(); ++id) {
    inc.set_edge_alive(id, false);
  }
  const Mask total = Mask{1} << net.num_edges();
  for (Mask i = 0;; ++i) {
    const Mask alive = gray_code(i);
    ++result.configurations;
    if (inc.admits()) sum.add(probs.prob(alive));
    if (i + 1 == total) break;
    const int flip = gray_flip_bit(i);
    inc.set_edge_alive(flip, !test_bit(alive, flip));
  }
  result.maxflow_calls = result.configurations;  // one repair per step
  result.reliability = sum.value();
  return result;
}

}  // namespace

ReliabilityResult reliability_naive(const FlowNetwork& net,
                                    const FlowDemand& demand,
                                    const NaiveOptions& options) {
  net.check_demand(demand);
  if (!net.fits_mask()) {
    throw std::invalid_argument(
        "naive reliability requires <= 63 edges (2^|E| enumeration)");
  }
  const ConfigProbTable probs(net.failure_probs());
  const Mask total = Mask{1} << net.num_edges();

  if (options.strategy == NaiveStrategy::kGrayIncremental) {
    return naive_gray(net, demand, probs);
  }

  ReliabilityResult result;
  result.configurations = total;

#ifdef _OPENMP
  if (options.strategy == NaiveStrategy::kParallel && total >= 1024) {
    const int threads = omp_get_max_threads();
    std::vector<KahanSum> sums(static_cast<std::size_t>(threads));
    std::vector<std::uint64_t> calls(static_cast<std::size_t>(threads), 0);
#pragma omp parallel num_threads(threads)
    {
      const auto tid = static_cast<std::size_t>(omp_get_thread_num());
      const Mask chunk = total / static_cast<Mask>(threads);
      const Mask first = static_cast<Mask>(tid) * chunk;
      const Mask last = (tid + 1 == static_cast<std::size_t>(threads))
                            ? total - 1
                            : first + chunk - 1;
      sweep_range(net, demand, options.algorithm, probs, first, last,
                  sums[tid], calls[tid]);
    }
    KahanSum sum;
    for (std::size_t i = 0; i < sums.size(); ++i) {
      sum.merge(sums[i]);
      result.maxflow_calls += calls[i];
    }
    result.reliability = sum.value();
    return result;
  }
#endif

  KahanSum sum;
  sweep_range(net, demand, options.algorithm, probs, 0, total - 1, sum,
              result.maxflow_calls);
  result.reliability = sum.value();
  return result;
}

}  // namespace streamrel
