#include "streamrel/reliability/frontier.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "streamrel/util/stats.hpp"

namespace streamrel {

namespace {

// A DP state: for each frontier slot, the id of its connected block.
// Block ids are canonicalized to first-occurrence order, so equal
// partitions hash equally. Slot 0 is ALWAYS s's block and slot 1 t's
// (s and t never retire), hence "s connected to t" is simply
// key[0] == key[1] — those states are folded into the success
// accumulator immediately and never stored.
using StateKey = std::vector<std::uint8_t>;

struct KeyHash {
  std::size_t operator()(const StateKey& key) const noexcept {
    std::size_t h = 1469598103934665603ULL;
    for (std::uint8_t b : key) {
      h ^= b;
      h *= 1099511628211ULL;
    }
    return h;
  }
};

using StateMap = std::unordered_map<StateKey, double, KeyHash>;

// Orders edges by BFS discovery from s so the frontier stays a quasi
// "wavefront" (small for path-like and grid-like networks).
std::vector<EdgeId> bfs_edge_order(const FlowNetwork& net, NodeId s) {
  std::vector<bool> seen_node(static_cast<std::size_t>(net.num_nodes()),
                              false);
  std::vector<bool> seen_edge(static_cast<std::size_t>(net.num_edges()),
                              false);
  std::vector<EdgeId> order;
  order.reserve(static_cast<std::size_t>(net.num_edges()));
  std::vector<NodeId> queue{s};
  seen_node[static_cast<std::size_t>(s)] = true;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    for (EdgeId id : net.incident_edges(queue[head])) {
      if (seen_edge[static_cast<std::size_t>(id)]) continue;
      seen_edge[static_cast<std::size_t>(id)] = true;
      order.push_back(id);
      const NodeId other = net.edge(id).other(queue[head]);
      if (!seen_node[static_cast<std::size_t>(other)]) {
        seen_node[static_cast<std::size_t>(other)] = true;
        queue.push_back(other);
      }
    }
  }
  // Edges in components unreachable from s can never matter; append them
  // anyway so the probability space stays complete (they only multiply
  // by 1 overall).
  for (EdgeId id = 0; id < net.num_edges(); ++id) {
    if (!seen_edge[static_cast<std::size_t>(id)]) order.push_back(id);
  }
  return order;
}

// Renumbers block ids to first-occurrence order.
void canonicalize(StateKey& key) {
  std::uint8_t next = 0;
  std::array<std::uint8_t, 256> remap;
  remap.fill(0xff);
  for (std::uint8_t& b : key) {
    if (remap[b] == 0xff) remap[b] = next++;
    b = remap[b];
  }
}

}  // namespace

ReliabilityResult reliability_connectivity(const FlowNetwork& net,
                                           const FlowDemand& demand,
                                           const FrontierOptions& options,
                                           const ExecContext* ctx) {
  net.check_demand(demand);
  if (demand.rate != 1) {
    throw std::invalid_argument(
        "connectivity reliability requires demand rate 1; use the "
        "flow-based algorithms for d > 1");
  }
  for (const Edge& e : net.edges()) {
    if (e.directed()) {
      throw std::invalid_argument(
          "connectivity reliability requires an undirected network");
    }
  }

  // Usable edges only (capacity 0 cannot carry the sub-stream; its
  // failure state marginalizes out).
  const std::vector<EdgeId> order = bfs_edge_order(net, demand.source);
  std::vector<EdgeId> edges;
  for (EdgeId id : order) {
    if (net.edge(id).capacity >= 1) edges.push_back(id);
  }

  // Remaining-degree per node over usable edges: a node retires when its
  // count hits zero (s and t never retire).
  std::vector<int> remaining(static_cast<std::size_t>(net.num_nodes()), 0);
  for (EdgeId id : edges) {
    remaining[static_cast<std::size_t>(net.edge(id).u)]++;
    remaining[static_cast<std::size_t>(net.edge(id).v)]++;
  }

  // Frontier layout: slot per live vertex. Slots 0 and 1 are pinned to s
  // and t. `slot_of[node]` = current slot or -1.
  std::vector<int> slot_of(static_cast<std::size_t>(net.num_nodes()), -1);
  std::vector<NodeId> node_at{demand.source, demand.sink};
  slot_of[static_cast<std::size_t>(demand.source)] = 0;
  slot_of[static_cast<std::size_t>(demand.sink)] = 1;

  StateMap states;
  states[StateKey{0, 1}] = 1.0;  // s and t in singleton blocks
  KahanSum success;
  ReliabilityResult result;
  std::uint64_t states_visited = 0;

  for (EdgeId id : edges) {
    if (ctx && ctx->should_stop()) {
      result.status = ctx->stop_status();
      break;
    }
    const Edge& e = net.edge(id);
    // Ensure both endpoints have slots.
    for (NodeId n : {e.u, e.v}) {
      if (slot_of[static_cast<std::size_t>(n)] == -1) {
        slot_of[static_cast<std::size_t>(n)] =
            static_cast<int>(node_at.size());
        node_at.push_back(n);
        // Entering vertex becomes a fresh singleton block in every state.
        StateMap grown;
        grown.reserve(states.size());
        for (auto& [key, prob] : states) {
          StateKey next = key;
          next.push_back(static_cast<std::uint8_t>(
              1 + *std::max_element(next.begin(), next.end())));
          grown.emplace(std::move(next), prob);
        }
        states = std::move(grown);
      }
    }
    const auto su = static_cast<std::size_t>(
        slot_of[static_cast<std::size_t>(e.u)]);
    const auto sv = static_cast<std::size_t>(
        slot_of[static_cast<std::size_t>(e.v)]);

    // Which endpoints retire after this edge?
    remaining[static_cast<std::size_t>(e.u)]--;
    remaining[static_cast<std::size_t>(e.v)]--;

    StateMap next_states;
    next_states.reserve(states.size() * 2);
    const double p_fail = e.failure_prob;
    auto emit = [&](StateKey key, double prob) {
      // s-t merged: fold into the success accumulator (remaining edges
      // marginalize to probability one).
      if (key[0] == key[1]) {
        success.add(prob);
        return;
      }
      canonicalize(key);
      next_states[std::move(key)] += prob;
    };

    for (const auto& [key, prob] : states) {
      ++states_visited;
      // Dead branch: partition unchanged.
      if (p_fail > 0.0) emit(key, prob * p_fail);
      // Alive branch: merge the endpoint blocks.
      StateKey merged = key;
      const std::uint8_t keep = std::min(merged[su], merged[sv]);
      const std::uint8_t gone = std::max(merged[su], merged[sv]);
      if (keep != gone) {
        for (std::uint8_t& b : merged) {
          if (b == gone) b = keep;
        }
      }
      emit(std::move(merged), prob * (1.0 - p_fail));
    }

    // Retire finished vertices (never s or t): drop their slots. A block
    // that loses its last frontier vertex is a dead component — it can
    // no longer join s or t, which is fine for connectivity; the states
    // simply coincide afterwards.
    std::vector<std::size_t> retiring;
    for (NodeId n : {e.u, e.v}) {
      if (n == demand.source || n == demand.sink) continue;
      if (remaining[static_cast<std::size_t>(n)] == 0) {
        retiring.push_back(
            static_cast<std::size_t>(slot_of[static_cast<std::size_t>(n)]));
        slot_of[static_cast<std::size_t>(n)] = -1;
      }
    }
    if (!retiring.empty()) {
      std::sort(retiring.rbegin(), retiring.rend());
      for (std::size_t slot : retiring) {
        node_at.erase(node_at.begin() + static_cast<std::ptrdiff_t>(slot));
        for (std::size_t i = slot; i < node_at.size(); ++i) {
          slot_of[static_cast<std::size_t>(node_at[i])] =
              static_cast<int>(i);
        }
      }
      StateMap shrunk;
      shrunk.reserve(next_states.size());
      for (auto& [key, prob] : next_states) {
        StateKey reduced = key;
        for (std::size_t slot : retiring) {
          reduced.erase(reduced.begin() + static_cast<std::ptrdiff_t>(slot));
        }
        canonicalize(reduced);
        shrunk[std::move(reduced)] += prob;
      }
      next_states = std::move(shrunk);
    }
    states = std::move(next_states);
    if (states.size() > options.max_states) {
      // The ordering heuristic found no small frontier: report the budget
      // stop instead of aborting so Method::kAuto can fall back.
      result.status = SolveStatus::kBudgetExhausted;
      break;
    }
  }

  result.reliability = success.value();
  result.telemetry.counter(telemetry_keys::kConfigurations) = states_visited;
  // The method never solves a flow problem.
  result.telemetry.counter(telemetry_keys::kMaxflowCalls) = 0;
  return result;
}

}  // namespace streamrel
