#include "streamrel/reliability/throughput.hpp"

#include <stdexcept>

#include "streamrel/maxflow/config_residual.hpp"
#include "streamrel/util/config_prob.hpp"
#include "streamrel/util/stats.hpp"

namespace streamrel {

double ThroughputDistribution::expected_rate() const {
  KahanSum sum;
  for (double p : at_least) sum.add(p);
  return sum.value();
}

std::vector<double> ThroughputDistribution::exactly() const {
  std::vector<double> out(at_least.size() + 1, 0.0);
  // P(= v) = P(>= v) - P(>= v+1); P(= rate) = P(>= rate).
  double above = 0.0;
  for (std::size_t v = at_least.size(); v-- > 0;) {
    out[v + 1] = at_least[v] - above;
    above = at_least[v];
  }
  out[0] = 1.0 - above;
  return out;
}

ThroughputDistribution throughput_distribution(
    const FlowNetwork& net, const FlowDemand& demand,
    const ThroughputOptions& options) {
  net.check_demand(demand);
  if (!net.fits_mask()) {
    throw std::invalid_argument(
        "throughput distribution requires <= 63 links");
  }
  const ConfigProbTable probs(net.failure_probs());
  ConfigResidual residual(net);
  auto solver = make_solver(options.algorithm);

  // hist[f] accumulates the probability of configurations whose bounded
  // max-flow equals f (f capped at the stream rate).
  std::vector<KahanSum> hist(static_cast<std::size_t>(demand.rate) + 1);
  const Mask total = Mask{1} << net.num_edges();
  for (Mask alive = 0; alive < total; ++alive) {
    residual.reset(alive);
    const Capacity flow = solver->solve(residual.graph(), demand.source,
                                        demand.sink, demand.rate);
    hist[static_cast<std::size_t>(flow)].add(probs.prob(alive));
  }

  ThroughputDistribution dist;
  dist.at_least.resize(static_cast<std::size_t>(demand.rate));
  double tail = 0.0;
  for (std::size_t v = static_cast<std::size_t>(demand.rate); v >= 1; --v) {
    tail += hist[v].value();
    dist.at_least[v - 1] = tail;
  }
  return dist;
}

}  // namespace streamrel
