#include "streamrel/reliability/node_failures.hpp"

#include <stdexcept>

namespace streamrel {

SplitNetwork split_unreliable_nodes(
    const FlowNetwork& net, const FlowDemand& demand,
    const std::vector<NodeReliability>& nodes) {
  net.check_demand(demand);
  if (nodes.size() != static_cast<std::size_t>(net.num_nodes())) {
    throw std::invalid_argument("need one NodeReliability per node");
  }
  for (const Edge& e : net.edges()) {
    if (!e.directed()) {
      throw std::invalid_argument(
          "node splitting requires a directed network (see header)");
    }
  }

  SplitNetwork out;
  out.net = FlowNetwork(2 * net.num_nodes());
  out.in_node.resize(static_cast<std::size_t>(net.num_nodes()));
  out.out_node.resize(static_cast<std::size_t>(net.num_nodes()));
  out.node_edge.resize(static_cast<std::size_t>(net.num_nodes()));

  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    const NodeId v_in = 2 * v;
    const NodeId v_out = 2 * v + 1;
    out.in_node[static_cast<std::size_t>(v)] = v_in;
    out.out_node[static_cast<std::size_t>(v)] = v_out;
    const NodeReliability& nr = nodes[static_cast<std::size_t>(v)];
    Capacity cap = nr.relay_capacity;
    if (cap == NodeReliability::kNoRelayLimit) {
      // No relay limit: the node never constrains flow, so its internal
      // edge gets the sum of incident capacities (an effective infinity).
      cap = 0;
      for (EdgeId id : net.incident_edges(v)) cap += net.edge(id).capacity;
    }
    out.node_edge[static_cast<std::size_t>(v)] =
        out.net.add_directed_edge(v_in, v_out, cap, nr.failure_prob);
  }

  out.edge_map.reserve(static_cast<std::size_t>(net.num_edges()));
  for (EdgeId id = 0; id < net.num_edges(); ++id) {
    const Edge& e = net.edge(id);
    out.edge_map.push_back(out.net.add_directed_edge(
        out.out_node[static_cast<std::size_t>(e.u)],
        out.in_node[static_cast<std::size_t>(e.v)], e.capacity,
        e.failure_prob));
  }

  out.demand.source = out.in_node[static_cast<std::size_t>(demand.source)];
  out.demand.sink = out.out_node[static_cast<std::size_t>(demand.sink)];
  out.demand.rate = demand.rate;
  return out;
}

}  // namespace streamrel
