#include "streamrel/reliability/polynomial.hpp"

#include <cmath>
#include <stdexcept>

#include "streamrel/maxflow/config_residual.hpp"
#include "streamrel/util/stats.hpp"

namespace streamrel {

ReliabilityPolynomial::ReliabilityPolynomial(
    int num_edges, std::vector<std::uint64_t> admitting_by_failures)
    : num_edges_(num_edges), counts_(std::move(admitting_by_failures)) {
  if (counts_.size() != static_cast<std::size_t>(num_edges) + 1) {
    throw std::invalid_argument("need one count per failure cardinality");
  }
}

double ReliabilityPolynomial::evaluate(double p) const {
  if (!(p >= 0.0 && p < 1.0)) {
    throw std::invalid_argument("p must lie in [0, 1)");
  }
  KahanSum sum;
  for (std::size_t j = 0; j < counts_.size(); ++j) {
    if (counts_[j] == 0) continue;
    const double term =
        static_cast<double>(counts_[j]) *
        std::pow(p, static_cast<double>(j)) *
        std::pow(1.0 - p,
                 static_cast<double>(num_edges_) - static_cast<double>(j));
    sum.add(term);
  }
  return sum.value();
}

ReliabilityPolynomial reliability_polynomial(const FlowNetwork& net,
                                             const FlowDemand& demand,
                                             const PolynomialOptions& options) {
  net.check_demand(demand);
  if (!net.fits_mask()) {
    throw std::invalid_argument(
        "reliability polynomial requires <= 63 edges");
  }
  std::vector<std::uint64_t> counts(
      static_cast<std::size_t>(net.num_edges()) + 1, 0);
  ConfigResidual residual(net);
  auto solver = make_solver(options.algorithm);
  const Mask total = Mask{1} << net.num_edges();
  for (Mask alive = 0; alive < total; ++alive) {
    residual.reset(alive);
    if (solver->solve(residual.graph(), demand.source, demand.sink,
                      demand.rate) >= demand.rate) {
      counts[static_cast<std::size_t>(net.num_edges() - popcount(alive))]++;
    }
  }
  return ReliabilityPolynomial(net.num_edges(), std::move(counts));
}

}  // namespace streamrel
