#include "streamrel/reliability/factoring.hpp"

#include <stdexcept>
#include <vector>

#include "streamrel/maxflow/config_residual.hpp"
#include "streamrel/util/trace.hpp"

namespace streamrel {

namespace {

enum class EdgeState : char { kUndecided, kUp, kDown };

class FactoringSolver {
 public:
  FactoringSolver(const FlowNetwork& net, const FlowDemand& demand,
                  const FactoringOptions& options, const ExecContext* ctx)
      : net_(net),
        demand_(demand),
        options_(options),
        ctx_(ctx),
        residual_(net),
        solver_(make_solver(options.algorithm)),
        state_(static_cast<std::size_t>(net.num_edges()),
               EdgeState::kUndecided),
        alive_(static_cast<std::size_t>(net.num_edges()), true) {}

  double run() { return recurse(); }

  std::uint64_t tree_nodes() const noexcept { return tree_nodes_; }
  std::uint64_t maxflow_calls() const noexcept { return maxflow_calls_; }

 private:
  // Max-flow value with undecided edges counted per `optimistic`.
  Capacity bounded_flow(bool optimistic) {
    for (EdgeId id = 0; id < net_.num_edges(); ++id) {
      const EdgeState st = state_[static_cast<std::size_t>(id)];
      alive_[static_cast<std::size_t>(id)] =
          st == EdgeState::kUp ||
          (st == EdgeState::kUndecided && optimistic);
    }
    residual_.reset_with(alive_);
    maxflow_calls_++;
    STREAMREL_TRACE_SAMPLED_SPAN(mf_span, maxflow_calls_, "maxflow",
                                 "maxflow");
    return solver_->solve(residual_.graph(), demand_.source, demand_.sink,
                          demand_.rate);
  }

  // Picks the undecided edge carrying the most flow in the optimistic
  // solution that the preceding bounded_flow(true) call left in
  // `residual_`: conditioning on a load-bearing edge makes both prunes
  // fire quickly. Falls back to the first undecided edge.
  EdgeId pick_branch_edge() {
    EdgeId best = kInvalidEdge;
    Capacity best_flow = -1;
    for (EdgeId id = 0; id < net_.num_edges(); ++id) {
      if (state_[static_cast<std::size_t>(id)] != EdgeState::kUndecided) {
        continue;
      }
      Capacity f = residual_.edge_net_flow(id);
      if (f < 0) f = -f;
      if (f > best_flow) {
        best_flow = f;
        best = id;
      }
    }
    return best;
  }

  double recurse() {
    if (++tree_nodes_ > options_.max_tree_nodes) {
      throw ExecInterrupted{SolveStatus::kBudgetExhausted};
    }
    if ((tree_nodes_ & (ExecContext::kPollStride - 1)) == 0) {
      if (ctx_) ctx_->check();
      // The factoring tree has no meaningful total, so the reporter runs
      // rate-only (visited tree nodes per second, no ETA).
      progress_.at(tree_nodes_);
    }
    // Optimistic prune: even with all undecided edges up, no d units fit.
    const Capacity optimistic = bounded_flow(/*optimistic=*/true);
    if (optimistic < demand_.rate) return 0.0;
    // Choose the branch edge while the optimistic flow is still in the
    // residual graph (the pessimistic probe below resets it).
    const EdgeId branch = pick_branch_edge();
    // Pessimistic prune: the already-up edges alone route d.
    if (bounded_flow(/*optimistic=*/false) >= demand_.rate) return 1.0;
    // Both prunes failed, so some edge is undecided.
    const double p_fail =
        net_.edge(branch).failure_prob;
    state_[static_cast<std::size_t>(branch)] = EdgeState::kUp;
    const double up = recurse();
    state_[static_cast<std::size_t>(branch)] = EdgeState::kDown;
    const double down = p_fail > 0.0 ? recurse() : 0.0;
    state_[static_cast<std::size_t>(branch)] = EdgeState::kUndecided;
    return (1.0 - p_fail) * up + p_fail * down;
  }

  const FlowNetwork& net_;
  const FlowDemand& demand_;
  const FactoringOptions& options_;
  const ExecContext* ctx_;
  ConfigResidual residual_;
  std::unique_ptr<MaxFlowSolver> solver_;
  std::vector<EdgeState> state_;
  std::vector<bool> alive_;
  ProgressMarker progress_{exec_progress(ctx_)};
  std::uint64_t tree_nodes_ = 0;
  std::uint64_t maxflow_calls_ = 0;
};

}  // namespace

ReliabilityResult reliability_factoring(const FlowNetwork& net,
                                        const FlowDemand& demand,
                                        const FactoringOptions& options,
                                        const ExecContext* ctx) {
  net.check_demand(demand);
  FactoringSolver solver(net, demand, options, ctx);
  ReliabilityResult result;
  try {
    result.reliability = solver.run();
  } catch (const ExecInterrupted& stop) {
    result.status = stop.status;
    result.reliability = 0.0;
  }
  result.telemetry.counter(telemetry_keys::kConfigurations) =
      solver.tree_nodes();
  result.telemetry.counter(telemetry_keys::kMaxflowCalls) =
      solver.maxflow_calls();
  return result;
}

}  // namespace streamrel
