#include "streamrel/reliability/multicast.hpp"

#include <stdexcept>

#include "streamrel/maxflow/config_residual.hpp"
#include "streamrel/util/config_prob.hpp"
#include "streamrel/util/prng.hpp"
#include "streamrel/util/stats.hpp"

namespace streamrel {

namespace {

void check_multicast(const FlowNetwork& net, const MulticastDemand& demand) {
  if (demand.subscribers.empty()) {
    throw std::invalid_argument("multicast needs >= 1 subscriber");
  }
  for (NodeId t : demand.subscribers) {
    net.check_demand(FlowDemand{demand.source, t, demand.rate});
  }
}

// One configuration: can every subscriber receive the stream?
bool all_subscribers_served(ConfigResidual& residual, MaxFlowSolver& solver,
                            const MulticastDemand& demand, Mask alive,
                            std::uint64_t& calls) {
  for (NodeId t : demand.subscribers) {
    residual.reset(alive);
    ++calls;
    if (solver.solve(residual.graph(), demand.source, t, demand.rate) <
        demand.rate) {
      return false;
    }
  }
  return true;
}

bool all_subscribers_served_sampled(ConfigResidual& residual,
                                    MaxFlowSolver& solver,
                                    const MulticastDemand& demand,
                                    const std::vector<bool>& alive) {
  for (NodeId t : demand.subscribers) {
    residual.reset_with(alive);
    if (solver.solve(residual.graph(), demand.source, t, demand.rate) <
        demand.rate) {
      return false;
    }
  }
  return true;
}

}  // namespace

ReliabilityResult multicast_reliability(const FlowNetwork& net,
                                        const MulticastDemand& demand,
                                        const MulticastOptions& options) {
  check_multicast(net, demand);
  if (!net.fits_mask()) {
    throw std::invalid_argument(
        "exact multicast reliability requires <= 63 links");
  }
  const ConfigProbTable probs(net.failure_probs());
  ConfigResidual residual(net);
  auto solver = make_solver(options.algorithm);

  ReliabilityResult result;
  KahanSum sum;
  std::uint64_t maxflow_calls = 0;
  const Mask total = Mask{1} << net.num_edges();
  for (Mask alive = 0; alive < total; ++alive) {
    if (all_subscribers_served(residual, *solver, demand, alive,
                               maxflow_calls)) {
      sum.add(probs.prob(alive));
    }
  }
  result.reliability = sum.value();
  result.telemetry.counter(telemetry_keys::kConfigurations) = total;
  result.telemetry.counter(telemetry_keys::kMaxflowCalls) = maxflow_calls;
  return result;
}

ReliabilityResult quorum_reliability(const FlowNetwork& net,
                                     const MulticastDemand& demand,
                                     int quorum,
                                     const MulticastOptions& options) {
  check_multicast(net, demand);
  if (quorum < 1 ||
      quorum > static_cast<int>(demand.subscribers.size())) {
    throw std::invalid_argument("quorum must be in [1, #subscribers]");
  }
  if (!net.fits_mask()) {
    throw std::invalid_argument("quorum reliability requires <= 63 links");
  }
  const ConfigProbTable probs(net.failure_probs());
  ConfigResidual residual(net);
  auto solver = make_solver(options.algorithm);

  ReliabilityResult result;
  KahanSum sum;
  std::uint64_t maxflow_calls = 0;
  const Mask total = Mask{1} << net.num_edges();
  const int needed = quorum;
  const int subscribers = static_cast<int>(demand.subscribers.size());
  for (Mask alive = 0; alive < total; ++alive) {
    int served = 0;
    for (int i = 0; i < subscribers; ++i) {
      // Early exit both ways: quorum reached, or unreachable.
      if (served >= needed || served + (subscribers - i) < needed) break;
      residual.reset(alive);
      ++maxflow_calls;
      if (solver->solve(residual.graph(), demand.source,
                        demand.subscribers[static_cast<std::size_t>(i)],
                        demand.rate) >= demand.rate) {
        ++served;
      }
    }
    if (served >= needed) sum.add(probs.prob(alive));
  }
  result.reliability = sum.value();
  result.telemetry.counter(telemetry_keys::kConfigurations) = total;
  result.telemetry.counter(telemetry_keys::kMaxflowCalls) = maxflow_calls;
  return result;
}

MonteCarloResult multicast_reliability_monte_carlo(
    const FlowNetwork& net, const MulticastDemand& demand,
    const MonteCarloOptions& options) {
  check_multicast(net, demand);
  if (options.samples == 0) {
    throw std::invalid_argument("monte carlo needs >= 1 sample");
  }
  Xoshiro256 rng(options.seed);
  ConfigResidual residual(net);
  auto solver = make_solver(options.algorithm);
  std::vector<bool> alive(static_cast<std::size_t>(net.num_edges()));
  const std::vector<double> probs = net.failure_probs();

  MonteCarloResult result;
  result.samples = options.samples;
  for (std::uint64_t i = 0; i < options.samples; ++i) {
    for (std::size_t e = 0; e < probs.size(); ++e) {
      alive[e] = !rng.bernoulli(probs[e]);
    }
    if (all_subscribers_served_sampled(residual, *solver, demand, alive)) {
      ++result.successes;
    }
  }
  result.estimate = static_cast<double>(result.successes) /
                    static_cast<double>(result.samples);
  result.ci95_halfwidth =
      proportion_ci_halfwidth(result.successes, result.samples);
  result.wilson95 = wilson_interval(result.successes, result.samples);
  return result;
}

}  // namespace streamrel
