#include "streamrel/reliability/bounds.hpp"

#include <algorithm>
#include <stdexcept>

#include "streamrel/cuts/cut_enumeration.hpp"
#include "streamrel/maxflow/config_residual.hpp"
#include "streamrel/util/config_prob.hpp"
#include "streamrel/util/stats.hpp"

namespace streamrel {

namespace {

// P(surviving capacity across `cut` >= d): exact enumeration over the
// cut's own 2^|C| failure configurations.
double cut_survival_probability(const FlowNetwork& net,
                                const std::vector<EdgeId>& cut, Capacity d) {
  std::vector<double> probs;
  std::vector<Capacity> caps;
  for (EdgeId id : cut) {
    probs.push_back(net.edge(id).failure_prob);
    caps.push_back(net.edge(id).capacity);
  }
  const ConfigProbTable table(probs);
  KahanSum sum;
  for (Mask alive = 0; alive < (Mask{1} << cut.size()); ++alive) {
    Capacity surviving = 0;
    for (std::size_t i = 0; i < cut.size(); ++i) {
      if (test_bit(alive, static_cast<int>(i))) surviving += caps[i];
    }
    if (surviving >= d) sum.add(table.prob(alive));
  }
  return sum.value();
}

// Greedily extracts edge-disjoint subgraphs that each route d units;
// returns the survival probability of each routing.
std::vector<double> disjoint_routing_survivals(const FlowNetwork& net,
                                               const FlowDemand& demand,
                                               const BoundsOptions& options) {
  std::vector<double> survivals;
  std::vector<bool> available(static_cast<std::size_t>(net.num_edges()),
                              true);
  ConfigResidual residual(net);
  auto solver = make_solver(options.algorithm);
  while (static_cast<int>(survivals.size()) < options.max_routings) {
    residual.reset_with(available);
    if (solver->solve(residual.graph(), demand.source, demand.sink,
                      demand.rate) < demand.rate) {
      break;
    }
    // The routing is the support of the flow the solver just computed.
    double survive = 1.0;
    bool any = false;
    for (EdgeId id = 0; id < net.num_edges(); ++id) {
      if (!available[static_cast<std::size_t>(id)]) continue;
      if (residual.edge_net_flow(id) != 0) {
        survive *= 1.0 - net.edge(id).failure_prob;
        available[static_cast<std::size_t>(id)] = false;
        any = true;
      }
    }
    if (!any) break;  // degenerate: d routed over no edges (s == t guard)
    survivals.push_back(survive);
  }
  return survivals;
}

}  // namespace

ReliabilityBounds reliability_bounds(const FlowNetwork& net,
                                     const FlowDemand& demand,
                                     const BoundsOptions& options) {
  net.check_demand(demand);
  ReliabilityBounds bounds;

  // ---- Upper bound over a family of small cuts. ----
  // Always include the min-capacity and min-cardinality cuts; on
  // mask-sized networks add enumerated minimal cut sets.
  std::vector<std::vector<EdgeId>> cuts;
  cuts.push_back(min_cut(net, demand.source, demand.sink).edges);
  cuts.push_back(min_cardinality_cut(net, demand.source, demand.sink).edges);
  if (net.fits_mask()) {
    CutEnumerationOptions enum_opts;
    enum_opts.max_size = options.max_cut_size;
    enum_opts.max_results = options.max_cuts;
    for (auto& cut :
         enumerate_minimal_cutsets(net, demand.source, demand.sink,
                                   enum_opts)) {
      cuts.push_back(std::move(cut));
    }
  }
  for (const auto& cut : cuts) {
    if (cut.empty()) {
      // No surviving path even with everything up: reliability is zero.
      bounds.upper = 0.0;
      bounds.cuts_used++;
      continue;
    }
    if (static_cast<int>(cut.size()) > options.max_cut_size) continue;
    bounds.upper = std::min(
        bounds.upper, cut_survival_probability(net, cut, demand.rate));
    bounds.cuts_used++;
  }

  // ---- Lower bound from edge-disjoint routings. ----
  double all_fail = 1.0;
  const std::vector<double> survivals =
      disjoint_routing_survivals(net, demand, options);
  for (double s : survivals) all_fail *= 1.0 - s;
  bounds.routings_used = static_cast<int>(survivals.size());
  bounds.lower = survivals.empty() ? 0.0 : 1.0 - all_fail;
  // Guard against floating drift inverting the envelope on exact-boundary
  // instances (e.g. reliability exactly 0 or 1).
  bounds.lower = std::min(bounds.lower, bounds.upper);
  return bounds;
}

}  // namespace streamrel
