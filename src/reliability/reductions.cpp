#include "streamrel/reliability/reductions.hpp"

#include <algorithm>
#include <stdexcept>

namespace streamrel {

namespace {

struct WorkEdge {
  NodeId u;
  NodeId v;
  double p;      // failure probability
  bool alive = true;
};

}  // namespace

ReducedNetwork reduce_for_connectivity(const FlowNetwork& net, NodeId s,
                                       NodeId t) {
  net.check_demand(FlowDemand{s, t, 1});
  std::vector<WorkEdge> edges;
  edges.reserve(static_cast<std::size_t>(net.num_edges()));
  ReducedNetwork result;
  for (const Edge& e : net.edges()) {
    if (e.directed()) {
      throw std::invalid_argument(
          "connectivity reductions require an undirected network");
    }
    if (e.capacity < 1) {
      result.pruned_links++;  // can never carry the sub-stream
      continue;
    }
    edges.push_back(WorkEdge{e.u, e.v, e.failure_prob});
  }

  auto degree = [&](NodeId n) {
    int d = 0;
    for (const WorkEdge& e : edges) {
      if (e.alive && (e.u == n || e.v == n)) ++d;
    }
    return d;
  };

  bool changed = true;
  while (changed) {
    changed = false;

    // Parallel merges: first alive edge per unordered pair absorbs later
    // duplicates (both must fail).
    for (std::size_t i = 0; i < edges.size(); ++i) {
      if (!edges[i].alive) continue;
      for (std::size_t j = i + 1; j < edges.size(); ++j) {
        if (!edges[j].alive) continue;
        const bool same_pair =
            (edges[i].u == edges[j].u && edges[i].v == edges[j].v) ||
            (edges[i].u == edges[j].v && edges[i].v == edges[j].u);
        if (!same_pair) continue;
        edges[i].p *= edges[j].p;
        edges[j].alive = false;
        result.parallel_steps++;
        changed = true;
      }
    }

    // Prune dead-end interior nodes.
    for (NodeId n = 0; n < net.num_nodes(); ++n) {
      if (n == s || n == t) continue;
      if (degree(n) == 1) {
        for (WorkEdge& e : edges) {
          if (e.alive && (e.u == n || e.v == n)) {
            e.alive = false;
            result.pruned_links++;
            changed = true;
          }
        }
      }
    }

    // Series contractions: interior degree-2 node with distinct
    // neighbours (equal neighbours are handled by the parallel rule).
    for (NodeId n = 0; n < net.num_nodes(); ++n) {
      if (n == s || n == t || degree(n) != 2) continue;
      std::size_t first = edges.size(), second = edges.size();
      for (std::size_t i = 0; i < edges.size(); ++i) {
        if (!edges[i].alive || (edges[i].u != n && edges[i].v != n)) continue;
        (first == edges.size() ? first : second) = i;
      }
      const NodeId a = edges[first].u == n ? edges[first].v : edges[first].u;
      const NodeId b =
          edges[second].u == n ? edges[second].v : edges[second].u;
      if (a == b) continue;  // wait for the parallel rule
      // Both hops must survive.
      edges[first].u = a;
      edges[first].v = b;
      edges[first].p = 1.0 - (1.0 - edges[first].p) * (1.0 - edges[second].p);
      edges[second].alive = false;
      result.series_steps++;
      changed = true;
    }
  }

  // Compact into a fresh network over the surviving nodes.
  std::vector<NodeId> remap(static_cast<std::size_t>(net.num_nodes()),
                            kInvalidNode);
  auto touch = [&](NodeId n) {
    if (remap[static_cast<std::size_t>(n)] == kInvalidNode) {
      remap[static_cast<std::size_t>(n)] = result.net.add_node();
    }
    return remap[static_cast<std::size_t>(n)];
  };
  result.source = touch(s);
  result.sink = touch(t);
  for (const WorkEdge& e : edges) {
    if (!e.alive) continue;
    // p may have rounded to exactly 1 for hopeless chains; such a link
    // can never help, so drop it (failure prob must stay below 1).
    if (e.p >= 1.0) {
      result.pruned_links++;
      continue;
    }
    result.net.add_undirected_edge(touch(e.u), touch(e.v), 1, e.p);
  }
  return result;
}

}  // namespace streamrel
