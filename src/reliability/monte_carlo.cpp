#include "streamrel/reliability/monte_carlo.hpp"

#include <stdexcept>
#include <vector>

#include "streamrel/maxflow/config_residual.hpp"
#include "streamrel/util/prng.hpp"

namespace streamrel {

MonteCarloResult reliability_monte_carlo(const FlowNetwork& net,
                                         const FlowDemand& demand,
                                         const MonteCarloOptions& options) {
  net.check_demand(demand);
  if (options.samples == 0) {
    throw std::invalid_argument("monte carlo needs >= 1 sample");
  }
  Xoshiro256 rng(options.seed);
  ConfigResidual residual(net);
  auto solver = make_solver(options.algorithm);
  std::vector<bool> alive(static_cast<std::size_t>(net.num_edges()));
  const std::vector<double> probs = net.failure_probs();

  MonteCarloResult result;
  result.samples = options.samples;
  for (std::uint64_t i = 0; i < options.samples; ++i) {
    for (std::size_t e = 0; e < probs.size(); ++e) {
      alive[e] = !rng.bernoulli(probs[e]);
    }
    residual.reset_with(alive);
    if (solver->solve(residual.graph(), demand.source, demand.sink,
                      demand.rate) >= demand.rate) {
      ++result.successes;
    }
  }
  result.estimate = static_cast<double>(result.successes) /
                    static_cast<double>(result.samples);
  result.ci95_halfwidth =
      proportion_ci_halfwidth(result.successes, result.samples);
  result.wilson95 = wilson_interval(result.successes, result.samples);
  return result;
}

}  // namespace streamrel
