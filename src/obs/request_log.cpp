#include "streamrel/obs/request_log.hpp"

#include <cmath>
#include <cstdio>
#include <string_view>

namespace streamrel {

namespace {

void append_quoted(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_micros(std::string& out, double us) {
  if (!std::isfinite(us)) {
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", us);
  out += buf;
}

}  // namespace

std::string RequestRecord::to_json() const {
  std::string out = "{\"seq\": " + std::to_string(seq);
  out += ", \"unix_ms\": " + std::to_string(unix_ms);
  out += ", \"id\": ";
  out += id_json.empty() ? "null" : id_json;
  out += ", \"tenant\": ";
  append_quoted(out, tenant);
  out += ", \"network_id\": ";
  append_quoted(out, network_id);
  out += ", \"verb\": ";
  append_quoted(out, verb);
  out += ", \"lane\": ";
  append_quoted(out, lane);
  out += ", \"engine\": ";
  append_quoted(out, engine);
  out += ", \"status\": ";
  append_quoted(out, status);
  out += ", \"ok\": ";
  out += ok ? "true" : "false";
  out += ", \"shed\": ";
  out += shed ? "true" : "false";
  out += ", \"error_code\": ";
  append_quoted(out, error_code);
  out += ", \"queue_us\": ";
  append_micros(out, queue_us);
  out += ", \"solve_us\": ";
  append_micros(out, solve_us);
  out += '}';
  return out;
}

void RequestLogger::log(const RequestRecord& record) {
  if (sink_ == nullptr) return;
  const std::string line = record.to_json();
  std::lock_guard lock(mu_);
  *sink_ << line << '\n';
  sink_->flush();
}

}  // namespace streamrel
