#include "streamrel/obs/flight_recorder.hpp"

#include <fstream>
#include <string_view>

namespace streamrel {

namespace {

void append_json_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) >= 0x20) out += c;
    }
  }
}

void append_us(std::string& out, std::uint64_t ns) {
  out += std::to_string(ns / 1000);
  out += '.';
  out += std::to_string((ns % 1000) / 100);
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void FlightRecorder::record(RequestRecord record,
                            std::vector<TraceEvent> spans,
                            std::uint64_t dropped_spans) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back({std::move(record), std::move(spans), dropped_spans});
  } else {
    ring_[next_] = {std::move(record), std::move(spans), dropped_spans};
  }
  next_ = (next_ + 1) % capacity_;
  ++total_;
}

std::vector<FlightEntry> FlightRecorder::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<FlightEntry> out;
  out.reserve(ring_.size());
  const std::size_t n = ring_.size();
  // Once wrapped, next_ points at the oldest slot.
  const std::size_t start = n == capacity_ ? next_ : std::size_t{0};
  for (std::size_t i = 0; i < n; ++i) out.push_back(ring_[(start + i) % n]);
  return out;
}

std::uint64_t FlightRecorder::total_recorded() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::string FlightRecorder::dump_jsonl() const {
  std::string out;
  for (const FlightEntry& entry : snapshot()) {
    out += entry.record.to_json();
    out += '\n';
  }
  return out;
}

std::string FlightRecorder::dump_chrome_trace() const {
  std::string out;
  out.reserve(1 << 14);
  out += "{\"traceEvents\": [";
  bool first = true;
  std::uint64_t dropped = 0;
  std::size_t requests_with_spans = 0;
  for (const FlightEntry& entry : snapshot()) {
    dropped += entry.dropped_spans;
    if (!entry.spans.empty()) ++requests_with_spans;
    for (const TraceEvent& e : entry.spans) {
      out += first ? "\n" : ",\n";
      first = false;
      out += "{\"name\": \"";
      append_json_escaped(out, e.name);
      out += "\", \"cat\": \"";
      append_json_escaped(out, e.category);
      out += "\", \"ph\": \"X\", \"ts\": ";
      append_us(out, e.start_ns);
      out += ", \"dur\": ";
      append_us(out, e.dur_ns);
      // pid = request seq: each request renders as its own process
      // track, so spans from different requests never nest into each
      // other in viewers or in trace_report's self-time containment.
      out += ", \"pid\": ";
      out += std::to_string(entry.record.seq);
      out += ", \"tid\": ";
      out += std::to_string(e.tid);
      if (!e.args.empty()) {
        out += ", \"args\": {";
        out += e.args;
        out += '}';
      }
      out += '}';
    }
  }
  out += "\n], \"displayTimeUnit\": \"ms\", \"otherData\": {\"tool\": "
         "\"streamrel-flight\", \"requests_with_spans\": ";
  out += std::to_string(requests_with_spans);
  out += ", \"dropped_events\": ";
  out += std::to_string(dropped);
  out += "}}\n";
  return out;
}

bool FlightRecorder::dump_to_files(const std::string& prefix) const {
  {
    std::ofstream jsonl(prefix + ".jsonl");
    if (!jsonl) return false;
    jsonl << dump_jsonl();
    if (!jsonl) return false;
  }
  std::ofstream trace(prefix + ".trace.json");
  if (!trace) return false;
  trace << dump_chrome_trace();
  return static_cast<bool>(trace);
}

}  // namespace streamrel
