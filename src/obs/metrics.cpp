#include "streamrel/obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <sstream>
#include <stdexcept>

namespace streamrel {

namespace {

/// Prometheus text-format escaping for label values: backslash, double
/// quote, and newline. (HELP text escapes only backslash and newline.)
void append_label_escaped(std::string& out, std::string_view value) {
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
}

void append_help_escaped(std::string& out, std::string_view value) {
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
}

/// Shortest round-trip decimal for sample values; Prometheus parsers
/// accept scientific notation, and "+Inf" is the spec spelling.
std::string format_value(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (std::isnan(v)) return "NaN";
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

void atomic_add_double(std::atomic<double>& target, double delta) {
  double seen = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(seen, seen + delta,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

MetricLabels::MetricLabels(
    std::initializer_list<std::pair<std::string, std::string>> items) {
  for (const auto& [key, value] : items) set(key, value);
}

void MetricLabels::set(std::string key, std::string value) {
  auto it = std::lower_bound(
      items_.begin(), items_.end(), key,
      [](const auto& item, const std::string& k) { return item.first < k; });
  if (it != items_.end() && it->first == key) {
    it->second = std::move(value);
    return;
  }
  items_.insert(it, {std::move(key), std::move(value)});
}

std::string MetricLabels::render() const {
  if (items_.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : items_) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    append_label_escaped(out, value);
    out += '"';
  }
  out += '}';
  return out;
}

MetricHistogram::MetricHistogram(const std::vector<double>* bounds)
    : bounds_(bounds), buckets_(bounds->size() + 1) {}

void MetricHistogram::observe(double v) {
  const auto& b = *bounds_;
  std::size_t i = 0;
  while (i < b.size() && v > b[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(sum_, v);
  count_.fetch_add(1, std::memory_order_relaxed);
}

double MetricHistogram::sum() const {
  return sum_.load(std::memory_order_relaxed);
}

const std::vector<double>& default_latency_buckets_ms() {
  static const std::vector<double> kBuckets = {
      0.05, 0.1, 0.25, 0.5, 1.0,   2.5,   5.0,   10.0,   25.0,
      50.0, 100, 250,  500, 1000., 2500., 5000., 10000., 30000.};
  return kBuckets;
}

struct MetricsRegistry::Series {
  std::string labels_key;  ///< MetricLabels::render(), "" when unlabeled
  std::unique_ptr<MetricCounter> counter;
  std::unique_ptr<MetricGauge> gauge;
  std::unique_ptr<MetricHistogram> histogram;
};

struct MetricsRegistry::Family {
  std::string name;
  std::string help;
  Kind kind = Kind::kCounter;
  std::vector<double> bounds;  ///< histogram families only
  /// labels_key-sorted, node-stable (unique_ptr) so handed-out
  /// references survive later insertions.
  std::vector<std::unique_ptr<Series>> series;
};

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Series& MetricsRegistry::find_or_create(
    std::string_view name, std::string_view help, Kind kind,
    const std::vector<double>* bounds, const MetricLabels& labels) {
  const std::string labels_key = labels.render();
  auto family_pos = [&](auto& families) {
    return std::lower_bound(
        families.begin(), families.end(), name,
        [](const auto& f, std::string_view n) { return f->name < n; });
  };
  auto series_pos = [&](Family& family) {
    return std::lower_bound(family.series.begin(), family.series.end(),
                            labels_key, [](const auto& s, const std::string& k) {
                              return s->labels_key < k;
                            });
  };

  {
    std::shared_lock lock(mu_);
    auto fit = family_pos(families_);
    if (fit != families_.end() && (*fit)->name == name) {
      Family& family = **fit;
      if (family.kind != kind) {
        throw std::invalid_argument("metric family kind mismatch: " +
                                    std::string(name));
      }
      auto sit = series_pos(family);
      if (sit != family.series.end() && (*sit)->labels_key == labels_key) {
        return **sit;
      }
    }
  }

  std::unique_lock lock(mu_);
  auto fit = family_pos(families_);
  if (fit == families_.end() || (*fit)->name != name) {
    auto family = std::make_unique<Family>();
    family->name = std::string(name);
    family->help = std::string(help);
    family->kind = kind;
    if (bounds != nullptr) family->bounds = *bounds;
    fit = families_.insert(fit, std::move(family));
  } else if ((*fit)->kind != kind) {
    throw std::invalid_argument("metric family kind mismatch: " +
                                std::string(name));
  } else if ((*fit)->help.empty() && !help.empty()) {
    (*fit)->help = std::string(help);
  }
  Family& family = **fit;
  auto sit = series_pos(family);
  if (sit != family.series.end() && (*sit)->labels_key == labels_key) {
    return **sit;
  }
  auto series = std::make_unique<Series>();
  series->labels_key = labels_key;
  switch (kind) {
    case Kind::kCounter:
      series->counter = std::make_unique<MetricCounter>();
      break;
    case Kind::kGauge:
      series->gauge = std::make_unique<MetricGauge>();
      break;
    case Kind::kHistogram:
      series->histogram = std::make_unique<MetricHistogram>(&family.bounds);
      break;
  }
  sit = family.series.insert(sit, std::move(series));
  return **sit;
}

MetricCounter& MetricsRegistry::counter(std::string_view name,
                                        std::string_view help,
                                        const MetricLabels& labels) {
  return *find_or_create(name, help, Kind::kCounter, nullptr, labels).counter;
}

MetricGauge& MetricsRegistry::gauge(std::string_view name,
                                    std::string_view help,
                                    const MetricLabels& labels) {
  return *find_or_create(name, help, Kind::kGauge, nullptr, labels).gauge;
}

MetricHistogram& MetricsRegistry::histogram(
    std::string_view name, std::string_view help,
    const std::vector<double>& bounds_upper, const MetricLabels& labels) {
  return *find_or_create(name, help, Kind::kHistogram, &bounds_upper, labels)
              .histogram;
}

std::string MetricsRegistry::render_prometheus() const {
  std::string out;
  std::shared_lock lock(mu_);
  for (const auto& family : families_) {
    out += "# HELP ";
    out += family->name;
    out += ' ';
    append_help_escaped(out, family->help);
    out += '\n';
    out += "# TYPE ";
    out += family->name;
    out += ' ';
    switch (family->kind) {
      case Kind::kCounter:
        out += "counter";
        break;
      case Kind::kGauge:
        out += "gauge";
        break;
      case Kind::kHistogram:
        out += "histogram";
        break;
    }
    out += '\n';
    for (const auto& series : family->series) {
      switch (family->kind) {
        case Kind::kCounter:
          out += family->name;
          out += series->labels_key;
          out += ' ';
          out += std::to_string(series->counter->value());
          out += '\n';
          break;
        case Kind::kGauge:
          out += family->name;
          out += series->labels_key;
          out += ' ';
          out += format_value(series->gauge->value());
          out += '\n';
          break;
        case Kind::kHistogram: {
          const MetricHistogram& h = *series->histogram;
          // Re-render the label set with `le` appended; series labels
          // never contain `le` by construction (callers own no such
          // label on histogram families).
          const std::string& base = series->labels_key;
          auto bucket_line = [&](const std::string& le, std::uint64_t value) {
            out += family->name;
            out += "_bucket";
            if (base.empty()) {
              out += "{le=\"" + le + "\"}";
            } else {
              out.append(base, 0, base.size() - 1);
              out += ",le=\"" + le + "\"}";
            }
            out += ' ';
            out += std::to_string(value);
            out += '\n';
          };
          std::uint64_t cumulative = 0;
          for (std::size_t i = 0; i < family->bounds.size(); ++i) {
            cumulative += h.bucket_value(i);
            bucket_line(format_value(family->bounds[i]), cumulative);
          }
          cumulative += h.bucket_value(family->bounds.size());
          bucket_line("+Inf", cumulative);
          // An in-flight observe() may have bumped count_ but not the
          // bucket yet (or vice versa — the updates are relaxed).
          // Render _count as the +Inf cumulative value so the exposed
          // sample set is always internally consistent (`+Inf` ==
          // `_count`, the invariant strict parsers check).
          const std::uint64_t count = cumulative;
          out += family->name;
          out += "_sum";
          out += base;
          out += ' ';
          out += format_value(h.sum());
          out += '\n';
          out += family->name;
          out += "_count";
          out += base;
          out += ' ';
          out += std::to_string(count);
          out += '\n';
          break;
        }
      }
    }
  }
  return out;
}

std::size_t MetricsRegistry::series_count() const {
  std::shared_lock lock(mu_);
  std::size_t n = 0;
  for (const auto& family : families_) n += family->series.size();
  return n;
}

}  // namespace streamrel
