#include "streamrel/core/batch_evaluator.hpp"

#include <algorithm>
#include <chrono>

#include "streamrel/reliability/bounds.hpp"
#include "streamrel/util/trace.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace streamrel {

namespace {

double elapsed_ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

struct BatchEvaluator::Slot {
  QuerySession::PreparedQuery prepared;
  SolveOptions options;
  ExecContext ctx;          ///< shares the batch cancel token
  bool fallback = false;    ///< facade path (runs serially)
  double latency_ms = 0.0;  ///< this query's solve time (either phase)
};

BatchReport BatchEvaluator::evaluate(std::span<const WhatIfQuery> queries,
                                     const BatchOptions& options) {
  BatchReport batch;
  batch.reports.resize(queries.size());

  // Usage errors surface before any solving work.
  for (const WhatIfQuery& q : queries) {
    session_->validate_overrides(q.prob_overrides);
  }

  ExecContext batch_ctx;
  if (options.deadline_ms > 0.0) batch_ctx.set_deadline_ms(options.deadline_ms);
  batch_ctx.max_threads = options.max_threads;
  batch_ctx.progress = options.progress;  // slots copy the shared sink

  // Phase 1 — structural prepare, serial: cache lookups and cold builds.
  std::vector<Slot> slots(queries.size());
  {
    TraceSpan phase_span("batch_prepare", "batch");
    phase_span.arg("queries", static_cast<std::uint64_t>(queries.size()));
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const WhatIfQuery& q = queries[i];
      Slot& slot = slots[i];
      slot.options = options.base;
      slot.options.method = q.method;
      slot.options.context = nullptr;
      slot.ctx = batch_ctx;  // shared cancel token, own telemetry
      if (q.deadline_ms > 0.0) {
        const double batch_left = batch_ctx.remaining_ms();
        slot.ctx.set_deadline_ms(std::min(q.deadline_ms, batch_left));
      }
      session_->telemetry_.counter(telemetry_keys::kQueries) += 1;
      // Each prepared entry's side views pin the session snapshot, so
      // the whole batch accumulates against one frozen structure even if
      // the session is edited while results are still being read.
      slot.prepared =
          session_->prepare_cached(q.demand, slot.options, slot.ctx);
      slot.fallback = !slot.prepared.bottleneck_path;
    }
  }

  // Phase 2 — probability-only accumulation over pinned artifacts.
  // finish_prepared is const and touches no session state; the only
  // exception it could raise (bad override) was ruled out above, and
  // context stops come back as SolveStatus — nothing escapes the
  // parallel region.
  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (!slots[i].fallback) ready.push_back(i);
  }
  const auto accumulate_one = [&](std::size_t i) {
    const WhatIfQuery& q = queries[i];
    TraceSpan span("batch_query", "batch");
    span.arg("query", static_cast<std::uint64_t>(i));
    const auto start = std::chrono::steady_clock::now();
    batch.reports[i] = session_->finish_prepared(
        slots[i].prepared, slots[i].options, q.prob_overrides, &slots[i].ctx);
    slots[i].latency_ms = elapsed_ms_since(start);
  };
  {
    TraceSpan phase_span("batch_accumulate", "batch");
    phase_span.arg("ready", static_cast<std::uint64_t>(ready.size()));
#ifdef _OPENMP
    if (options.parallel_accumulate && ready.size() > 1) {
      const int threads = batch_ctx.resolved_threads();
      const auto n = static_cast<std::int64_t>(ready.size());
#pragma omp parallel for num_threads(threads) schedule(dynamic)
      for (std::int64_t j = 0; j < n; ++j) {
        accumulate_one(ready[static_cast<std::size_t>(j)]);
      }
    } else {
      for (std::size_t i : ready) accumulate_one(i);
    }
#else
    for (std::size_t i : ready) accumulate_one(i);
#endif
  }

  // Phase 3 — facade fallbacks (serial: they guard-edit the session
  // network), bounds for degraded answers, telemetry in query order.
  TraceSpan phase_span("batch_finalize", "batch");
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const WhatIfQuery& q = queries[i];
    Slot& slot = slots[i];
    SolveReport& report = batch.reports[i];
    if (slot.fallback) {
      session_->telemetry_.counter(telemetry_keys::kFallbackSolves) += 1;
      batch.telemetry.counter(telemetry_keys::kFallbackSolves) += 1;
      const auto start = std::chrono::steady_clock::now();
      report =
          session_->solve_fallback(q.demand, slot.options, q.prob_overrides,
                                   slot.ctx);
      slot.latency_ms = elapsed_ms_since(start);
    } else {
      slot.ctx.telemetry.merge(report.result.telemetry);
    }
    if (report.result.status != SolveStatus::kExact && !report.bounds) {
      report.bounds = session_->bounds_with_overrides(q.demand,
                                                      slot.options.bounds,
                                                      q.prob_overrides);
    }
    if (report.result.status == SolveStatus::kExact) batch.exact_count += 1;
    batch.telemetry.counter(telemetry_keys::kQueries) += 1;
    if (slot.fallback) {
      batch.telemetry.merge(slot.ctx.telemetry);
    } else {
      // Phase-2 slots ran concurrently, so summing their wall-clock
      // timers would overstate the batch; merge_parallel takes the max.
      // Counters still add, keeping the determinism contract intact.
      batch.telemetry.merge_parallel(slot.ctx.telemetry);
    }
    batch.telemetry.histogram("query_latency").record_ms(slot.latency_ms);
    session_->telemetry_.child("solves").merge(report.result.telemetry);
  }
  return batch;
}

}  // namespace streamrel
