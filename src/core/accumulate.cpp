#include "streamrel/core/accumulate.hpp"

#include <stdexcept>
#include <vector>

#include "streamrel/util/stats.hpp"

namespace streamrel {

namespace {

// Compresses a mask over the sparse `allowed` bit positions into a dense
// rank-indexed mask of popcount(allowed) bits.
Mask compress(Mask m, Mask allowed) {
  Mask out = 0;
  int rank = 0;
  for (Mask rest = allowed; rest != 0; rest &= rest - 1, ++rank) {
    if (m & (rest & (~rest + 1))) out |= bit(rank);
  }
  return out;
}

double accumulate_bucket_product(const MaskDistribution& source_side,
                                 const MaskDistribution& sink_side,
                                 Mask allowed) {
  KahanSum sum;
  for (const auto& [ms, ps] : source_side.buckets) {
    const Mask live = ms & allowed;
    if (live == 0) continue;
    for (const auto& [mt, pt] : sink_side.buckets) {
      if (live & mt) sum.add(ps * pt);
    }
  }
  return sum.value();
}

double accumulate_zeta(const MaskDistribution& source_side,
                       const MaskDistribution& sink_side, Mask allowed) {
  const int r = popcount(allowed);
  if (r > 26) {
    throw std::invalid_argument("zeta accumulation: allowed set too large");
  }
  // disjoint[m] = P_t(realized-set intersected with allowed is a subset
  // of m) — a subset-zeta transform over the compressed universe.
  std::vector<double> disjoint(std::size_t{1} << r, 0.0);
  for (const auto& [mt, pt] : sink_side.buckets) {
    disjoint[static_cast<std::size_t>(compress(mt & allowed, allowed))] += pt;
  }
  for (int i = 0; i < r; ++i) {
    const std::size_t stride = std::size_t{1} << i;
    for (std::size_t m = 0; m < disjoint.size(); ++m) {
      if (m & stride) disjoint[m] += disjoint[m ^ stride];
    }
  }
  // P(common assignment) = total - P(sink set avoids the source set).
  const Mask full = full_mask(r);
  KahanSum miss;
  for (const auto& [ms, ps] : source_side.buckets) {
    const Mask live = compress(ms & allowed, allowed);
    miss.add(ps * disjoint[static_cast<std::size_t>(full & ~live)]);
  }
  return source_side.total * sink_side.total - miss.value();
}

double accumulate_paper(const MaskDistribution& source_side,
                        const MaskDistribution& sink_side, Mask allowed) {
  const int r = popcount(allowed);
  if (r > 24) {
    throw std::invalid_argument(
        "paper inclusion-exclusion: allowed set too large (2^|D| terms)");
  }
  // Step 1: for every subset X of allowed assignments, the probability
  // that a side realizes ALL of X is a superset sum over its buckets.
  const std::size_t universe = std::size_t{1} << r;
  std::vector<double> realizes_all_s(universe, 0.0);
  std::vector<double> realizes_all_t(universe, 0.0);
  auto fill = [&](const MaskDistribution& dist, std::vector<double>& table) {
    for (const auto& [m, p] : dist.buckets) {
      table[static_cast<std::size_t>(compress(m & allowed, allowed))] += p;
    }
    // Superset-zeta: table[x] becomes sum over buckets whose compressed
    // mask is a superset of x.
    for (int i = 0; i < r; ++i) {
      const std::size_t stride = std::size_t{1} << i;
      for (std::size_t m = 0; m < universe; ++m) {
        if (!(m & stride)) table[m] += table[m | stride];
      }
    }
  };
  fill(source_side, realizes_all_s);
  fill(sink_side, realizes_all_t);

  // Step 2: inclusion-exclusion over non-empty X (Example 6):
  //   r = sum_X (-1)^(|X|+1) p_X,  p_X = P_s(all of X) * P_t(all of X).
  KahanSum sum;
  for (std::size_t x = 1; x < universe; ++x) {
    const double p_x = realizes_all_s[x] * realizes_all_t[x];
    sum.add((popcount(static_cast<Mask>(x)) % 2 == 1) ? p_x : -p_x);
  }
  return sum.value();
}

}  // namespace

double joint_success_probability(const MaskDistribution& source_side,
                                 const MaskDistribution& sink_side,
                                 Mask allowed,
                                 AccumulationStrategy strategy) {
  if (allowed == 0) return 0.0;
  if (strategy == AccumulationStrategy::kAuto) {
    const int r = popcount(allowed);
    const std::size_t pairs =
        source_side.buckets.size() * sink_side.buckets.size();
    strategy = (r <= 20 && (std::size_t{1} << r) < pairs)
                   ? AccumulationStrategy::kZetaTransform
                   : AccumulationStrategy::kBucketProduct;
  }
  switch (strategy) {
    case AccumulationStrategy::kPaperInclusionExclusion:
      return accumulate_paper(source_side, sink_side, allowed);
    case AccumulationStrategy::kZetaTransform:
      return accumulate_zeta(source_side, sink_side, allowed);
    case AccumulationStrategy::kBucketProduct:
      return accumulate_bucket_product(source_side, sink_side, allowed);
    case AccumulationStrategy::kAuto:
      break;
  }
  throw std::invalid_argument("unknown accumulation strategy");
}

}  // namespace streamrel
