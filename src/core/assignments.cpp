#include "streamrel/core/assignments.hpp"

#include <algorithm>
#include <stdexcept>

namespace streamrel {

Mask AssignmentSet::supported_by(Mask alive_bottleneck) const {
  Mask out = 0;
  for (std::size_t j = 0; j < assignments.size(); ++j) {
    const Mask supp = assignments[j].support();
    if ((supp & alive_bottleneck) == supp) out |= bit(static_cast<int>(j));
  }
  return out;
}

AssignmentMode resolve_assignment_mode(const FlowNetwork& net,
                                       const BottleneckPartition& partition,
                                       AssignmentMode requested) {
  if (requested != AssignmentMode::kAuto) return requested;
  // Forward-only is provably exact only when NO link can carry flow back
  // into the source side, i.e. every crossing arc is directed S -> T.
  // Undirected crossing links can carry net back-flow, and our property
  // tests exhibit undirected k = 3 instances where the optimal routing
  // needs it (see DESIGN.md), so kAuto plays safe and goes signed.
  for (EdgeId id : partition.crossing_edges) {
    const Edge& e = net.edge(id);
    if (!e.directed() ||
        !partition.side_s[static_cast<std::size_t>(e.u)]) {
      return AssignmentMode::kSigned;
    }
  }
  return AssignmentMode::kForwardOnly;
}

namespace {

// Per-link net-usage bounds given orientation and mode.
struct UsageBounds {
  Capacity lo = 0;
  Capacity hi = 0;
};

std::vector<UsageBounds> usage_bounds(const FlowNetwork& net,
                                      const BottleneckPartition& partition,
                                      Capacity d, AssignmentMode mode) {
  // Per-link directional capacities across the bipartition.
  std::vector<Capacity> fwd_caps, back_caps;
  Capacity total_fwd = 0, total_back = 0;
  for (EdgeId id : partition.crossing_edges) {
    const Edge& e = net.edge(id);
    const bool tail_on_s = partition.side_s[static_cast<std::size_t>(e.u)];
    Capacity fwd_cap, back_cap;
    if (e.directed()) {
      fwd_cap = tail_on_s ? e.capacity : 0;
      back_cap = tail_on_s ? 0 : e.capacity;
    } else {
      fwd_cap = e.capacity;
      back_cap = e.capacity;
    }
    fwd_caps.push_back(fwd_cap);
    back_caps.push_back(back_cap);
    total_fwd += fwd_cap;
    total_back += back_cap;
  }

  std::vector<UsageBounds> bounds;
  bounds.reserve(fwd_caps.size());
  for (std::size_t i = 0; i < fwd_caps.size(); ++i) {
    UsageBounds b;
    if (mode == AssignmentMode::kSigned) {
      // Any value-d flow's crossing pattern satisfies these outer bounds:
      // a link's net forward usage is at most d plus everything the other
      // links can carry backward, and its net backward usage at most what
      // the other links can carry forward beyond d.
      const Capacity hi_by_net = d + (total_back - back_caps[i]);
      b.hi = std::min(fwd_caps[i], hi_by_net);
      const Capacity lo_by_net =
          std::max<Capacity>(0, (total_fwd - fwd_caps[i]) - d);
      b.lo = -std::min(back_caps[i], lo_by_net);
    } else {
      // Paper model: every sub-stream crosses forward exactly once.
      b.hi = std::min(fwd_caps[i], d);
      b.lo = 0;
    }
    bounds.push_back(b);
  }
  return bounds;
}

void enumerate_rec(const std::vector<UsageBounds>& bounds, std::size_t index,
                   Capacity remaining, std::vector<Capacity>& current,
                   const AssignmentOptions& options, AssignmentSet& out) {
  if (index == bounds.size()) {
    if (remaining == 0) {
      if (out.size() >= options.max_assignments) {
        throw std::invalid_argument(
            "assignment set exceeds max_assignments; the bottleneck "
            "decomposition assumes constant d and k");
      }
      out.assignments.push_back(Assignment{current});
    }
    return;
  }
  // Prune with the range still achievable by the remaining suffix.
  Capacity suffix_lo = 0, suffix_hi = 0;
  for (std::size_t i = index + 1; i < bounds.size(); ++i) {
    suffix_lo += bounds[i].lo;
    suffix_hi += bounds[i].hi;
  }
  for (Capacity a = bounds[index].lo; a <= bounds[index].hi; ++a) {
    const Capacity rest = remaining - a;
    if (rest < suffix_lo || rest > suffix_hi) continue;
    current.push_back(a);
    enumerate_rec(bounds, index + 1, rest, current, options, out);
    current.pop_back();
  }
}

}  // namespace

AssignmentSet enumerate_assignments(const FlowNetwork& net,
                                    const BottleneckPartition& partition,
                                    Capacity d,
                                    const AssignmentOptions& options) {
  if (d <= 0) throw std::invalid_argument("demand rate must be positive");
  if (partition.crossing_edges.size() >
      static_cast<std::size_t>(kMaxMaskBits)) {
    throw std::invalid_argument("too many bottleneck links");
  }
  AssignmentSet set;
  set.mode = resolve_assignment_mode(net, partition, options.mode);
  const auto bounds = usage_bounds(net, partition, d, set.mode);
  std::vector<Capacity> current;
  current.reserve(bounds.size());
  enumerate_rec(bounds, 0, d, current, options, set);
  return set;
}

}  // namespace streamrel
