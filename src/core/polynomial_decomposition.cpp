#include "streamrel/core/polynomial_decomposition.hpp"

#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace streamrel {

namespace {

// Per realized mask, the number of side configurations with each failure
// count: counts[mask][j] = #configs realizing exactly `mask` with j dead
// side links.
using CountTable = std::unordered_map<Mask, std::vector<std::uint64_t>>;

CountTable bucket_counts(const std::vector<Mask>& array, int side_edges) {
  CountTable table;
  for (Mask config = 0; config < static_cast<Mask>(array.size()); ++config) {
    auto& row = table[array[static_cast<std::size_t>(config)]];
    if (row.empty()) {
      row.assign(static_cast<std::size_t>(side_edges) + 1, 0);
    }
    row[static_cast<std::size_t>(side_edges - popcount(config))]++;
  }
  return table;
}

// Compresses a mask to the dense bit positions of `allowed`.
Mask compress(Mask m, Mask allowed) {
  Mask out = 0;
  int rank = 0;
  for (Mask rest = allowed; rest != 0; rest &= rest - 1, ++rank) {
    if (m & (rest & (~rest + 1))) out |= bit(rank);
  }
  return out;
}

}  // namespace

ReliabilityPolynomial polynomial_bottleneck(
    const FlowNetwork& net, const FlowDemand& demand,
    const BottleneckPartition& partition, const BottleneckOptions& options) {
  net.check_demand(demand);
  const int m_total = net.num_edges();
  std::vector<std::uint64_t> n_j(static_cast<std::size_t>(m_total) + 1, 0);

  const AssignmentSet assignments =
      enumerate_assignments(net, partition, demand.rate, options.assignments);
  if (assignments.size() == 0) {
    return ReliabilityPolynomial(m_total, std::move(n_j));
  }

  const std::shared_ptr<const CompiledNetwork> snapshot = net.compile();
  const SideProblem side_s =
      make_side_problem(snapshot, demand, partition, /*source_side=*/true);
  const SideProblem side_t =
      make_side_problem(snapshot, demand, partition, /*source_side=*/false);
  const int m_s = side_s.view.num_edges();
  const int m_t = side_t.view.num_edges();
  const CountTable counts_s = bucket_counts(
      build_side_array(side_s, assignments, demand.rate, options.side), m_s);
  const CountTable counts_t = bucket_counts(
      build_side_array(side_t, assignments, demand.rate, options.side), m_t);

  const int k = partition.k();
  for (Mask alive = 0; alive < (Mask{1} << k); ++alive) {
    const Mask allowed = assignments.supported_by(alive);
    if (allowed == 0) continue;
    const int j_bottleneck = k - popcount(alive);
    const int r = popcount(allowed);
    if (r > 26) {
      throw std::invalid_argument(
          "polynomial decomposition: allowed assignment set too large");
    }

    // zeta[m][jt] = #sink-side configs with jt failures whose realized
    // set, restricted to `allowed`, is a SUBSET of m (compressed).
    std::vector<std::vector<std::uint64_t>> zeta(
        std::size_t{1} << r,
        std::vector<std::uint64_t>(static_cast<std::size_t>(m_t) + 1, 0));
    for (const auto& [mask, row] : counts_t) {
      auto& cell = zeta[static_cast<std::size_t>(
          compress(mask & allowed, allowed))];
      for (std::size_t jt = 0; jt <= static_cast<std::size_t>(m_t); ++jt) {
        cell[jt] += row[jt];
      }
    }
    for (int i = 0; i < r; ++i) {
      const std::size_t stride = std::size_t{1} << i;
      for (std::size_t m = 0; m < zeta.size(); ++m) {
        if (!(m & stride)) continue;
        const auto& src = zeta[m ^ stride];
        auto& dst = zeta[m];
        for (std::size_t jt = 0; jt <= static_cast<std::size_t>(m_t); ++jt) {
          dst[jt] += src[jt];
        }
      }
    }
    const auto& totals_t = zeta[(std::size_t{1} << r) - 1];

    // For every source bucket: successful sink counts per jt are
    // totals minus the disjoint ones; convolve over failure counts.
    const Mask full = full_mask(r);
    for (const auto& [mask, row_s] : counts_s) {
      const Mask live = compress(mask & allowed, allowed);
      const auto& disjoint = zeta[static_cast<std::size_t>(full & ~live)];
      for (std::size_t js = 0; js <= static_cast<std::size_t>(m_s); ++js) {
        if (row_s[js] == 0) continue;
        for (std::size_t jt = 0; jt <= static_cast<std::size_t>(m_t); ++jt) {
          const std::uint64_t good = totals_t[jt] - disjoint[jt];
          if (good == 0) continue;
          n_j[static_cast<std::size_t>(j_bottleneck) + js + jt] +=
              row_s[js] * good;
        }
      }
    }
  }
  return ReliabilityPolynomial(m_total, std::move(n_j));
}

}  // namespace streamrel
