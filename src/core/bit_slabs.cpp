#include "streamrel/core/bit_slabs.hpp"

#include <array>
#include <stdexcept>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define STREAMREL_X86_DISPATCH 1
#include <immintrin.h>
#endif

namespace streamrel {

namespace {

// Lane pattern of edge e over the first 64 Gray codes: bit L set iff
// bit e of gray_code(L). gray_code(L) for L < 64 occupies bits 0..5, so
// only six patterns are nonzero.
constexpr std::array<std::uint64_t, 6> kLowPatterns = [] {
  std::array<std::uint64_t, 6> a{};
  for (int e = 0; e < 6; ++e) {
    for (int L = 0; L < 64; ++L) {
      if (test_bit(gray_code(static_cast<Mask>(L)), e)) {
        a[static_cast<std::size_t>(e)] |= bit(L);
      }
    }
  }
  return a;
}();

}  // namespace

BitSlabs::BitSlabs(int num_edges) {
  if (num_edges < 0 || num_edges > kMaxMaskBits) {
    throw std::invalid_argument("BitSlabs: edge count out of mask range");
  }
  words_.assign(static_cast<std::size_t>(num_edges), 0);
}

std::uint64_t BitSlabs::low_pattern(int e) noexcept {
  return e < 6 ? kLowPatterns[static_cast<std::size_t>(e)] : 0;
}

void BitSlabs::fill(Mask base_rank) {
  if ((base_rank & 63) != 0) {
    throw std::invalid_argument("BitSlabs::fill: base rank must be 64-aligned");
  }
  // gray_code(base + L) == gray_code(base) ^ gray_code(L) for an aligned
  // base (base | L splits XOR-disjointly, even across the bit-5/6 seam),
  // so each edge's word is its constant low pattern XOR a broadcast of
  // that edge's bit in gray_code(base).
  const Mask g = gray_code(base_rank);
  const int m = num_edges();
  for (int e = 0; e < m; ++e) {
    words_[static_cast<std::size_t>(e)] =
        low_pattern(e) ^ (test_bit(g, e) ? ~std::uint64_t{0} : 0);
  }
}

SlabMaskTable slab_form(const std::vector<Mask>& config_indexed,
                        int num_links) {
  if (config_indexed.size() != (std::size_t{1} << num_links)) {
    throw std::invalid_argument("slab_form: array size is not 2^num_links");
  }
  SlabMaskTable table;
  table.num_links = num_links;
  table.by_rank.resize(config_indexed.size());
  for (std::size_t rank = 0; rank < config_indexed.size(); ++rank) {
    table.by_rank[rank] =
        config_indexed[static_cast<std::size_t>(gray_code(rank))];
  }
  return table;
}

std::vector<Mask> config_form(const SlabMaskTable& table) {
  std::vector<Mask> array(table.by_rank.size());
  for (std::size_t rank = 0; rank < table.by_rank.size(); ++rank) {
    array[static_cast<std::size_t>(gray_code(rank))] = table.by_rank[rank];
  }
  return array;
}

void lane_config_products_portable(std::span<const std::uint64_t> words,
                                   std::span<const double> probs, int lanes,
                                   double* out) {
  for (int L = 0; L < lanes; ++L) {
    double acc = 1.0;
    for (std::size_t e = 0; e < words.size(); ++e) {
      const double p = probs[e];
      acc *= ((words[e] >> L) & 1) != 0 ? 1.0 - p : p;
    }
    out[L] = acc;
  }
}

namespace {

using LaneKernel = void (*)(std::span<const std::uint64_t>,
                            std::span<const double>, int, double*);

#ifdef STREAMREL_X86_DISPATCH

// Four lanes per vector, identical per-lane operation sequence to the
// portable kernel: one blend-selected multiply per edge, in ascending
// edge order — so the two paths agree bitwise and the fold's numbers do
// not depend on the host CPU.
__attribute__((target("avx2"))) void lane_products_avx2(
    std::span<const std::uint64_t> words, std::span<const double> probs,
    int lanes, double* out) {
  const __m256i one = _mm256_set1_epi64x(1);
  int L = 0;
  for (; L + 4 <= lanes; L += 4) {
    const __m256i shift = _mm256_add_epi64(
        _mm256_set1_epi64x(static_cast<long long>(L)),
        _mm256_set_epi64x(3, 2, 1, 0));
    __m256d acc = _mm256_set1_pd(1.0);
    for (std::size_t e = 0; e < words.size(); ++e) {
      const double p = probs[e];
      const __m256i word =
          _mm256_set1_epi64x(static_cast<long long>(words[e]));
      const __m256i bits =
          _mm256_and_si256(_mm256_srlv_epi64(word, shift), one);
      const __m256d alive_mask =
          _mm256_castsi256_pd(_mm256_cmpeq_epi64(bits, one));
      acc = _mm256_mul_pd(
          acc, _mm256_blendv_pd(_mm256_set1_pd(p), _mm256_set1_pd(1.0 - p),
                                alive_mask));
    }
    _mm256_storeu_pd(out + L, acc);
  }
  for (; L < lanes; ++L) {
    double acc = 1.0;
    for (std::size_t e = 0; e < words.size(); ++e) {
      const double p = probs[e];
      acc *= ((words[e] >> L) & 1) != 0 ? 1.0 - p : p;
    }
    out[L] = acc;
  }
}

#endif  // STREAMREL_X86_DISPATCH

LaneKernel resolve_lane_kernel() noexcept {
#ifdef STREAMREL_X86_DISPATCH
  if (__builtin_cpu_supports("avx2")) return &lane_products_avx2;
#endif
  return &lane_config_products_portable;
}

LaneKernel active_lane_kernel() noexcept {
  static const LaneKernel kernel = resolve_lane_kernel();
  return kernel;
}

}  // namespace

void lane_config_products(std::span<const std::uint64_t> words,
                          std::span<const double> probs, int lanes,
                          double* out) {
  active_lane_kernel()(words, probs, lanes, out);
}

bool lane_kernel_avx2_active() noexcept {
  return active_lane_kernel() != &lane_config_products_portable;
}

}  // namespace streamrel
