#pragma once
// The paper's algorithm, end to end (Fig. 6):
//
//   1. enumerate the assignment set D over the bottleneck links (§III-B);
//   2. build the two side arrays and fold them into mask distributions
//      (§III-C);
//   3. for every configuration E'' of alive bottleneck links, restrict D
//      to the assignments E'' supports (Definition 1), compute r_{E''}
//      by inclusion–exclusion (§IV), and combine: R = sum p_{E''} r_{E''}
//      (Equations 2–3).
//
// Runtime O(2^{alpha |E|} |V||E|) for constant d and k, versus the naive
// O(2^{|E|} |V||E|).

#include "core/accumulate.hpp"
#include "core/assignments.hpp"
#include "core/side_array.hpp"
#include "cuts/bottleneck.hpp"
#include "reliability/throughput.hpp"
#include "reliability/types.hpp"

namespace streamrel {

struct BottleneckOptions {
  AssignmentOptions assignments{};
  SideArrayOptions side{};
  AccumulationStrategy accumulation = AccumulationStrategy::kAuto;
};

struct BottleneckResult {
  double reliability = 0.0;
  SolveStatus status = SolveStatus::kExact;
  /// Work counters: totals at the root, per-side breakdowns under the
  /// "side_s" / "side_t" children. Deterministic across thread counts.
  Telemetry telemetry;
  int num_assignments = 0;  ///< |D|
  AssignmentMode mode_used = AssignmentMode::kForwardOnly;
  PartitionStats partition_stats;

  bool exact() const noexcept { return status == SolveStatus::kExact; }

  /// Side configurations enumerated.
  std::uint64_t configurations() const {
    return telemetry.counter_or(telemetry_keys::kConfigurations);
  }
  std::uint64_t maxflow_calls() const {
    return telemetry.counter_or(telemetry_keys::kMaxflowCalls);
  }
  /// Side-array feasibility answers obtained by monotonicity alone.
  std::uint64_t pruned_decisions() const {
    return telemetry.counter_or(telemetry_keys::kPrunedDecisions);
  }
  /// Single-link incremental repairs.
  std::uint64_t engine_toggles() const {
    return telemetry.counter_or(telemetry_keys::kEngineToggles);
  }

  operator ReliabilityResult() const {
    ReliabilityResult r;
    r.reliability = reliability;
    r.status = status;
    r.telemetry = telemetry;
    return r;
  }
};

/// Exact reliability via the bottleneck decomposition over `partition`.
/// Requires both sides to have <= 63 internal links and |D| <= 63.
/// A context stop (deadline/cancel) observed inside the side sweeps or
/// the accumulation loop yields status != kExact with reliability 0.
BottleneckResult reliability_bottleneck(const FlowNetwork& net,
                                        const FlowDemand& demand,
                                        const BottleneckPartition& partition,
                                        const BottleneckOptions& options = {},
                                        const ExecContext* ctx = nullptr);

/// Deliverable-throughput distribution via the decomposition: one
/// bottleneck run per level v = 1..demand.rate (P(>= v) is the
/// reliability of demand v). Same requirements as reliability_bottleneck
/// at every level; levels whose assignment sets would explode propagate
/// the exception.
ThroughputDistribution throughput_bottleneck(
    const FlowNetwork& net, const FlowDemand& demand,
    const BottleneckPartition& partition,
    const BottleneckOptions& options = {});

/// The paper's Equation (1) for a single bridge link e*: the reliability
/// of a bridged graph is r(G_s) * (1 - p(e*)) * r(G_t), with the side
/// reliabilities computed by naive enumeration against demands
/// (s, x, d) and (y, t, d). Provided for the Fig.-2 reproduction and as
/// an independently-coded cross-check of the k = 1 decomposition.
double reliability_bridge_formula(const FlowNetwork& net,
                                  const FlowDemand& demand, EdgeId bridge);

}  // namespace streamrel
