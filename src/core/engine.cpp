#include "streamrel/core/engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "streamrel/util/trace.hpp"

namespace streamrel {

namespace {

bool all_undirected(const FlowNetwork& net) {
  for (const Edge& e : net.edges()) {
    if (e.directed()) return false;
  }
  return true;
}

// Every engine opens one top-level span tagged with the instance shape,
// so a trace always shows which engine ran and for how long.
TraceSpan engine_span(std::string_view engine, const FlowNetwork& net) {
  TraceSpan span(engine, "engine");
  span.arg("nodes", static_cast<std::int64_t>(net.num_nodes()))
      .arg("links", static_cast<std::int64_t>(net.num_edges()));
  return span;
}

class NaiveEngine final : public Engine {
 public:
  std::string_view name() const noexcept override { return "naive"; }
  Method method() const noexcept override { return Method::kNaive; }
  bool applicable(const FlowNetwork& net,
                  const FlowDemand& demand) const override {
    (void)demand;
    return net.fits_mask();
  }
  SolveReport solve(const FlowNetwork& net, const FlowDemand& demand,
                    const SolveOptions& options,
                    const ExecContext* ctx) const override {
    const TraceSpan span = engine_span(name(), net);
    SolveReport report;
    report.method_used = Method::kNaive;
    report.engine = name();
    report.result = reliability_naive(net, demand, options.naive, ctx);
    return report;
  }
};

class FactoringEngine final : public Engine {
 public:
  std::string_view name() const noexcept override { return "factoring"; }
  Method method() const noexcept override { return Method::kFactoring; }
  bool applicable(const FlowNetwork& net,
                  const FlowDemand& demand) const override {
    (void)net;
    (void)demand;
    return true;
  }
  SolveReport solve(const FlowNetwork& net, const FlowDemand& demand,
                    const SolveOptions& options,
                    const ExecContext* ctx) const override {
    const TraceSpan span = engine_span(name(), net);
    SolveReport report;
    report.method_used = Method::kFactoring;
    report.engine = name();
    report.result = reliability_factoring(net, demand, options.factoring, ctx);
    return report;
  }
};

class FrontierEngine final : public Engine {
 public:
  std::string_view name() const noexcept override { return "frontier"; }
  Method method() const noexcept override { return Method::kFrontier; }
  bool applicable(const FlowNetwork& net,
                  const FlowDemand& demand) const override {
    return demand.rate == 1 && all_undirected(net);
  }
  SolveReport solve(const FlowNetwork& net, const FlowDemand& demand,
                    const SolveOptions& options,
                    const ExecContext* ctx) const override {
    const TraceSpan span = engine_span(name(), net);
    SolveReport report;
    report.method_used = Method::kFrontier;
    report.engine = name();
    report.result =
        reliability_connectivity(net, demand, options.frontier, ctx);
    return report;
  }
};

class BottleneckEngine final : public Engine {
 public:
  std::string_view name() const noexcept override { return "bottleneck"; }
  Method method() const noexcept override { return Method::kBottleneck; }
  bool applicable(const FlowNetwork& net,
                  const FlowDemand& demand) const override {
    (void)net;
    (void)demand;
    return true;  // decided by the candidate walk in solve()
  }
  bool delta_aware() const noexcept override {
    // The decomposition's partitions, assignment sets and side arrays are
    // all capacity/topology artifacts with cut-local dependence: a small
    // delta leaves most of them valid, which is exactly what
    // QuerySession's cut-scoped cache exploits.
    return true;
  }
  SolveReport solve(const FlowNetwork& net, const FlowDemand& demand,
                    const SolveOptions& options,
                    const ExecContext* ctx) const override {
    const TraceSpan span = engine_span(name(), net);
    SolveReport report;
    report.method_used = Method::kBottleneck;
    report.engine = name();

    std::vector<PartitionChoice> candidates;
    try {
      candidates = find_candidate_partitions(
          net, demand.source, demand.sink, options.partition_search, ctx);
    } catch (const ExecInterrupted& stop) {
      report.result.status = stop.status;
      return report;
    }

    // One frozen snapshot shared by every candidate's side views.
    const std::shared_ptr<const CompiledNetwork> snapshot = net.compile();

    // Try candidates best first; one can still fail for demand-specific
    // reasons (assignment-set blow-up), in which case the next one gets
    // its chance.
    bool overflowed = false;
    for (PartitionChoice& choice : candidates) {
      // Worthwhile when the decomposition shrinks the enumeration
      // exponent: max side strictly below |E| - k means
      // 2^max_side * 2 < 2^|E|. An EXPLICIT kBottleneck request runs
      // regardless; the kAuto chain moves on.
      const int max_side =
          std::max(choice.stats.edges_s, choice.stats.edges_t);
      const bool worthwhile =
          max_side + choice.stats.k < net.num_edges() || !net.fits_mask();
      if (options.method != Method::kBottleneck && !worthwhile) break;
      try {
        BottleneckResult result = reliability_bottleneck(
            net, demand, choice.partition, options.bottleneck, ctx, snapshot);
        if (result.status == SolveStatus::kMaskOverflow) {
          // This candidate needs more than kMaxMaskBits links in one
          // failure mask; a more balanced candidate may still fit.
          overflowed = true;
          continue;
        }
        report.result = result;
        report.partition = std::move(choice);
        return report;
      } catch (const std::invalid_argument&) {
        continue;
      }
    }
    if (overflowed) {
      // Every usable candidate overflowed the mask: not a usage error but
      // a capability limit — report the status so kAuto can fall through
      // to a non-enumerating engine.
      report.result.status = SolveStatus::kMaskOverflow;
      return report;
    }
    throw std::invalid_argument(
        "no usable bottleneck partition found for this network");
  }
};

class HybridMcEngine final : public Engine {
 public:
  std::string_view name() const noexcept override { return "hybrid-mc"; }
  Method method() const noexcept override { return Method::kHybridMc; }
  bool applicable(const FlowNetwork& net,
                  const FlowDemand& demand) const override {
    (void)net;
    (void)demand;
    // Estimates are never substituted for an exact answer: the kAuto
    // chain must skip this engine, so it only runs on explicit request.
    return false;
  }
  SolveReport solve(const FlowNetwork& net, const FlowDemand& demand,
                    const SolveOptions& options,
                    const ExecContext* ctx) const override {
    const TraceSpan span = engine_span(name(), net);
    SolveReport report;
    report.method_used = Method::kHybridMc;
    report.engine = name();

    std::optional<PartitionChoice> choice;
    try {
      choice = find_best_partition(net, demand.source, demand.sink,
                                   options.partition_search, ctx);
    } catch (const ExecInterrupted& stop) {
      report.result.status = stop.status;
      return report;
    }
    if (!choice) {
      throw std::invalid_argument(
          "no usable bottleneck partition found for this network");
    }
    const HybridMonteCarloResult hybrid = reliability_bottleneck_hybrid(
        net, demand, choice->partition, options.hybrid, ctx);
    report.result.reliability = hybrid.estimate;
    report.result.status = hybrid.status;
    report.result.telemetry = hybrid.telemetry;
    report.partition = std::move(*choice);
    return report;
  }
};

}  // namespace

EngineRegistry::EngineRegistry() {
  register_engine(std::make_unique<BottleneckEngine>());
  register_engine(std::make_unique<NaiveEngine>());
  register_engine(std::make_unique<FactoringEngine>());
  register_engine(std::make_unique<FrontierEngine>());
  register_engine(std::make_unique<HybridMcEngine>());
}

EngineRegistry& EngineRegistry::instance() {
  static EngineRegistry registry;
  return registry;
}

void EngineRegistry::register_engine(std::unique_ptr<Engine> engine) {
  if (!engine) throw std::invalid_argument("null engine");
  for (auto& existing : engines_) {
    if (existing->method() == engine->method()) {
      existing = std::move(engine);
      return;
    }
  }
  engines_.push_back(std::move(engine));
}

const Engine* EngineRegistry::find(Method method) const noexcept {
  for (const auto& engine : engines_) {
    if (engine->method() == method) return engine.get();
  }
  return nullptr;
}

const Engine& EngineRegistry::require(Method method) const {
  const Engine* engine = find(method);
  if (!engine) {
    throw std::invalid_argument("no engine registered for requested method");
  }
  return *engine;
}

std::vector<const Engine*> EngineRegistry::engines() const {
  std::vector<const Engine*> out;
  out.reserve(engines_.size());
  for (const auto& engine : engines_) out.push_back(engine.get());
  return out;
}

}  // namespace streamrel
