#include "streamrel/core/shared_risk.hpp"

#include <stdexcept>

#include "streamrel/util/bitops.hpp"
#include "streamrel/util/stats.hpp"

namespace streamrel {

SharedRiskResult reliability_with_shared_risks(
    const FlowNetwork& net, const FlowDemand& demand,
    const std::vector<SharedRiskGroup>& groups,
    const SolveOptions& options) {
  net.check_demand(demand);
  if (groups.size() > 20) {
    throw std::invalid_argument("too many shared-risk groups (max 20)");
  }
  for (const SharedRiskGroup& g : groups) {
    if (!(g.failure_prob >= 0.0) || !(g.failure_prob < 1.0)) {
      throw std::invalid_argument("group failure probability not in [0, 1)");
    }
    for (EdgeId id : g.edges) {
      if (!net.valid_edge(id)) {
        throw std::invalid_argument("group references unknown edge");
      }
    }
  }

  SharedRiskResult result;
  KahanSum total;
  const Mask states = Mask{1} << groups.size();
  result.group_states = states;
  FlowNetwork work = net;
  for (Mask alive_groups = 0; alive_groups < states; ++alive_groups) {
    // Probability of exactly this group state.
    double p_state = 1.0;
    for (std::size_t g = 0; g < groups.size(); ++g) {
      p_state *= test_bit(alive_groups, static_cast<int>(g))
                     ? (1.0 - groups[g].failure_prob)
                     : groups[g].failure_prob;
    }
    if (p_state == 0.0) continue;

    // Force the links of failed groups down by zeroing their capacity
    // (keeps edge ids stable; their own failure state marginalizes out).
    for (EdgeId id = 0; id < net.num_edges(); ++id) {
      work.set_capacity(id, net.edge(id).capacity);
    }
    for (std::size_t g = 0; g < groups.size(); ++g) {
      if (test_bit(alive_groups, static_cast<int>(g))) continue;
      for (EdgeId id : groups[g].edges) work.set_capacity(id, 0);
    }

    const SolveReport report = compute_reliability(work, demand, options);
    result.maxflow_calls += report.result.maxflow_calls();
    total.add(p_state * report.result.reliability);
  }
  result.reliability = total.value();
  return result;
}

}  // namespace streamrel
