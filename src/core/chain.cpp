#include "streamrel/core/chain.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <unordered_map>

#include "streamrel/core/accumulate.hpp"
#include "streamrel/core/bottleneck_algorithm.hpp"
#include "streamrel/core/side_array.hpp"
#include "streamrel/graph/subgraph.hpp"
#include "streamrel/maxflow/config_residual.hpp"
#include "streamrel/util/config_prob.hpp"
#include "streamrel/util/stats.hpp"
#include "streamrel/util/trace.hpp"

namespace streamrel {

namespace {

// Distribution over "reachable assignment subset" masks.
using StateMap = std::map<Mask, double>;

struct BoundaryInfo {
  BottleneckPartition partition;   ///< side_s == layers <= b
  AssignmentSet assignments;
  std::vector<double> failure_probs;  ///< of the crossing edges
};

// Relation arrays for one middle layer: per failure configuration of the
// layer's internal links, a mask over (left assignment, right assignment)
// pairs the layer can route simultaneously... pair (i, j) is realized iff
// the layer routes left assignment i's boundary flows into right
// assignment j's. Bit index: i * |D_right| + j.
MaskDistribution build_middle_distribution(
    const NetworkView& view, const std::vector<NodeId>& left_endpoints,
    const std::vector<NodeId>& right_endpoints, const AssignmentSet& d_left,
    const AssignmentSet& d_right, MaxFlowAlgorithm algorithm,
    std::uint64_t* maxflow_calls, const ExecContext* ctx) {
  const int pairs = d_left.size() * d_right.size();
  if (pairs > kMaxMaskBits) {
    throw std::invalid_argument(
        "chain decomposition: |D_left| * |D_right| exceeds 63");
  }
  if (!view.fits_mask()) {
    throw std::invalid_argument("chain layer exceeds 63 links");
  }

  ConfigResidual residual(view);
  const NodeId super_source = residual.add_super_node();
  const NodeId super_sink = residual.add_super_node();
  // Super-arc layout: per left endpoint an in/out pair, then per right
  // endpoint an in/out pair (caps set per assignment pair).
  for (NodeId ep : left_endpoints) {
    residual.add_super_arc(super_source, ep, 0, 0);
    residual.add_super_arc(ep, super_sink, 0, 0);
  }
  for (NodeId ep : right_endpoints) {
    residual.add_super_arc(super_source, ep, 0, 0);
    residual.add_super_arc(ep, super_sink, 0, 0);
  }
  auto solver = make_solver(algorithm);

  const Mask total_configs = Mask{1} << view.num_edges();
  TraceSpan span("middle_layer_sweep", "sweep");
  span.arg("links", static_cast<std::int64_t>(view.num_edges()))
      .arg("pairs", static_cast<std::int64_t>(pairs));
  if (ProgressReporter* reporter = exec_progress(ctx)) {
    reporter->add_total(static_cast<std::uint64_t>(total_configs) *
                        static_cast<std::uint64_t>(pairs));
  }
  ProgressMarker progress(exec_progress(ctx));
  std::uint64_t walked = 0;
  std::uint64_t calls = 0;
  std::vector<Mask> array(static_cast<std::size_t>(total_configs), 0);
  for (int i = 0; i < d_left.size(); ++i) {
    for (int j = 0; j < d_right.size(); ++j) {
      // Left usage > 0 enters this layer; right usage > 0 leaves it.
      Capacity required = 0;
      const auto& left =
          d_left.assignments[static_cast<std::size_t>(i)].usage;
      const auto& right =
          d_right.assignments[static_cast<std::size_t>(j)].usage;
      for (std::size_t e = 0; e < left.size(); ++e) {
        const Capacity u = left[e];
        const Capacity mag = u > 0 ? u : -u;
        residual.set_super_arc(2 * e, u > 0 ? mag : 0, 0);      // in
        residual.set_super_arc(2 * e + 1, u > 0 ? 0 : mag, 0);  // out
        if (u > 0) required += mag;
      }
      const std::size_t base = 2 * left.size();
      for (std::size_t e = 0; e < right.size(); ++e) {
        const Capacity u = right[e];
        const Capacity mag = u > 0 ? u : -u;
        residual.set_super_arc(base + 2 * e, u > 0 ? 0 : mag, 0);
        residual.set_super_arc(base + 2 * e + 1, u > 0 ? mag : 0, 0);
        if (u < 0) required += mag;
      }
      const int pair_bit = i * d_right.size() + j;
      for (Mask config = 0; config < total_configs; ++config) {
        if ((config & (ExecContext::kPollStride - 1)) == 0) {
          if (ctx) ctx->check();
          progress.at(walked);
        }
        ++walked;
        residual.reset(config);
        if (maxflow_calls) ++*maxflow_calls;
        ++calls;
        STREAMREL_TRACE_SAMPLED_SPAN(mf_span, calls, "maxflow", "maxflow");
        if (solver->solve(residual.graph(), super_source, super_sink,
                          required) >= required) {
          array[static_cast<std::size_t>(config)] |= bit(pair_bit);
        }
      }
    }
  }
  progress.at(walked);

  const ConfigProbTable probs(view.failure_probs());
  std::unordered_map<Mask, double> buckets;
  KahanSum total;
  for (Mask config = 0; config < total_configs; ++config) {
    const double p = probs.prob(config);
    buckets[array[static_cast<std::size_t>(config)]] += p;
    total.add(p);
  }
  MaskDistribution dist;
  dist.buckets.assign(buckets.begin(), buckets.end());
  std::sort(dist.buckets.begin(), dist.buckets.end());
  dist.total = total.value();
  return dist;
}

// Filters a state distribution through one boundary's 2^k link-failure
// configurations: each surviving assignment must be supported
// (Definition 1) by the alive links.
StateMap filter_boundary(const StateMap& state, const BoundaryInfo& boundary) {
  const ConfigProbTable probs(boundary.failure_probs);
  const Mask total = Mask{1}
                     << boundary.partition.k();
  StateMap out;
  for (Mask alive = 0; alive < total; ++alive) {
    const double p = probs.prob(alive);
    const Mask allowed = boundary.assignments.supported_by(alive);
    for (const auto& [mask, q] : state) {
      out[mask & allowed] += p * q;
    }
  }
  return out;
}

// Pushes a state over D_left through a middle layer's relation
// distribution, producing a state over D_right.
StateMap apply_middle(const StateMap& state, const MaskDistribution& middle,
                      int d_right_size) {
  const Mask right_full = full_mask(d_right_size);
  StateMap out;
  for (const auto& [set_mask, q] : state) {
    for (const auto& [relation, w] : middle.buckets) {
      Mask reachable = 0;
      Mask rest = set_mask;
      while (rest != 0) {
        const int i = lowest_bit(rest);
        rest &= rest - 1;
        reachable |=
            (relation >> (i * d_right_size)) & right_full;
      }
      out[reachable] += q * w;
    }
  }
  return out;
}

}  // namespace

ReliabilityResult reliability_chain(const FlowNetwork& net,
                                    const FlowDemand& demand,
                                    const std::vector<int>& layer,
                                    const ChainOptions& options,
                                    const ExecContext* ctx) {
  net.check_demand(demand);
  if (layer.size() != static_cast<std::size_t>(net.num_nodes())) {
    throw std::invalid_argument("layer vector size mismatch");
  }
  const int num_layers =
      1 + *std::max_element(layer.begin(), layer.end());
  if (num_layers < 2) {
    throw std::invalid_argument("chain needs >= 2 layers");
  }
  for (int l : layer) {
    if (l < 0) throw std::invalid_argument("negative layer index");
  }
  if (layer[static_cast<std::size_t>(demand.source)] != 0 ||
      layer[static_cast<std::size_t>(demand.sink)] != num_layers - 1) {
    throw std::invalid_argument(
        "source must sit in layer 0, sink in the last layer");
  }
  for (const Edge& e : net.edges()) {
    const int du = layer[static_cast<std::size_t>(e.u)];
    const int dv = layer[static_cast<std::size_t>(e.v)];
    if (du != dv && du != dv + 1 && dv != du + 1) {
      throw std::invalid_argument(
          "edges must be layer-internal or join consecutive layers");
    }
  }

  ReliabilityResult result;

  // Boundary partitions and assignment sets.
  std::vector<BoundaryInfo> boundaries;
  boundaries.reserve(static_cast<std::size_t>(num_layers - 1));
  for (int b = 0; b + 1 < num_layers; ++b) {
    std::vector<bool> side(static_cast<std::size_t>(net.num_nodes()));
    for (NodeId n = 0; n < net.num_nodes(); ++n) {
      side[static_cast<std::size_t>(n)] =
          layer[static_cast<std::size_t>(n)] <= b;
    }
    BoundaryInfo info{
        partition_from_sides(net, demand.source, demand.sink, std::move(side)),
        {},
        {}};
    info.assignments = enumerate_assignments(net, info.partition, demand.rate,
                                             options.assignments);
    for (EdgeId id : info.partition.crossing_edges) {
      info.failure_probs.push_back(net.edge(id).failure_prob);
    }
    boundaries.push_back(std::move(info));
  }
  for (const BoundaryInfo& b : boundaries) {
    if (b.assignments.size() == 0) return result;  // a boundary is too thin
  }

  // One frozen snapshot backs the side problems and every per-layer view.
  const std::shared_ptr<const CompiledNetwork> snapshot = net.compile();

  // Per-layer zero-copy views and boundary endpoints (in view ids).
  auto layer_view = [&](int l) {
    std::vector<bool> in(static_cast<std::size_t>(net.num_nodes()));
    for (NodeId n = 0; n < net.num_nodes(); ++n) {
      in[static_cast<std::size_t>(n)] =
          layer[static_cast<std::size_t>(n)] == l;
    }
    return NetworkView(snapshot, in);
  };
  auto endpoints_in_layer = [&](const BoundaryInfo& b, int l,
                                const NetworkView& view) {
    std::vector<NodeId> eps;
    for (EdgeId id : b.partition.crossing_edges) {
      const Edge& e = net.edge(id);
      const NodeId orig =
          layer[static_cast<std::size_t>(e.u)] == l ? e.u : e.v;
      eps.push_back(view.view_node(orig));
    }
    return eps;
  };

  const SideArrayOptions side_opts{options.algorithm,
                                   FeasibilityMethod::kPerAssignment, true};

  SideArrayStats side_stats;  // aggregated over the two side builds
  std::uint64_t middle_calls = 0;
  std::uint64_t configurations = 0;
  try {
    // Source-side state: layer 0's array over D_0.
    const SideProblem first_side = make_side_problem(
        snapshot, demand, boundaries.front().partition, /*source_side=*/true);
    const std::vector<Mask> first_array =
        build_side_array(first_side, boundaries.front().assignments,
                         demand.rate, side_opts, &side_stats, ctx);
    configurations += first_array.size();
    StateMap state;
    for (const auto& [mask, p] :
         bucket_side_array(first_side, first_array).buckets) {
      state[mask] += p;
    }

    for (std::size_t b = 0; b < boundaries.size(); ++b) {
      if (ctx) ctx->check();
      state = filter_boundary(state, boundaries[b]);
      if (b + 1 < boundaries.size()) {
        const int l = static_cast<int>(b) + 1;
        const NetworkView view = layer_view(l);
        const auto left = endpoints_in_layer(boundaries[b], l, view);
        const auto right = endpoints_in_layer(boundaries[b + 1], l, view);
        const MaskDistribution middle = build_middle_distribution(
            view, left, right, boundaries[b].assignments,
            boundaries[b + 1].assignments, options.algorithm, &middle_calls,
            ctx);
        configurations += Mask{1} << view.num_edges();
        state = apply_middle(state, middle,
                             boundaries[b + 1].assignments.size());
      }
    }

    // Sink-side finish: last layer's array over D_{last}.
    const SideProblem last_side = make_side_problem(
        snapshot, demand, boundaries.back().partition, /*source_side=*/false);
    const std::vector<Mask> last_array =
        build_side_array(last_side, boundaries.back().assignments,
                         demand.rate, side_opts, &side_stats, ctx);
    configurations += last_array.size();
    const MaskDistribution final_dist =
        bucket_side_array(last_side, last_array);

    KahanSum total;
    for (const auto& [set_mask, q] : state) {
      if (set_mask == 0) continue;
      for (const auto& [mt, w] : final_dist.buckets) {
        if (set_mask & mt) total.add(q * w);
      }
    }
    result.reliability = total.value();
  } catch (const ExecInterrupted& stop) {
    result.status = stop.status;
    result.reliability = 0.0;
  }
  result.telemetry.merge(side_stats.telemetry);
  result.telemetry.counter(telemetry_keys::kMaxflowCalls) += middle_calls;
  result.telemetry.counter(telemetry_keys::kConfigurations) += configurations;
  return result;
}

std::vector<int> layers_from_cuts(
    const FlowNetwork& net, NodeId s, NodeId t,
    const std::vector<std::vector<EdgeId>>& ordered_cuts) {
  if (!net.valid_node(s) || !net.valid_node(t)) {
    throw std::invalid_argument("bad endpoints");
  }
  std::vector<int> layer(static_cast<std::size_t>(net.num_nodes()), 0);
  for (const auto& cut : ordered_cuts) {
    const auto part = partition_from_cut_edges(net, s, t, cut);
    if (!part) {
      throw std::invalid_argument("a cut does not separate s from t");
    }
    for (NodeId n = 0; n < net.num_nodes(); ++n) {
      if (!part->side_s[static_cast<std::size_t>(n)]) {
        layer[static_cast<std::size_t>(n)]++;
      }
    }
  }
  return layer;
}

}  // namespace streamrel
