#include "core/reliability_facade.hpp"

#include <algorithm>
#include <stdexcept>

#include "reliability/reductions.hpp"

namespace streamrel {

SolveReport compute_reliability(const FlowNetwork& net,
                                const FlowDemand& demand,
                                const SolveOptions& options) {
  net.check_demand(demand);
  SolveReport report;

  // Rate-1 preprocessing: series/parallel/prune reductions are exact and
  // often shrink the instance dramatically (or solve it outright).
  if (options.method == Method::kAuto && options.use_reductions &&
      demand.rate == 1) {
    bool all_undirected = true;
    for (const Edge& e : net.edges()) all_undirected &= !e.directed();
    if (all_undirected) {
      const ReducedNetwork reduced =
          reduce_for_connectivity(net, demand.source, demand.sink);
      const int removed = net.num_edges() - reduced.net.num_edges();
      if (reduced.net.num_edges() == 0) {
        report.method_used = Method::kAuto;
        report.links_reduced = removed;
        report.result.reliability = 0.0;  // s and t disconnected
        return report;
      }
      if (reduced.fully_reduced()) {
        report.method_used = Method::kAuto;
        report.links_reduced = removed;
        report.result.reliability = 1.0 - reduced.net.edge(0).failure_prob;
        return report;
      }
      if (removed > 0) {
        SolveOptions inner = options;
        inner.use_reductions = false;  // already at a fixpoint
        report = compute_reliability(
            reduced.net, {reduced.source, reduced.sink, 1}, inner);
        report.partition.reset();  // refers to reduced-network ids
        report.links_reduced = removed;
        return report;
      }
    }
  }

  switch (options.method) {
    case Method::kNaive:
      report.method_used = Method::kNaive;
      report.result = reliability_naive(net, demand, options.naive);
      return report;
    case Method::kFactoring:
      report.method_used = Method::kFactoring;
      report.result = reliability_factoring(net, demand, options.factoring);
      return report;
    case Method::kFrontier:
      report.method_used = Method::kFrontier;
      report.result =
          reliability_connectivity(net, demand, options.frontier);
      return report;
    case Method::kBottleneck:
    case Method::kAuto:
      break;
  }

  // Try candidate partitions best first; a candidate can still fail for
  // demand-specific reasons (assignment-set blow-up), in which case the
  // next one gets its chance.
  for (PartitionChoice& choice : find_candidate_partitions(
           net, demand.source, demand.sink, options.partition_search)) {
    // Worthwhile when the decomposition shrinks the enumeration exponent:
    // max side strictly below |E| - k means 2^max_side * 2 < 2^|E|.
    const int max_side = std::max(choice.stats.edges_s, choice.stats.edges_t);
    const bool worthwhile =
        max_side + choice.stats.k < net.num_edges() || !net.fits_mask();
    if (options.method != Method::kBottleneck && !worthwhile) break;
    try {
      report.result = reliability_bottleneck(net, demand, choice.partition,
                                             options.bottleneck);
      report.method_used = Method::kBottleneck;
      report.partition = std::move(choice);
      return report;
    } catch (const std::invalid_argument&) {
      continue;
    }
  }
  if (options.method == Method::kBottleneck) {
    throw std::invalid_argument(
        "no usable bottleneck partition found for this network");
  }

  // Rate-1 undirected demands on networks too big to enumerate: the
  // frontier DP handles path-like structures of any length exactly.
  if (demand.rate == 1 && !net.fits_mask()) {
    bool all_undirected = true;
    for (const Edge& e : net.edges()) all_undirected &= !e.directed();
    if (all_undirected) {
      try {
        report.result = reliability_connectivity(net, demand,
                                                 options.frontier);
        report.method_used = Method::kFrontier;
        return report;
      } catch (const std::runtime_error&) {
        // Frontier too wide: fall through to factoring.
      }
    }
  }

  // No exploitable bottleneck: exhaustive enumeration for small networks,
  // factoring otherwise.
  if (net.fits_mask() && net.num_edges() <= 22) {
    report.method_used = Method::kNaive;
    report.result = reliability_naive(net, demand, options.naive);
  } else {
    report.method_used = Method::kFactoring;
    report.result = reliability_factoring(net, demand, options.factoring);
  }
  return report;
}

}  // namespace streamrel
