#include "streamrel/core/reliability_facade.hpp"

#include <stdexcept>

#include "streamrel/core/engine.hpp"
#include "streamrel/reliability/reductions.hpp"
#include "streamrel/util/trace.hpp"

namespace streamrel {

std::string_view to_string(Method method) noexcept {
  switch (method) {
    case Method::kAuto: return "auto";
    case Method::kBottleneck: return "bottleneck";
    case Method::kNaive: return "naive";
    case Method::kFactoring: return "factoring";
    case Method::kFrontier: return "frontier";
    case Method::kHybridMc: return "hybrid-mc";
  }
  return "?";
}

namespace {

// The kAuto policy over the registered engines:
//   bottleneck (when a worthwhile partition exists)
//   > frontier (rate-1 undirected networks too big to enumerate;
//               a state-budget stop falls through)
//   > naive (mask-sized networks up to 22 links)
//   > factoring (a tree-budget stop falls back to naive when possible).
// A deadline/cancellation stop is FINAL wherever it lands — the chain
// never "falls back" past the user's wall clock.
SolveReport solve_auto(const FlowNetwork& net, const FlowDemand& demand,
                       const SolveOptions& options, const ExecContext* ctx,
                       const EngineRegistry& registry) {
  // The chain leads with the bottleneck decomposition. A small-delta hint
  // (SolveOptions::delta_hint) pins the lead to a delta-aware engine: the
  // serving layer holds warm artifacts for the parent structure, and only
  // a delta-aware engine's arithmetic can reuse them. With the built-in
  // registry both rules pick the same engine, so routing never changes an
  // answer — it guarantees the warm path stays first even if a future
  // registration reorders the chain.
  const Engine* lead = &registry.require(Method::kBottleneck);
  if (options.delta_hint && options.delta_hint->small()) {
    for (const Engine* engine : registry.engines()) {
      if (engine->delta_aware() && engine->applicable(net, demand)) {
        lead = engine;
        break;
      }
    }
  }
  try {
    SolveReport report = lead->solve(net, demand, options, ctx);
    // kMaskOverflow means every candidate partition needed more than
    // kMaxMaskBits links in one failure mask — a capability limit of the
    // enumerating decomposition, so the chain moves on to an engine that
    // never builds masks.
    if (report.result.status != SolveStatus::kMaskOverflow) return report;
  } catch (const std::invalid_argument&) {
    // No worthwhile partition: fall through to the baselines.
  }

  // Rate-1 undirected demands on networks too big to enumerate: the
  // frontier DP handles path-like structures of any length exactly.
  const Engine& frontier = registry.require(Method::kFrontier);
  if (!net.fits_mask() && frontier.applicable(net, demand)) {
    SolveReport report = frontier.solve(net, demand, options, ctx);
    if (report.result.status != SolveStatus::kBudgetExhausted) return report;
    // Frontier too wide: fall through to factoring.
  }

  // No exploitable bottleneck: exhaustive enumeration for small networks,
  // factoring otherwise.
  if (net.fits_mask() && net.num_edges() <= 22) {
    return registry.require(Method::kNaive).solve(net, demand, options, ctx);
  }
  SolveReport report =
      registry.require(Method::kFactoring).solve(net, demand, options, ctx);
  if (report.result.status == SolveStatus::kBudgetExhausted &&
      net.fits_mask()) {
    return registry.require(Method::kNaive).solve(net, demand, options, ctx);
  }
  return report;
}

SolveReport dispatch(const FlowNetwork& net, const FlowDemand& demand,
                     const SolveOptions& options, ExecContext& ctx) {
  net.check_demand(demand);
  const EngineRegistry& registry = EngineRegistry::instance();

  // Rate-1 preprocessing: series/parallel/prune reductions are exact and
  // often shrink the instance dramatically (or solve it outright).
  if (options.method == Method::kAuto && options.use_reductions &&
      demand.rate == 1) {
    bool undirected = true;
    for (const Edge& e : net.edges()) undirected &= !e.directed();
    if (undirected) {
      const ReducedNetwork reduced =
          reduce_for_connectivity(net, demand.source, demand.sink);
      const int removed = net.num_edges() - reduced.net.num_edges();
      if (reduced.net.num_edges() == 0) {
        SolveReport report;
        report.method_used = Method::kAuto;
        report.engine = "reductions";
        report.links_reduced = removed;
        report.result.reliability = 0.0;  // s and t disconnected
        report.result.telemetry.counter(telemetry_keys::kLinksReduced) =
            static_cast<std::uint64_t>(removed);
        return report;
      }
      if (reduced.fully_reduced()) {
        SolveReport report;
        report.method_used = Method::kAuto;
        report.engine = "reductions";
        report.links_reduced = removed;
        report.result.reliability = 1.0 - reduced.net.edge(0).failure_prob;
        report.result.telemetry.counter(telemetry_keys::kLinksReduced) =
            static_cast<std::uint64_t>(removed);
        return report;
      }
      if (removed > 0) {
        SolveOptions inner = options;
        inner.use_reductions = false;  // already at a fixpoint
        SolveReport report =
            dispatch(reduced.net, {reduced.source, reduced.sink, 1}, inner,
                     ctx);
        report.partition.reset();  // refers to reduced-network ids
        report.links_reduced = removed;
        report.result.telemetry.counter(telemetry_keys::kLinksReduced) =
            static_cast<std::uint64_t>(removed);
        return report;
      }
    }
  }

  if (options.method == Method::kAuto) {
    return solve_auto(net, demand, options, &ctx, registry);
  }
  return registry.require(options.method).solve(net, demand, options, &ctx);
}

}  // namespace

SolveReport compute_reliability(const FlowNetwork& net,
                                const FlowDemand& demand,
                                const SolveOptions& options) {
  ExecContext local;
  ExecContext* ctx = options.context;
  if (!ctx) {
    if (options.deadline_ms > 0.0) local.set_deadline_ms(options.deadline_ms);
    local.max_threads = options.max_threads;
    ctx = &local;
  }

  TraceSpan span("compute_reliability", "facade");
  span.arg("method", to_string(options.method));
  if (options.delta_hint) {
    span.arg("delta_hint", to_string(options.delta_hint->delta_class));
  }

  SolveReport report = dispatch(net, demand, options, *ctx);
  span.arg("engine", report.engine);

  // A deadline/budget stop leaves at best a partial accumulation; attach
  // the cheap polynomial envelope so the caller still gets a bracket.
  if (report.result.status != SolveStatus::kExact && !report.bounds) {
    report.bounds = reliability_bounds(net, demand, options.bounds);
  }

  ctx->telemetry.merge(report.result.telemetry);
  return report;
}

}  // namespace streamrel
