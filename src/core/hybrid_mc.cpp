#include "streamrel/core/hybrid_mc.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "streamrel/core/accumulate.hpp"
#include "streamrel/util/config_prob.hpp"
#include "streamrel/util/prng.hpp"
#include "streamrel/util/stats.hpp"
#include "streamrel/util/trace.hpp"

namespace streamrel {

namespace {

// Empirical realized-mask distribution from `samples` sampled side
// configurations.
// Empirical distribution from up to `samples` sampled side
// configurations; a context stop truncates the draw. `drawn` reports the
// samples actually taken (the normalization denominator), so a truncated
// distribution is still a proper empirical distribution.
MaskDistribution sample_side_distribution(
    const SideProblem& side, const AssignmentSet& assignments, Capacity rate,
    MaxFlowAlgorithm algorithm, std::uint64_t samples, Xoshiro256& rng,
    std::uint64_t& maxflow_calls, const ExecContext* ctx,
    std::uint64_t& drawn) {
  TraceSpan span("sample_side", "sweep");
  span.arg("side", side.is_source_side ? "s" : "t")
      .arg("samples", samples);
  if (ProgressReporter* progress = exec_progress(ctx)) {
    progress->add_total(samples);
  }
  SideMaskEvaluator evaluator(side, assignments, rate, algorithm);
  const std::vector<double> probs = side.view.failure_probs();
  std::unordered_map<Mask, std::uint64_t> counts;
  ProgressMarker progress(exec_progress(ctx));
  drawn = 0;
  for (std::uint64_t i = 0; i < samples; ++i) {
    if ((i & (ExecContext::kPollStride - 1)) == 0) {
      if (ctx && ctx->should_stop()) break;
      progress.at(i);
    }
    Mask config = 0;
    for (std::size_t e = 0; e < probs.size(); ++e) {
      if (!rng.bernoulli(probs[e])) config |= bit(static_cast<int>(e));
    }
    counts[evaluator.realized(config)]++;
    ++drawn;
  }
  progress.at(drawn);
  maxflow_calls += evaluator.maxflow_calls();

  MaskDistribution dist;
  if (drawn == 0) return dist;
  dist.buckets.reserve(counts.size());
  for (const auto& [mask, count] : counts) {
    dist.buckets.emplace_back(
        mask, static_cast<double>(count) / static_cast<double>(drawn));
  }
  std::sort(dist.buckets.begin(), dist.buckets.end());
  dist.total = 1.0;
  return dist;
}

}  // namespace

HybridMonteCarloResult reliability_bottleneck_hybrid(
    const FlowNetwork& net, const FlowDemand& demand,
    const BottleneckPartition& partition,
    const HybridMonteCarloOptions& options, const ExecContext* ctx) {
  net.check_demand(demand);
  if (options.samples_per_side == 0) {
    throw std::invalid_argument("need >= 1 sample per side");
  }

  HybridMonteCarloResult result;
  result.samples_per_side = options.samples_per_side;

  const AssignmentSet assignments =
      enumerate_assignments(net, partition, demand.rate, options.assignments);
  result.num_assignments = assignments.size();
  result.telemetry.counter(telemetry_keys::kAssignments) =
      static_cast<std::uint64_t>(assignments.size());
  if (assignments.size() == 0) return result;

  const SideProblem side_s =
      make_side_problem(net, demand, partition, /*source_side=*/true);
  const SideProblem side_t =
      make_side_problem(net, demand, partition, /*source_side=*/false);

  Xoshiro256 rng_s(options.seed);
  Xoshiro256 rng_t(options.seed);
  rng_t.jump();  // independent substream for the sink side
  std::uint64_t maxflow_calls = 0;
  std::uint64_t drawn_s = 0;
  std::uint64_t drawn_t = 0;
  const MaskDistribution dist_s = sample_side_distribution(
      side_s, assignments, demand.rate, options.algorithm,
      options.samples_per_side, rng_s, maxflow_calls, ctx, drawn_s);
  const MaskDistribution dist_t = sample_side_distribution(
      side_t, assignments, demand.rate, options.algorithm,
      options.samples_per_side, rng_t, maxflow_calls, ctx, drawn_t);
  if (drawn_s < options.samples_per_side ||
      drawn_t < options.samples_per_side) {
    result.status = ctx ? ctx->stop_status() : SolveStatus::kCancelled;
  }
  result.telemetry.counter(telemetry_keys::kMaxflowCalls) = maxflow_calls;
  result.telemetry.counter(telemetry_keys::kSamples) = drawn_s + drawn_t;
  if (drawn_s == 0 || drawn_t == 0) return result;  // nothing to accumulate

  // Exact accumulation over the 2^k bottleneck configurations.
  std::vector<double> crossing_probs;
  for (EdgeId id : partition.crossing_edges) {
    crossing_probs.push_back(net.edge(id).failure_prob);
  }
  const ConfigProbTable bottleneck_probs(crossing_probs);
  KahanSum total;
  for (Mask alive = 0; alive < (Mask{1} << partition.k()); ++alive) {
    const Mask allowed = assignments.supported_by(alive);
    if (allowed == 0) continue;
    total.add(bottleneck_probs.prob(alive) *
              joint_success_probability(dist_s, dist_t, allowed,
                                        options.accumulation));
  }
  result.estimate = total.value();
  return result;
}

}  // namespace streamrel
