#include "streamrel/core/query_session.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "streamrel/reliability/bounds.hpp"
#include "streamrel/util/trace.hpp"

namespace streamrel {

namespace {

bool same_search_options(const PartitionSearchOptions& a,
                         const PartitionSearchOptions& b) {
  return a.max_k == b.max_k && a.max_side_edges == b.max_side_edges &&
         a.enumeration.max_size == b.enumeration.max_size &&
         a.enumeration.max_subsets_examined ==
             b.enumeration.max_subsets_examined &&
         a.enumeration.max_results == b.enumeration.max_results;
}

/// Applies the overrides to the network for the duration of one facade
/// fallback (or bounds) call, restoring the original probabilities on
/// every exit path.
class OverrideGuard {
 public:
  OverrideGuard(FlowNetwork& net, std::span<const ProbOverride> overrides)
      : net_(net) {
    saved_.reserve(overrides.size());
    for (const ProbOverride& o : overrides) {
      if (!net_.valid_edge(o.edge)) {
        throw std::invalid_argument("override edge out of range");
      }
      saved_.emplace_back(o.edge, net_.edge(o.edge).failure_prob);
      net_.set_failure_prob(o.edge, o.failure_prob);
    }
  }
  ~OverrideGuard() {
    for (auto it = saved_.rbegin(); it != saved_.rend(); ++it) {
      net_.set_failure_prob(it->first, it->second);
    }
  }
  OverrideGuard(const OverrideGuard&) = delete;
  OverrideGuard& operator=(const OverrideGuard&) = delete;

 private:
  FlowNetwork& net_;
  std::vector<std::pair<EdgeId, double>> saved_;
};

}  // namespace

QuerySession::QuerySession(FlowNetwork net, QueryCacheOptions cache)
    : net_(std::move(net)), cache_options_(cache) {}

QuerySession::QuerySession(FlowNetwork net,
                           std::shared_ptr<const CompiledNetwork> warm_snapshot,
                           QueryCacheOptions cache)
    : net_(std::move(net)),
      snapshot_(std::move(warm_snapshot)),
      cache_options_(cache) {
  if (snapshot_ && (snapshot_->num_nodes() != net_.num_nodes() ||
                    snapshot_->num_edges() != net_.num_edges())) {
    throw std::invalid_argument(
        "warm snapshot disagrees with network on shape");
  }
}

void QuerySession::set_failure_prob(EdgeId id, double p) {
  net_.set_failure_prob(id, p);  // masks are probability-independent:
                                 // every cache layer survives
  if (snapshot_) {
    // Overlay the new probability on the pinned snapshot: the structure
    // id is preserved, so cached artifacts keep matching it.
    snapshot_ = snapshot_->with_failure_prob(id, p);
  }
}

void QuerySession::set_capacity(EdgeId id, Capacity c) {
  NetworkDelta delta;
  delta.set_capacity(id, c);
  apply_delta(delta);
}

EdgeId QuerySession::add_edge(NodeId u, NodeId v, Capacity capacity,
                              double failure_prob, EdgeKind kind) {
  NetworkDelta delta;
  delta.add_edge(u, v, capacity, failure_prob, kind);
  apply_delta(delta);
  return static_cast<EdgeId>(net_.num_edges() - 1);
}

void QuerySession::invalidate(DeltaClass scope) {
  if (scope == DeltaClass::kProbabilityOnly && snapshot_ &&
      static_cast<std::size_t>(net_.num_edges()) ==
          snapshot_->failure_probs().size()) {
    // The alias fast path: masks, assignment sets and partitions are all
    // probability-independent, so every structural artifact survives. The
    // pinned snapshot re-syncs its probability columns in place — the
    // structure id is preserved, so cached entries keep matching it.
    const std::vector<double> probs = net_.failure_probs();
    snapshot_ = snapshot_->with_failure_probs(probs);
    telemetry_.child("cache").counter(telemetry_keys::kCacheSurvived) +=
        lru_.size();
    return;
  }
  if (scope == DeltaClass::kProbabilityOnly && !snapshot_) {
    return;  // nothing pinned, nothing cached: nothing to do
  }
  // Capacity/topology scope (or an alias edit that changed the edge
  // count): the touched-edge set is unknown, so scoped invalidation is
  // impossible — flush everything.
  bump_epoch();
}

void QuerySession::bump_epoch() {
  Telemetry& cache = telemetry_.child("cache");
  cache.counter(telemetry_keys::kCacheInvalidations) += 1;
  cache.counter(telemetry_keys::kCacheInvalidationsFull) += lru_.size();
  snapshot_.reset();  // the next query mints a fresh structure identity
  partitions_.clear();
  assignments_.clear();
  lru_.clear();
  mask_index_.clear();
  failed_.clear();
  salvage_s_.clear();
  salvage_t_.clear();
  pending_hint_.reset();
}

DeltaOutcome QuerySession::apply_delta(const NetworkDelta& delta) {
  TraceSpan span("session_delta", "cache");
  DeltaOutcome out;
  out.applied = delta.classify();
  span.arg("class", to_string(out.applied));

  if (out.applied == DeltaClass::kTopology) {
    // Validates the whole batch before any mutation; the old shape is
    // dead, so every structural layer flushes (bump_epoch counts the
    // dropped entries as full invalidations).
    DeltaApplication app = apply_delta_in_place(net_, delta);
    out.node_map = std::move(app.node_map);
    out.edge_map = std::move(app.edge_map);
    out.entries_full = lru_.size();
    bump_epoch();
    return out;
  }

  // Probability / capacity deltas keep every id. Validate the batch up
  // front so a bad edit leaves network and caches untouched.
  for (const NetworkDelta::ProbEdit& e : delta.prob_edits) {
    if (!net_.valid_edge(e.edge)) {
      throw std::invalid_argument("delta: probability edit names a bad edge");
    }
    if (!(e.failure_prob >= 0.0) || !(e.failure_prob < 1.0)) {
      throw std::invalid_argument("delta: failure probability not in [0,1)");
    }
  }
  for (const NetworkDelta::CapacityEdit& e : delta.capacity_edits) {
    if (!net_.valid_edge(e.edge)) {
      throw std::invalid_argument("delta: capacity edit names a bad edge");
    }
    if (e.capacity < 0) {
      throw std::invalid_argument("delta: negative capacity");
    }
  }

  const std::uint64_t parent_structure =
      snapshot_ ? snapshot_->structure_id() : 0;

  // Patch the pinned snapshot: probability deltas share the whole
  // Structure (same id), capacity deltas share the Topology block and
  // mint a successor id journaled against the parent.
  std::vector<EdgeId> touched;
  if (snapshot_) {
    CompiledDelta patched = snapshot_->apply_delta(delta);
    snapshot_ = std::move(patched.snapshot);
    touched = std::move(patched.touched_edges);
  } else {
    for (const NetworkDelta::CapacityEdit& e : delta.capacity_edits) {
      touched.push_back(e.edge);
    }
    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  }
  for (const NetworkDelta::ProbEdit& e : delta.prob_edits) {
    net_.set_failure_prob(e.edge, e.failure_prob);
  }
  for (const NetworkDelta::CapacityEdit& e : delta.capacity_edits) {
    net_.set_capacity(e.edge, e.capacity);
  }

  out.node_map.resize(static_cast<std::size_t>(net_.num_nodes()));
  for (NodeId n = 0; n < net_.num_nodes(); ++n) {
    out.node_map[static_cast<std::size_t>(n)] = n;
  }
  out.edge_map.resize(static_cast<std::size_t>(net_.num_edges()));
  for (EdgeId e = 0; e < net_.num_edges(); ++e) {
    out.edge_map[static_cast<std::size_t>(e)] = e;
  }

  Telemetry& cache = telemetry_.child("cache");
  if (out.applied == DeltaClass::kProbabilityOnly) {
    // Every structural artifact survives; only accumulations change.
    out.entries_survived = lru_.size();
    out.partitions_survived = partitions_.size();
    out.assignments_survived = assignments_.size();
    cache.counter(telemetry_keys::kCacheSurvived) += lru_.size();
    DeltaSolveHint hint;
    hint.parent_structure_id = parent_structure;
    hint.delta_class = DeltaClass::kProbabilityOnly;
    for (const NetworkDelta::ProbEdit& e : delta.prob_edits) {
      hint.touched_edges.push_back(e.edge);
    }
    pending_hint_ = std::move(hint);
    return out;
  }

  // Capacity-only: cut-scoped invalidation over the touched edges.
  cache.counter(telemetry_keys::kCacheInvalidations) += 1;
  invalidate_capacity_scoped(touched, out);
  cache.counter(telemetry_keys::kCacheInvalidationsFull) += out.entries_full;
  cache.counter(telemetry_keys::kCacheInvalidationsPartial) +=
      out.entries_partial;
  cache.counter(telemetry_keys::kCacheSurvived) += out.entries_survived;
  // Structural failures (assignment blow-ups) depend on crossing
  // capacities; re-decide them against the new structure.
  failed_.clear();
  DeltaSolveHint hint;
  hint.parent_structure_id = parent_structure;
  hint.delta_class = DeltaClass::kCapacityOnly;
  hint.touched_edges = std::move(touched);
  pending_hint_ = std::move(hint);
  span.arg("full", out.entries_full)
      .arg("partial", out.entries_partial)
      .arg("survived", out.entries_survived);
  return out;
}

void QuerySession::invalidate_capacity_scoped(std::span<const EdgeId> touched,
                                              DeltaOutcome& out) {
  // A pending salvage dies when the touched set reaches its own side (the
  // array's inputs changed) or its partition's crossing (the assignment
  // set it was swept against changes).
  const auto salvage_dead = [&](const SalvagedSide& salvage) {
    const auto& to_view = salvage.reuse.side.view.edge_to_view();
    for (const EdgeId e : touched) {
      const auto i = static_cast<std::size_t>(e);
      if (i < to_view.size() && to_view[i] != kInvalidEdge) return true;
      for (const EdgeId crossing : salvage.crossing_edges) {
        if (crossing == e) return true;
      }
    }
    return false;
  };
  const auto sweep_salvage = [&](std::map<ArtifactKey, SalvagedSide>& map) {
    for (auto it = map.begin(); it != map.end();) {
      it = salvage_dead(it->second) ? map.erase(it) : std::next(it);
    }
  };
  sweep_salvage(salvage_s_);
  sweep_salvage(salvage_t_);

  // Classify every cached entry by where the touched edges fall. Every
  // edge lies in exactly one of side_s / side_t / crossing for any
  // partition, so the entry's own views decide. (Entries built while the
  // side views were empty — zero-assignment decompositions — classify
  // every touch as crossing and drop, which is conservative but safe.)
  for (auto it = lru_.begin(); it != lru_.end();) {
    const ArtifactKey key = it->first;
    const ArtifactEntry& entry = *it->second;
    bool in_s = false;
    bool in_t = false;
    bool in_crossing = false;
    const auto& to_s = entry.artifacts.side_s.view.edge_to_view();
    const auto& to_t = entry.artifacts.side_t.view.edge_to_view();
    for (const EdgeId e : touched) {
      const auto i = static_cast<std::size_t>(e);
      if (i < to_s.size() && to_s[i] != kInvalidEdge) {
        in_s = true;
      } else if (i < to_t.size() && to_t[i] != kInvalidEdge) {
        in_t = true;
      } else {
        in_crossing = true;
      }
    }
    if (!in_s && !in_t && !in_crossing) {
      out.entries_survived += 1;  // empty touched set
      ++it;
      continue;
    }
    if (in_crossing) {
      // The cut itself was crossed: the assignment set (a function of
      // crossing capacities) is dead, and both side arrays were swept
      // against it. (The standalone sweep below catches assignment sets
      // whose mask entry is already gone; erasing here as well keeps the
      // conservative empty-side-view classification authoritative.)
      assignments_.erase(key);
    }
    const bool salvageable = !in_crossing && (in_s != in_t);
    if (salvageable) {
      // Exactly one side touched: rescue the other side's array — its
      // topology, internal capacities and assignment set are all
      // unchanged, so the next rebuild adopts it verbatim.
      auto& target = in_s ? salvage_t_ : salvage_s_;
      if (target.size() < cache_options_.max_mask_tables) {
        SalvagedSide salvage;
        salvage.reuse.side =
            in_s ? entry.artifacts.side_t : entry.artifacts.side_s;
        salvage.reuse.array =
            in_s ? entry.artifacts.array_t : entry.artifacts.array_s;
        if (const Telemetry* side_tel = entry.artifacts.telemetry.find_child(
                in_s ? "side_t" : "side_s")) {
          salvage.reuse.telemetry = *side_tel;
        }
        salvage.crossing_edges = entry.choice.partition.crossing_edges;
        target.insert_or_assign(key, std::move(salvage));
        out.entries_partial += 1;
      } else {
        out.entries_full += 1;  // salvage store full: plain drop
      }
    } else {
      out.entries_full += 1;
    }
    mask_index_.erase(key);
    it = lru_.erase(it);
  }

  // Assignment sets outlive their mask entries (layer 2 survives layer-3
  // evictions), so they must be swept against the touched set on their
  // own: each key names a partition candidate, and its assignment set
  // dies when the touched edges reach that candidate's crossing. Without
  // this, a crossing-capacity edit arriving while the mask entry is
  // absent (evicted, or dropped by an earlier delta) would leave a stale
  // assignment set to be adopted by the next rebuild.
  for (auto it = assignments_.begin(); it != assignments_.end();) {
    const AssignmentKey& akey = it->first;
    const auto pit =
        partitions_.find({std::get<0>(akey), std::get<1>(akey)});
    const auto candidate = static_cast<std::size_t>(std::get<2>(akey));
    bool dead = true;  // no candidate to check against: drop, conservatively
    if (pit != partitions_.end() &&
        candidate < pit->second.candidates.size()) {
      const std::vector<EdgeId>& crossing =
          pit->second.candidates[candidate].partition.crossing_edges;
      dead = false;
      for (const EdgeId e : touched) {
        if (std::find(crossing.begin(), crossing.end(), e) !=
            crossing.end()) {
          dead = true;
          break;
        }
      }
    }
    it = dead ? assignments_.erase(it) : std::next(it);
  }

  // Partitions survive every capacity edit (candidate cuts are
  // capacity-independent); only their cached stats re-sum the new
  // crossing capacities, keeping reported stats identical to a cold
  // search on the edited network.
  for (auto& [pkey, pentry] : partitions_) {
    for (PartitionChoice& choice : pentry.candidates) {
      choice.stats =
          analyze_partition(net_, pkey.first, pkey.second, choice.partition);
    }
    out.partitions_survived += 1;
  }
  out.assignments_survived = assignments_.size();
}

Telemetry& QuerySession::layer_counters(std::string_view layer) {
  return telemetry_.child("cache").child(layer);
}

const std::shared_ptr<const CompiledNetwork>& QuerySession::snapshot() {
  if (!snapshot_) snapshot_ = net_.compile();
  return snapshot_;
}

std::uint64_t QuerySession::cache_hits() const {
  std::uint64_t total = 0;
  if (const Telemetry* cache = telemetry_.find_child("cache")) {
    for (const auto& [name, layer] : cache->children()) {
      total += layer.counter_or(telemetry_keys::kCacheHits);
    }
  }
  return total;
}

std::uint64_t QuerySession::cache_misses() const {
  std::uint64_t total = 0;
  if (const Telemetry* cache = telemetry_.find_child("cache")) {
    for (const auto& [name, layer] : cache->children()) {
      total += layer.counter_or(telemetry_keys::kCacheMisses);
    }
  }
  return total;
}

std::uint64_t QuerySession::cache_evictions() const {
  if (const Telemetry* cache = telemetry_.find_child("cache")) {
    if (const Telemetry* masks = cache->find_child("masks")) {
      return masks->counter_or(telemetry_keys::kCacheEvictions);
    }
  }
  return 0;
}

std::uint64_t QuerySession::cache_invalidations() const {
  if (const Telemetry* cache = telemetry_.find_child("cache")) {
    return cache->counter_or(telemetry_keys::kCacheInvalidations);
  }
  return 0;
}

std::uint64_t QuerySession::cache_invalidations_full() const {
  if (const Telemetry* cache = telemetry_.find_child("cache")) {
    return cache->counter_or(telemetry_keys::kCacheInvalidationsFull);
  }
  return 0;
}

std::uint64_t QuerySession::cache_invalidations_partial() const {
  if (const Telemetry* cache = telemetry_.find_child("cache")) {
    return cache->counter_or(telemetry_keys::kCacheInvalidationsPartial);
  }
  return 0;
}

std::uint64_t QuerySession::cache_survived() const {
  if (const Telemetry* cache = telemetry_.find_child("cache")) {
    return cache->counter_or(telemetry_keys::kCacheSurvived);
  }
  return 0;
}

void QuerySession::set_cache_budget(std::size_t max_mask_tables) {
  cache_options_.max_mask_tables = max_mask_tables;
  while (lru_.size() > std::max<std::size_t>(cache_options_.max_mask_tables,
                                             1)) {
    layer_counters("masks").counter(telemetry_keys::kCacheEvictions) += 1;
    mask_index_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

bool QuerySession::cacheable(const FlowDemand& demand,
                             const SolveOptions& options) const {
  if (!cache_options_.enabled) return false;
  if (options.method != Method::kAuto &&
      options.method != Method::kBottleneck) {
    return false;
  }
  if (options.method == Method::kAuto && options.use_reductions &&
      demand.rate == 1) {
    // The facade runs the series/parallel reduction preprocessing for
    // undirected rate-1 demands, solving on a REWRITTEN network; those
    // queries are delegated wholesale so session answers stay bitwise
    // equal to facade answers.
    bool undirected = true;
    for (const Edge& e : net_.edges()) undirected &= !e.directed();
    if (undirected) return false;
  }
  return true;
}

const QuerySession::PartitionEntry& QuerySession::partition_candidates(
    const FlowDemand& demand, const SolveOptions& options,
    const ExecContext* ctx) {
  const PartitionKey key{demand.source, demand.sink};
  const auto it = partitions_.find(key);
  if (it != partitions_.end() &&
      same_search_options(it->second.options_used, options.partition_search)) {
    layer_counters("partitions").counter(telemetry_keys::kCacheHits) += 1;
    return it->second;
  }
  layer_counters("partitions").counter(telemetry_keys::kCacheMisses) += 1;
  PartitionEntry entry;
  entry.options_used = options.partition_search;
  entry.candidates = find_candidate_partitions(
      net_, demand.source, demand.sink, options.partition_search, ctx);
  return partitions_.insert_or_assign(key, std::move(entry)).first->second;
}

std::shared_ptr<const QuerySession::ArtifactEntry> QuerySession::artifact_entry(
    const FlowDemand& demand, int candidate_index,
    const PartitionChoice& choice, const SolveOptions& options,
    const ExecContext* ctx, SolveStatus* stop) {
  *stop = SolveStatus::kExact;
  const ArtifactKey key{demand.source,
                        demand.sink,
                        candidate_index,
                        demand.rate,
                        options.bottleneck.assignments.mode,
                        options.bottleneck.assignments.max_assignments};

  const auto hit = mask_index_.find(key);
  if (hit != mask_index_.end()) {
    if (hit->second->second->structure_id == snapshot()->structure_id()) {
      layer_counters("masks").counter(telemetry_keys::kCacheHits) += 1;
      lru_.splice(lru_.begin(), lru_, hit->second);  // touch
      return hit->second->second;
    }
    // Built against a different structure. Session edits cannot get here
    // (capacity/topology edits flush the cache; probability edits keep
    // the structure id), but never serve a stale structure.
    lru_.erase(hit->second);
    mask_index_.erase(hit);
  }
  if (failed_.count(key) != 0) {
    // Structural failures are deterministic per epoch: answer from the
    // negative cache instead of re-running the doomed enumeration.
    layer_counters("masks").counter(telemetry_keys::kCacheHits) += 1;
    throw std::invalid_argument("candidate previously failed for this demand");
  }
  layer_counters("masks").counter(telemetry_keys::kCacheMisses) += 1;

  auto entry = std::make_shared<ArtifactEntry>();
  entry->choice = choice;
  try {
    // Layer 2: the assignment set survives mask-table evictions, so a
    // rebuilt table skips the enumeration.
    std::shared_ptr<const AssignmentSet> assignments;
    const auto ait = assignments_.find(key);
    if (ait != assignments_.end()) {
      layer_counters("assignments").counter(telemetry_keys::kCacheHits) += 1;
      assignments = ait->second;
    } else {
      layer_counters("assignments").counter(telemetry_keys::kCacheMisses) += 1;
      assignments = std::make_shared<AssignmentSet>(enumerate_assignments(
          net_, choice.partition, demand.rate, options.bottleneck.assignments));
      assignments_.emplace(key, assignments);
    }
    // Cut-scoped repair: a capacity delta that touched only one side left
    // the other side's mask table salvaged. Adopting it (the build MOVES
    // from the reuse slot) skips that side's sweep entirely and is
    // bitwise-equal to rebuilding, because side arrays are deterministic
    // in inputs the delta did not touch.
    const auto sit = salvage_s_.find(key);
    const auto tit = salvage_t_.find(key);
    SideReuse* reuse_s = sit != salvage_s_.end() ? &sit->second.reuse : nullptr;
    SideReuse* reuse_t = tit != salvage_t_.end() ? &tit->second.reuse : nullptr;
    entry->artifacts = build_bottleneck_artifacts(
        net_, demand, choice.partition, options.bottleneck, ctx,
        assignments.get(), snapshot(), reuse_s, reuse_t);
    if (reuse_s || reuse_t) {
      layer_counters("masks").counter(telemetry_keys::kSideRepairs) +=
          (reuse_s ? 1u : 0u) + (reuse_t ? 1u : 0u);
      if (reuse_s) salvage_s_.erase(sit);
      if (reuse_t) salvage_t_.erase(tit);
    }
    entry->structure_id = snapshot()->structure_id();
  } catch (const std::invalid_argument&) {
    failed_.insert(key);
    throw;
  }
  if (!entry->artifacts.usable()) {
    *stop = entry->artifacts.status;
    return nullptr;  // interrupted builds are never cached
  }

  lru_.emplace_front(key, std::move(entry));
  mask_index_[key] = lru_.begin();
  while (lru_.size() > std::max<std::size_t>(cache_options_.max_mask_tables,
                                             1)) {
    layer_counters("masks").counter(telemetry_keys::kCacheEvictions) += 1;
    mask_index_.erase(lru_.back().first);
    lru_.pop_back();
  }
  return lru_.front().second;
}

QuerySession::PreparedQuery QuerySession::prepare_cached(
    const FlowDemand& demand, const SolveOptions& options, ExecContext& ctx) {
  PreparedQuery prepared;
  if (!cacheable(demand, options)) return prepared;
  net_.check_demand(demand);

  const PartitionEntry* entry = nullptr;
  try {
    entry = &partition_candidates(demand, options, &ctx);
  } catch (const ExecInterrupted& stop) {
    prepared.bottleneck_path = true;
    prepared.stop = stop.status;
    return prepared;
  }

  // The BottleneckEngine candidate walk, byte for byte: best candidate
  // first, worthwhile unless explicitly requested, assignment blow-ups
  // and mask overflows move on to the next candidate.
  bool overflowed = false;
  for (std::size_t i = 0; i < entry->candidates.size(); ++i) {
    const PartitionChoice& choice = entry->candidates[i];
    const int max_side = std::max(choice.stats.edges_s, choice.stats.edges_t);
    const bool worthwhile =
        max_side + choice.stats.k < net_.num_edges() || !net_.fits_mask();
    if (options.method != Method::kBottleneck && !worthwhile) break;
    if (choice.stats.edges_s > kMaxMaskBits ||
        choice.stats.edges_t > kMaxMaskBits ||
        choice.stats.k > kMaxMaskBits) {
      // Mirrors the mask-width pre-check in build_bottleneck_artifacts
      // (same stats, so the same verdict) without paying for the
      // assignment enumeration first.
      overflowed = true;
      continue;
    }
    SolveStatus stop = SolveStatus::kExact;
    std::shared_ptr<const ArtifactEntry> artifacts;
    try {
      artifacts = artifact_entry(demand, static_cast<int>(i), choice, options,
                                 &ctx, &stop);
    } catch (const std::invalid_argument&) {
      continue;
    }
    prepared.bottleneck_path = true;
    prepared.partition = choice;
    if (!artifacts) {
      prepared.stop = stop;
    } else {
      prepared.entry = std::move(artifacts);
    }
    return prepared;
  }

  if (overflowed) {
    if (options.method == Method::kBottleneck) {
      // An explicit request reports the capability limit as a status,
      // exactly like the engine.
      prepared.bottleneck_path = true;
      prepared.stop = SolveStatus::kMaskOverflow;
      return prepared;
    }
    // kAuto: fall through to the facade, whose chain retries the
    // bottleneck engine (reaching the same verdict) and then moves on to
    // a non-enumerating baseline — bitwise equal to the cold path.
    return prepared;
  }
  if (options.method == Method::kBottleneck) {
    throw std::invalid_argument(
        "no usable bottleneck partition found for this network");
  }
  return prepared;  // kAuto: facade fallback runs the baseline chain
}

BottleneckProbabilities QuerySession::gather_probs(
    const BottleneckPartition& partition, const BottleneckArtifacts& artifacts,
    std::span<const ProbOverride> overrides) const {
  BottleneckProbabilities probs =
      gather_bottleneck_probabilities(net_, partition, artifacts);
  for (const ProbOverride& o : overrides) {
    if (!net_.valid_edge(o.edge)) {
      throw std::invalid_argument("override edge out of range");
    }
    if (!(o.failure_prob >= 0.0) || !(o.failure_prob < 1.0)) {
      throw std::invalid_argument("override probability not in [0,1)");
    }
    // Each edge lives in exactly one place: a side subgraph or the
    // crossing set.
    for (std::size_t j = 0; j < partition.crossing_edges.size(); ++j) {
      if (partition.crossing_edges[j] == o.edge) {
        probs.crossing[j] = o.failure_prob;
      }
    }
    const auto place_side = [&](const SideProblem& side,
                                std::vector<double>& out) {
      const auto& to_view = side.view.edge_to_view();
      const auto idx = static_cast<std::size_t>(o.edge);
      if (idx < to_view.size() && to_view[idx] != kInvalidEdge) {
        out[static_cast<std::size_t>(to_view[idx])] = o.failure_prob;
      }
    };
    place_side(artifacts.side_s, probs.side_s);
    place_side(artifacts.side_t, probs.side_t);
  }
  return probs;
}

void QuerySession::validate_overrides(
    std::span<const ProbOverride> overrides) const {
  for (const ProbOverride& o : overrides) {
    if (!net_.valid_edge(o.edge)) {
      throw std::invalid_argument("override edge out of range");
    }
    if (!(o.failure_prob >= 0.0) || !(o.failure_prob < 1.0)) {
      throw std::invalid_argument("override probability not in [0,1)");
    }
  }
}

SolveReport QuerySession::finish_prepared(
    const PreparedQuery& prepared, const SolveOptions& options,
    std::span<const ProbOverride> overrides, const ExecContext* ctx) const {
  SolveReport report;
  report.method_used = Method::kBottleneck;
  report.engine = "bottleneck";
  report.partition = prepared.partition;
  if (prepared.stop != SolveStatus::kExact) {
    report.result.status = prepared.stop;
    return report;
  }
  TraceSpan span("query_accumulate", "cache");
  span.arg("overrides", static_cast<std::uint64_t>(overrides.size()));
  const BottleneckProbabilities probs = gather_probs(
      prepared.partition->partition, prepared.entry->artifacts, overrides);
  report.result =
      accumulate_bottleneck(prepared.entry->artifacts, probs,
                            options.bottleneck.accumulation, ctx);
  return report;
}

ReliabilityBounds QuerySession::bounds_with_overrides(
    const FlowDemand& demand, const BoundsOptions& options,
    std::span<const ProbOverride> overrides) {
  const OverrideGuard guard(net_, overrides);
  return reliability_bounds(net_, demand, options);
}

SolveReport QuerySession::solve_fallback(const FlowDemand& demand,
                                         const SolveOptions& options,
                                         std::span<const ProbOverride> overrides,
                                         ExecContext& ctx) {
  TraceSpan span("query_fallback", "cache");
  span.arg("method", to_string(options.method));
  const OverrideGuard guard(net_, overrides);
  SolveOptions forwarded = options;
  forwarded.context = &ctx;
  return compute_reliability(net_, demand, forwarded);
}

SolveReport QuerySession::solve(const FlowDemand& demand,
                                const SolveOptions& options) {
  return solve(demand, options, {});
}

SolveReport QuerySession::solve(const FlowDemand& demand,
                                const SolveOptions& options,
                                std::span<const ProbOverride> overrides) {
  validate_overrides(overrides);
  ExecContext local;
  ExecContext* ctx = options.context;
  if (!ctx) {
    if (options.deadline_ms > 0.0) local.set_deadline_ms(options.deadline_ms);
    local.max_threads = options.max_threads;
    ctx = &local;
  }

  // A delta applied since the last solve leaves an advisory hint; attach
  // it so a facade fallback keeps kAuto anchored on the delta-aware
  // engine. Never overrides a hint the caller set themselves.
  SolveOptions effective = options;
  if (!effective.delta_hint && pending_hint_) {
    effective.delta_hint = &*pending_hint_;
  }

  telemetry_.counter(telemetry_keys::kQueries) += 1;
  const ScopedTimer timer(telemetry_, "query_ms");
  const auto query_start = std::chrono::steady_clock::now();

  SolveReport report;
  PreparedQuery prepared;
  {
    TraceSpan span("query_prepare", "cache");
    // Annotate the span with the cache traffic THIS query caused: the
    // per-layer hit/miss counters are cheap to aggregate and only read
    // when a trace is actually being recorded.
    const std::uint64_t hits = span.active() ? cache_hits() : 0;
    const std::uint64_t misses = span.active() ? cache_misses() : 0;
    prepared = prepare_cached(demand, effective, *ctx);
    if (span.active()) {
      span.arg("cache_hits", cache_hits() - hits)
          .arg("cache_misses", cache_misses() - misses)
          .arg("bottleneck_path", prepared.bottleneck_path);
    }
  }
  if (prepared.bottleneck_path) {
    report = finish_prepared(prepared, effective, overrides, ctx);
    if (report.result.status != SolveStatus::kExact && !report.bounds) {
      report.bounds = bounds_with_overrides(demand, effective.bounds,
                                            overrides);
    }
    ctx->telemetry.merge(report.result.telemetry);
  } else {
    telemetry_.counter(telemetry_keys::kFallbackSolves) += 1;
    report = solve_fallback(demand, effective, overrides, *ctx);
  }
  telemetry_.child("solves").merge(report.result.telemetry);
  telemetry_.histogram("query_latency")
      .record_ms(std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - query_start)
                     .count());
  return report;
}

}  // namespace streamrel
