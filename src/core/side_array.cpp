#include "core/side_array.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "maxflow/config_residual.hpp"
#include "util/config_prob.hpp"
#include "util/stats.hpp"

namespace streamrel {

SideProblem make_side_problem(const FlowNetwork& net, const FlowDemand& demand,
                              const BottleneckPartition& partition,
                              bool source_side) {
  net.check_demand(demand);
  SideProblem side;
  side.is_source_side = source_side;

  std::vector<bool> in_side(partition.side_s);
  if (!source_side) in_side.flip();
  side.sub = induced_subgraph(net, in_side);
  if (!side.sub.net.fits_mask()) {
    throw std::invalid_argument(
        "side component exceeds 63 links; pick a more balanced partition");
  }

  const NodeId anchor_orig = source_side ? demand.source : demand.sink;
  side.anchor = side.sub.node_to_sub[static_cast<std::size_t>(anchor_orig)];
  if (side.anchor == kInvalidNode) {
    throw std::invalid_argument("demand endpoint not on its side");
  }
  side.endpoints.reserve(partition.crossing_edges.size());
  for (EdgeId id : partition.crossing_edges) {
    const Edge& e = net.edge(id);
    const NodeId orig =
        partition.side_s[static_cast<std::size_t>(e.u)] == source_side ? e.u
                                                                       : e.v;
    side.endpoints.push_back(
        side.sub.node_to_sub[static_cast<std::size_t>(orig)]);
  }
  return side;
}

namespace {

// Shared super-arc layout: index 0 is the anchor arc, then per crossing
// edge i an "in" arc S0 -> endpoint (index 1 + 2i) and an "out" arc
// endpoint -> T1 (index 2 + 2i).
struct SideEvaluator {
  SideEvaluator(const SideProblem& side, MaxFlowAlgorithm algorithm)
      : side_(&side),
        residual_(side.sub.net),
        solver_(make_solver(algorithm)) {
    super_source_ = residual_.add_super_node();
    super_sink_ = residual_.add_super_node();
    if (side.is_source_side) {
      residual_.add_super_arc(super_source_, side.anchor, 0, 0);
    } else {
      residual_.add_super_arc(side.anchor, super_sink_, 0, 0);
    }
    for (NodeId endpoint : side.endpoints) {
      residual_.add_super_arc(super_source_, endpoint, 0, 0);  // in arc
      residual_.add_super_arc(endpoint, super_sink_, 0, 0);    // out arc
    }
  }

  // Configures the super arcs for one assignment; returns the flow total
  // that signals feasibility.
  Capacity configure(const Assignment& a, Capacity d) {
    residual_.set_super_arc(0, d, 0);
    Capacity backflow = 0;
    for (std::size_t i = 0; i < a.usage.size(); ++i) {
      const Capacity u = a.usage[i];
      const std::size_t in_arc = 1 + 2 * i;
      const std::size_t out_arc = 2 + 2 * i;
      // Source side: positive usage leaves via the endpoint (out arc);
      // negative usage enters there. Sink side is the mirror image.
      const bool leaves = side_->is_source_side ? (u > 0) : (u < 0);
      const Capacity mag = u > 0 ? u : -u;
      residual_.set_super_arc(in_arc, leaves ? 0 : mag, 0);
      residual_.set_super_arc(out_arc, leaves ? mag : 0, 0);
      if (u < 0) backflow -= u;
    }
    return d + backflow;
  }

  // Configures f(Q) probing for the polymatroid path: every endpoint in Q
  // gets capacity `d` on its demand-facing arc.
  void configure_subset(Mask q, Capacity d) {
    residual_.set_super_arc(0, d, 0);
    for (std::size_t i = 0; i < side_->endpoints.size(); ++i) {
      const std::size_t in_arc = 1 + 2 * i;
      const std::size_t out_arc = 2 + 2 * i;
      const bool in_q = test_bit(q, static_cast<int>(i));
      if (side_->is_source_side) {
        residual_.set_super_arc(in_arc, 0, 0);
        residual_.set_super_arc(out_arc, in_q ? d : 0, 0);
      } else {
        residual_.set_super_arc(in_arc, in_q ? d : 0, 0);
        residual_.set_super_arc(out_arc, 0, 0);
      }
    }
  }

  Capacity solve(Mask config, Capacity limit) {
    residual_.reset(config);
    return solver_->solve(residual_.graph(), super_source_, super_sink_,
                          limit);
  }

  const SideProblem* side_;
  ConfigResidual residual_;
  std::unique_ptr<MaxFlowSolver> solver_;
  NodeId super_source_ = kInvalidNode;
  NodeId super_sink_ = kInvalidNode;
};

void sweep_per_assignment(const SideProblem& side,
                          const AssignmentSet& assignments, Capacity d,
                          MaxFlowAlgorithm algorithm, Mask first, Mask last,
                          std::vector<Mask>& array, std::uint64_t& calls) {
  SideEvaluator eval(side, algorithm);
  for (int j = 0; j < assignments.size(); ++j) {
    const Capacity required =
        eval.configure(assignments.assignments[static_cast<std::size_t>(j)],
                       d);
    for (Mask config = first;; ++config) {
      ++calls;
      if (eval.solve(config, required) >= required) {
        array[static_cast<std::size_t>(config)] |= bit(j);
      }
      if (config == last) break;
    }
  }
}

void sweep_polymatroid(const SideProblem& side,
                       const AssignmentSet& assignments, Capacity d,
                       MaxFlowAlgorithm algorithm, Mask first, Mask last,
                       std::vector<Mask>& array, std::uint64_t& calls) {
  const int k = static_cast<int>(side.endpoints.size());
  const Mask subsets = Mask{1} << k;
  // Per assignment, per subset Q: sum of usages inside Q (precomputed).
  std::vector<std::vector<Capacity>> subset_sums(
      static_cast<std::size_t>(assignments.size()),
      std::vector<Capacity>(static_cast<std::size_t>(subsets), 0));
  for (int j = 0; j < assignments.size(); ++j) {
    const auto& usage =
        assignments.assignments[static_cast<std::size_t>(j)].usage;
    for (Mask q = 1; q < subsets; ++q) {
      const int low = lowest_bit(q);
      subset_sums[static_cast<std::size_t>(j)][static_cast<std::size_t>(q)] =
          subset_sums[static_cast<std::size_t>(j)]
                     [static_cast<std::size_t>(q & (q - 1))] +
          usage[static_cast<std::size_t>(low)];
    }
  }

  SideEvaluator eval(side, algorithm);
  std::vector<Capacity> f(static_cast<std::size_t>(subsets), 0);
  for (Mask config = first;; ++config) {
    for (Mask q = 1; q < subsets; ++q) {
      eval.configure_subset(q, d);
      ++calls;
      f[static_cast<std::size_t>(q)] = eval.solve(config, d);
    }
    Mask realized = 0;
    for (int j = 0; j < assignments.size(); ++j) {
      bool ok = true;
      for (Mask q = 1; q < subsets && ok; ++q) {
        ok = subset_sums[static_cast<std::size_t>(j)]
                        [static_cast<std::size_t>(q)] <=
             f[static_cast<std::size_t>(q)];
      }
      if (ok) realized |= bit(j);
    }
    array[static_cast<std::size_t>(config)] = realized;
    if (config == last) break;
  }
}

}  // namespace

std::vector<Mask> build_side_array(const SideProblem& side,
                                   const AssignmentSet& assignments,
                                   Capacity demand_rate,
                                   const SideArrayOptions& options,
                                   std::uint64_t* maxflow_calls) {
  if (!assignments.fits_mask()) {
    throw std::invalid_argument("assignment set too large for mask bits");
  }
  FeasibilityMethod method = options.feasibility;
  if (method == FeasibilityMethod::kPolymatroid &&
      assignments.mode != AssignmentMode::kForwardOnly) {
    throw std::invalid_argument(
        "polymatroid feasibility requires forward-only assignments");
  }
  if (method == FeasibilityMethod::kAuto) {
    const auto k = side.endpoints.size();
    const bool poly_cheaper =
        k < 6 && static_cast<std::size_t>(assignments.size()) >
                     ((std::size_t{1} << k) - 1);
    method = (assignments.mode == AssignmentMode::kForwardOnly && poly_cheaper)
                 ? FeasibilityMethod::kPolymatroid
                 : FeasibilityMethod::kPerAssignment;
  }

  const int m = side.sub.net.num_edges();
  const Mask total = Mask{1} << m;
  std::vector<Mask> array(static_cast<std::size_t>(total), 0);
  std::uint64_t calls = 0;

  auto sweep = [&](Mask first, Mask last, std::vector<Mask>& arr,
                   std::uint64_t& c) {
    if (method == FeasibilityMethod::kPolymatroid) {
      sweep_polymatroid(side, assignments, demand_rate, options.algorithm,
                        first, last, arr, c);
    } else {
      sweep_per_assignment(side, assignments, demand_rate, options.algorithm,
                           first, last, arr, c);
    }
  };

#ifdef _OPENMP
  if (options.parallel && total >= 1024) {
    const int threads = omp_get_max_threads();
    std::vector<std::uint64_t> thread_calls(
        static_cast<std::size_t>(threads), 0);
#pragma omp parallel num_threads(threads)
    {
      const auto tid = static_cast<std::size_t>(omp_get_thread_num());
      const Mask chunk = total / static_cast<Mask>(threads);
      const Mask first = static_cast<Mask>(tid) * chunk;
      const Mask last = (tid + 1 == static_cast<std::size_t>(threads))
                            ? total - 1
                            : first + chunk - 1;
      sweep(first, last, array, thread_calls[tid]);
    }
    for (std::uint64_t c : thread_calls) calls += c;
    if (maxflow_calls) *maxflow_calls += calls;
    return array;
  }
#endif

  sweep(0, total - 1, array, calls);
  if (maxflow_calls) *maxflow_calls += calls;
  return array;
}

struct SideMaskEvaluator::Impl {
  Impl(const SideProblem& side, const AssignmentSet& assignments, Capacity d,
       MaxFlowAlgorithm algorithm)
      : eval(side, algorithm), set(&assignments), rate(d) {}

  SideEvaluator eval;
  const AssignmentSet* set;
  Capacity rate;
};

SideMaskEvaluator::SideMaskEvaluator(const SideProblem& side,
                                     const AssignmentSet& assignments,
                                     Capacity demand_rate,
                                     MaxFlowAlgorithm algorithm)
    : impl_(std::make_unique<Impl>(side, assignments, demand_rate,
                                   algorithm)) {
  if (!assignments.fits_mask()) {
    throw std::invalid_argument("assignment set too large for mask bits");
  }
}

SideMaskEvaluator::~SideMaskEvaluator() = default;
SideMaskEvaluator::SideMaskEvaluator(SideMaskEvaluator&&) noexcept = default;

Mask SideMaskEvaluator::realized(Mask config) {
  Mask out = 0;
  for (int j = 0; j < impl_->set->size(); ++j) {
    const Capacity required = impl_->eval.configure(
        impl_->set->assignments[static_cast<std::size_t>(j)], impl_->rate);
    ++calls_;
    if (impl_->eval.solve(config, required) >= required) out |= bit(j);
  }
  return out;
}

MaskDistribution bucket_side_array(const SideProblem& side,
                                   const std::vector<Mask>& array) {
  const ConfigProbTable probs(side.sub.net.failure_probs());
  std::unordered_map<Mask, double> buckets;
  KahanSum total;
  for (Mask config = 0; config < static_cast<Mask>(array.size()); ++config) {
    const double p = probs.prob(config);
    buckets[array[static_cast<std::size_t>(config)]] += p;
    total.add(p);
  }
  MaskDistribution dist;
  dist.buckets.assign(buckets.begin(), buckets.end());
  std::sort(dist.buckets.begin(), dist.buckets.end());
  dist.total = total.value();
  return dist;
}

}  // namespace streamrel
