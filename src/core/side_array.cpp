#include "streamrel/core/side_array.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <memory>
#include <stdexcept>

#ifdef _OPENMP
#include <omp.h>
#endif

#include <chrono>

#include "streamrel/maxflow/config_residual.hpp"
#include "streamrel/maxflow/incremental_dinic.hpp"
#include "streamrel/util/config_prob.hpp"
#include "streamrel/util/stats.hpp"
#include "streamrel/util/trace.hpp"

namespace streamrel {

SideProblem make_side_problem(std::shared_ptr<const CompiledNetwork> snapshot,
                              const FlowDemand& demand,
                              const BottleneckPartition& partition,
                              bool source_side) {
  if (!snapshot->valid_node(demand.source) ||
      !snapshot->valid_node(demand.sink)) {
    throw std::invalid_argument("demand endpoints out of range");
  }
  if (demand.source == demand.sink) {
    throw std::invalid_argument("demand source equals sink");
  }
  if (demand.rate <= 0) {
    throw std::invalid_argument("demand rate must be positive");
  }
  SideProblem side;
  side.is_source_side = source_side;

  std::vector<bool> in_side(partition.side_s);
  if (!source_side) in_side.flip();
  side.view = NetworkView(std::move(snapshot), in_side);
  if (!side.view.fits_mask()) {
    throw std::invalid_argument(
        "side component exceeds 63 links; pick a more balanced partition");
  }

  const CompiledNetwork& net = side.view.snapshot();
  const NodeId anchor_orig = source_side ? demand.source : demand.sink;
  side.anchor = side.view.view_node(anchor_orig);
  if (side.anchor == kInvalidNode) {
    throw std::invalid_argument("demand endpoint not on its side");
  }
  side.endpoints.reserve(partition.crossing_edges.size());
  for (EdgeId id : partition.crossing_edges) {
    const NodeId u = net.edge_u(id);
    const NodeId orig =
        partition.side_s[static_cast<std::size_t>(u)] == source_side
            ? u
            : net.edge_v(id);
    side.endpoints.push_back(side.view.view_node(orig));
  }
  return side;
}

SideProblem make_side_problem(const FlowNetwork& net, const FlowDemand& demand,
                              const BottleneckPartition& partition,
                              bool source_side) {
  return make_side_problem(net.compile(), demand, partition, source_side);
}

namespace {

// Raw shard-local counters for the hot sweep loops (a Telemetry map
// lookup per configuration would dominate); flushed into the public
// SideArrayStats telemetry once per shard, in shard order.
struct SweepCounters {
  std::uint64_t maxflow_calls = 0;
  std::uint64_t pruned_decisions = 0;
  std::uint64_t engine_toggles = 0;
  // Bit-parallel sweep: per-lane decisions by kernel, plus the scalar
  // residue that consulted an engine. Zero on the other strategies (the
  // keys are still flushed, so telemetry trees stay structurally
  // comparable across strategies and thread counts).
  std::uint64_t lanes_certificate = 0;
  std::uint64_t lanes_connectivity = 0;
  std::uint64_t lanes_popcount = 0;
  std::uint64_t scalar_residue = 0;

  void merge(const SweepCounters& other) noexcept {
    maxflow_calls += other.maxflow_calls;
    pruned_decisions += other.pruned_decisions;
    engine_toggles += other.engine_toggles;
    lanes_certificate += other.lanes_certificate;
    lanes_connectivity += other.lanes_connectivity;
    lanes_popcount += other.lanes_popcount;
    scalar_residue += other.scalar_residue;
  }

  void flush(Telemetry& telemetry) const {
    telemetry.counter(telemetry_keys::kMaxflowCalls) += maxflow_calls;
    telemetry.counter(telemetry_keys::kPrunedDecisions) += pruned_decisions;
    telemetry.counter(telemetry_keys::kEngineToggles) += engine_toggles;
    telemetry.counter(telemetry_keys::kLanesWordwise) +=
        lanes_certificate + lanes_connectivity + lanes_popcount;
    telemetry.counter(telemetry_keys::kLanesCertificate) += lanes_certificate;
    telemetry.counter(telemetry_keys::kLanesConnectivity) +=
        lanes_connectivity;
    telemetry.counter(telemetry_keys::kLanesPopcount) += lanes_popcount;
    telemetry.counter(telemetry_keys::kScalarResidue) += scalar_residue;
  }
};

// Cooperative stop poll, called every ExecContext::kPollStride steps of a
// shard's walk. `aborted` is shared across shards so one observing thread
// stops them all at their next poll.
bool poll_stop(const ExecContext* ctx, std::atomic<bool>& aborted) {
  if (!ctx) return false;
  if (aborted.load(std::memory_order_relaxed)) return true;
  if (!ctx->should_stop()) return false;
  aborted.store(true, std::memory_order_relaxed);
  return true;
}

// Shared super-arc layout: index 0 is the anchor arc, then per crossing
// edge i an "in" arc S0 -> endpoint (index 1 + 2i) and an "out" arc
// endpoint -> T1 (index 2 + 2i). All arcs start at capacity 0; the
// configure_* helpers below set the pristine capacities, which take
// effect at the next reset (scratch path) or engine attach (Gray path).
struct SuperTerminals {
  NodeId source = kInvalidNode;
  NodeId sink = kInvalidNode;
};

SuperTerminals add_side_super_arcs(ConfigResidual& residual,
                                   const SideProblem& side) {
  SuperTerminals t;
  t.source = residual.add_super_node();
  t.sink = residual.add_super_node();
  if (side.is_source_side) {
    residual.add_super_arc(t.source, side.anchor, 0, 0);
  } else {
    residual.add_super_arc(side.anchor, t.sink, 0, 0);
  }
  for (NodeId endpoint : side.endpoints) {
    residual.add_super_arc(t.source, endpoint, 0, 0);  // in arc
    residual.add_super_arc(endpoint, t.sink, 0, 0);    // out arc
  }
  return t;
}

// Resolved super-arc capacities for one assignment: what each arc of the
// add_side_super_arcs layout is set to, plus the flow total that signals
// feasibility. The bit-parallel kernels read the plan directly (seed /
// target sets, anchor-cut bypass); the scalar paths apply it to a
// residual graph.
struct SuperArcPlan {
  Capacity anchor_cap = 0;       ///< super arc 0 (S0 -> anchor or mirror)
  std::vector<Capacity> in_cap;  ///< per endpoint: S0 -> endpoint
  std::vector<Capacity> out_cap; ///< per endpoint: endpoint -> T1
  Capacity required = 0;         ///< d + backflow: the feasibility bound
};

SuperArcPlan plan_assignment_arcs(const SideProblem& side, const Assignment& a,
                                  Capacity d) {
  SuperArcPlan plan;
  plan.anchor_cap = d;
  plan.in_cap.resize(a.usage.size());
  plan.out_cap.resize(a.usage.size());
  Capacity backflow = 0;
  for (std::size_t i = 0; i < a.usage.size(); ++i) {
    const Capacity u = a.usage[i];
    // Source side: positive usage leaves via the endpoint (out arc);
    // negative usage enters there. Sink side is the mirror image.
    const bool leaves = side.is_source_side ? (u > 0) : (u < 0);
    const Capacity mag = u > 0 ? u : -u;
    plan.in_cap[i] = leaves ? 0 : mag;
    plan.out_cap[i] = leaves ? mag : 0;
    if (u < 0) backflow -= u;
  }
  plan.required = d + backflow;
  return plan;
}

void apply_assignment_plan(ConfigResidual& residual,
                           const SuperArcPlan& plan) {
  residual.set_super_arc(0, plan.anchor_cap, 0);
  for (std::size_t i = 0; i < plan.in_cap.size(); ++i) {
    residual.set_super_arc(1 + 2 * i, plan.in_cap[i], 0);
    residual.set_super_arc(2 + 2 * i, plan.out_cap[i], 0);
  }
}

// Configures the super arcs for one assignment; returns the flow total
// that signals feasibility.
Capacity configure_assignment_arcs(ConfigResidual& residual,
                                   const SideProblem& side,
                                   const Assignment& a, Capacity d) {
  const SuperArcPlan plan = plan_assignment_arcs(side, a, d);
  apply_assignment_plan(residual, plan);
  return plan.required;
}

// Configures f(Q) probing for the polymatroid path: every endpoint in Q
// gets capacity `d` on its demand-facing arc.
void configure_subset_arcs(ConfigResidual& residual, const SideProblem& side,
                           Mask q, Capacity d) {
  residual.set_super_arc(0, d, 0);
  for (std::size_t i = 0; i < side.endpoints.size(); ++i) {
    const std::size_t in_arc = 1 + 2 * i;
    const std::size_t out_arc = 2 + 2 * i;
    const bool in_q = test_bit(q, static_cast<int>(i));
    if (side.is_source_side) {
      residual.set_super_arc(in_arc, 0, 0);
      residual.set_super_arc(out_arc, in_q ? d : 0, 0);
    } else {
      residual.set_super_arc(in_arc, in_q ? d : 0, 0);
      residual.set_super_arc(out_arc, 0, 0);
    }
  }
}

// Per assignment, per subset Q: sum of usages inside Q (Gale's condition
// data for the polymatroid path).
std::vector<std::vector<Capacity>> subset_usage_sums(
    const AssignmentSet& assignments, Mask subsets) {
  std::vector<std::vector<Capacity>> sums(
      static_cast<std::size_t>(assignments.size()),
      std::vector<Capacity>(static_cast<std::size_t>(subsets), 0));
  for (int j = 0; j < assignments.size(); ++j) {
    const auto& usage =
        assignments.assignments[static_cast<std::size_t>(j)].usage;
    for (Mask q = 1; q < subsets; ++q) {
      const int low = lowest_bit(q);
      sums[static_cast<std::size_t>(j)][static_cast<std::size_t>(q)] =
          sums[static_cast<std::size_t>(j)][static_cast<std::size_t>(q & (q - 1))] +
          usage[static_cast<std::size_t>(low)];
    }
  }
  return sums;
}

// ---------------------------------------------------------------------------
// Scratch sweeps — the paper's procedure, one reset + solve per query.

struct SideEvaluator {
  SideEvaluator(const SideProblem& side, MaxFlowAlgorithm algorithm)
      : side_(&side),
        residual_(side.view),
        solver_(make_solver(algorithm)),
        terminals_(add_side_super_arcs(residual_, side)) {}

  Capacity configure(const Assignment& a, Capacity d) {
    return configure_assignment_arcs(residual_, *side_, a, d);
  }

  void configure_subset(Mask q, Capacity d) {
    configure_subset_arcs(residual_, *side_, q, d);
  }

  Capacity solve(Mask config, Capacity limit) {
    residual_.reset(config);
    return solver_->solve(residual_.graph(), terminals_.source,
                          terminals_.sink, limit);
  }

  const SideProblem* side_;
  ConfigResidual residual_;
  std::unique_ptr<MaxFlowSolver> solver_;
  SuperTerminals terminals_;
};

void sweep_per_assignment(const SideProblem& side,
                          const AssignmentSet& assignments, Capacity d,
                          MaxFlowAlgorithm algorithm, Mask first, Mask last,
                          std::vector<Mask>& array, SweepCounters& stats,
                          const ExecContext* ctx, std::atomic<bool>& aborted) {
  SideEvaluator eval(side, algorithm);
  ProgressMarker progress(exec_progress(ctx));
  const std::uint64_t span = last - first + 1;
  const std::uint64_t passes = static_cast<std::uint64_t>(assignments.size());
  for (int j = 0; j < assignments.size(); ++j) {
    const Capacity required =
        eval.configure(assignments.assignments[static_cast<std::size_t>(j)],
                       d);
    for (Mask config = first;; ++config) {
      if (((config - first) & (ExecContext::kPollStride - 1)) == 0) {
        if (poll_stop(ctx, aborted)) return;
        // This sweep walks the range once PER assignment; progress counts
        // each configuration once, pro-rated over the passes.
        progress.at((static_cast<std::uint64_t>(j) * span +
                     (config - first)) /
                    passes);
      }
      ++stats.maxflow_calls;
      STREAMREL_TRACE_SAMPLED_SPAN(mf_span, stats.maxflow_calls, "maxflow",
                                   "maxflow");
      if (eval.solve(config, required) >= required) {
        array[static_cast<std::size_t>(config)] |= bit(j);
      }
      if (config == last) break;
    }
  }
  progress.at(span);
}

void sweep_polymatroid(const SideProblem& side,
                       const AssignmentSet& assignments, Capacity d,
                       MaxFlowAlgorithm algorithm, Mask first, Mask last,
                       std::vector<Mask>& array, SweepCounters& stats,
                       const ExecContext* ctx, std::atomic<bool>& aborted) {
  const int k = static_cast<int>(side.endpoints.size());
  const Mask subsets = Mask{1} << k;
  const std::vector<std::vector<Capacity>> subset_sums =
      subset_usage_sums(assignments, subsets);

  SideEvaluator eval(side, algorithm);
  ProgressMarker progress(exec_progress(ctx));
  std::vector<Capacity> f(static_cast<std::size_t>(subsets), 0);
  for (Mask config = first;; ++config) {
    if (((config - first) & (ExecContext::kPollStride - 1)) == 0) {
      if (poll_stop(ctx, aborted)) return;
      progress.at(config - first);
    }
    for (Mask q = 1; q < subsets; ++q) {
      eval.configure_subset(q, d);
      ++stats.maxflow_calls;
      STREAMREL_TRACE_SAMPLED_SPAN(mf_span, stats.maxflow_calls, "maxflow",
                                   "maxflow");
      f[static_cast<std::size_t>(q)] = eval.solve(config, d);
    }
    Mask realized = 0;
    for (int j = 0; j < assignments.size(); ++j) {
      bool ok = true;
      for (Mask q = 1; q < subsets && ok; ++q) {
        ok = subset_sums[static_cast<std::size_t>(j)]
                        [static_cast<std::size_t>(q)] <=
             f[static_cast<std::size_t>(q)];
      }
      if (ok) realized |= bit(j);
    }
    array[static_cast<std::size_t>(config)] = realized;
    if (config == last) break;
  }
  progress.at(last - first + 1);
}

// ---------------------------------------------------------------------------
// Gray-code incremental sweeps.
//
// One persistent IncrementalMaxFlow engine per feasibility question
// (per assignment, or per subset Q on the polymatroid path). The walk
// visits configurations as gray_code(rank) for rank in [first, last], so
// consecutive configurations differ in exactly one link and a consulted
// engine repairs one edge instead of re-solving. Engines synchronise
// LAZILY: monotone pruning answers a query from the engine's stale state
// whenever feasibility at a subset (yes) or superset (no) already decides
// it, and only a query the pruning cannot answer pays for the catch-up
// toggles. Output is bitwise-identical to the scratch sweeps.

struct GrayEngine {
  explicit GrayEngine(const NetworkView& view) : residual(view) {}

  ConfigResidual residual;
  SuperTerminals terminals;
  std::unique_ptr<IncrementalMaxFlow> flow;
  // Cached verdict for state flow->alive_mask(), with certificates that
  // extend it well beyond subset/superset states (see refresh()):
  Capacity value = 0;  ///< bounded flow value at the cached state
  bool admits = false; ///< value >= the engine's target
  Mask support = 0;    ///< side edges the cached flow routes through
  Mask cut = 0;        ///< saturated-cut crossing edges (when !admits)

  /// Re-reads the verdict and (when pruning consults them) its
  /// certificates after a sync. The support certificate keeps the
  /// verdict's LOWER bound valid at any config that preserves the
  /// carrying edges; the cut certificate keeps the UPPER bound (the
  /// saturated cut's capacity == value) valid at any config that does not
  /// revive a dead crossing edge.
  void refresh(bool with_certificates) {
    value = flow->flow_value();
    admits = flow->admits();
    if (!with_certificates) return;
    support = flow->support_mask();
    cut = admits ? Mask{0} : flow->cut_mask();
  }

  void collect(SweepCounters& stats) const {
    stats.maxflow_calls += flow->solver_calls();
    stats.engine_toggles += flow->toggles();
  }
};

void sweep_per_assignment_gray(const SideProblem& side,
                               const AssignmentSet& assignments, Capacity d,
                               bool pruning, Mask first, Mask last,
                               std::vector<Mask>& array, SweepCounters& stats,
                               const ExecContext* ctx,
                               std::atomic<bool>& aborted) {
  const Mask start_config = gray_code(first);
  std::vector<std::unique_ptr<GrayEngine>> engines;
  engines.reserve(static_cast<std::size_t>(assignments.size()));
  for (int j = 0; j < assignments.size(); ++j) {
    auto e = std::make_unique<GrayEngine>(side.view);
    e->terminals = add_side_super_arcs(e->residual, side);
    const Capacity required = configure_assignment_arcs(
        e->residual, side, assignments.assignments[static_cast<std::size_t>(j)],
        d);
    e->flow = std::make_unique<IncrementalMaxFlow>(
        e->residual, e->terminals.source, e->terminals.sink, required,
        start_config);
    e->refresh(pruning);
    engines.push_back(std::move(e));
  }

  ProgressMarker progress(exec_progress(ctx));
  std::uint64_t sync_ops = 0;
  bool stopped = false;
  for (Mask rank = first;; ++rank) {
    if (((rank - first) & (ExecContext::kPollStride - 1)) == 0) {
      if (poll_stop(ctx, aborted)) {
        stopped = true;
        break;  // still collect engine counters below
      }
      progress.at(rank - first);
    }
    const Mask config = gray_code(rank);
    Mask realized = 0;
    for (int j = 0; j < assignments.size(); ++j) {
      GrayEngine& e = *engines[static_cast<std::size_t>(j)];
      const Mask state = e.flow->alive_mask();
      bool ok;
      if (state == config) {
        ok = e.admits;
      } else if (pruning && e.admits && (e.support & ~config) == 0) {
        // The cached flow's carrying edges are all alive: the same flow
        // still routes the demand, whatever else toggled.
        ok = true;
        ++stats.pruned_decisions;
      } else if (pruning && !e.admits && (config & e.cut & ~state) == 0) {
        // No dead crossing edge of the cached saturated cut was revived:
        // the cut still bounds the max-flow below the requirement.
        ok = false;
        ++stats.pruned_decisions;
      } else {
        ++sync_ops;
        STREAMREL_TRACE_SAMPLED_SPAN(mf_span, sync_ops, "maxflow_sync",
                                     "maxflow");
        e.flow->sync_to(config);
        e.refresh(pruning);
        ok = e.admits;
      }
      if (ok) realized |= bit(j);
    }
    array[static_cast<std::size_t>(config)] = realized;
    if (rank == last) break;
  }
  if (!stopped) progress.at(last - first + 1);
  for (const auto& e : engines) e->collect(stats);
}

void sweep_polymatroid_gray(const SideProblem& side,
                            const AssignmentSet& assignments, Capacity d,
                            bool pruning, Mask first, Mask last,
                            std::vector<Mask>& array, SweepCounters& stats,
                            const ExecContext* ctx,
                            std::atomic<bool>& aborted) {
  const int k = static_cast<int>(side.endpoints.size());
  const Mask subsets = Mask{1} << k;
  const std::vector<std::vector<Capacity>> subset_sums =
      subset_usage_sums(assignments, subsets);

  const Mask start_config = gray_code(first);
  // Engine q (1 <= q < subsets) maintains f(Q) = min(d, maxflow to the
  // endpoints of Q); index 0 stays empty.
  std::vector<std::unique_ptr<GrayEngine>> engines(
      static_cast<std::size_t>(subsets));
  for (Mask q = 1; q < subsets; ++q) {
    auto e = std::make_unique<GrayEngine>(side.view);
    e->terminals = add_side_super_arcs(e->residual, side);
    configure_subset_arcs(e->residual, side, q, d);
    e->flow = std::make_unique<IncrementalMaxFlow>(
        e->residual, e->terminals.source, e->terminals.sink, d, start_config);
    e->refresh(pruning);
    engines[static_cast<std::size_t>(q)] = std::move(e);
  }

  // f(Q) for the configuration at `rank`, consulting engine Q lazily. The
  // cached value v carries two certificates: while the cached flow's
  // carrying edges stay alive, f >= v; while no dead edge of the cached
  // saturated cut is revived, f <= v (the cut's capacity IS v). At the cap
  // (v >= d) the lower bound alone decides; below it both together pin
  // f(config) = v exactly without a sync.
  std::uint64_t sync_ops = 0;
  const auto f_of = [&](Mask q, Mask config) -> Capacity {
    GrayEngine& e = *engines[static_cast<std::size_t>(q)];
    const Mask state = e.flow->alive_mask();
    if (state == config) return e.value;
    if (pruning && (e.support & ~config) == 0) {
      if (e.value >= d) {
        ++stats.pruned_decisions;
        return d;
      }
      if ((config & e.cut & ~state) == 0) {
        ++stats.pruned_decisions;
        return e.value;
      }
    }
    ++sync_ops;
    STREAMREL_TRACE_SAMPLED_SPAN(mf_span, sync_ops, "maxflow_sync", "maxflow");
    e.flow->sync_to(config);
    e.refresh(pruning);
    return e.value;
  };

  ProgressMarker progress(exec_progress(ctx));
  bool stopped = false;
  Mask realized_prev = 0;
  for (Mask rank = first;; ++rank) {
    if (((rank - first) & (ExecContext::kPollStride - 1)) == 0) {
      if (poll_stop(ctx, aborted)) {
        stopped = true;
        break;  // still collect engine counters below
      }
      progress.at(rank - first);
    }
    const Mask config = gray_code(rank);
    // Assignment-level monotone pruning off the previous Gray step: a
    // link turned ON keeps every realized assignment realized; a link
    // turned OFF keeps every unrealized assignment unrealized.
    Mask decided = 0;
    Mask decided_values = 0;
    if (pruning && rank != first) {
      if (test_bit(config, gray_flip_bit(rank - 1))) {
        decided = realized_prev;
        decided_values = realized_prev;
      } else {
        decided = ~realized_prev;
      }
    }
    Mask realized = 0;
    for (int j = 0; j < assignments.size(); ++j) {
      bool ok;
      if (test_bit(decided, j)) {
        ok = test_bit(decided_values, j);
        ++stats.pruned_decisions;
      } else {
        ok = true;
        const auto& sums = subset_sums[static_cast<std::size_t>(j)];
        for (Mask q = 1; q < subsets && ok; ++q) {
          ok = sums[static_cast<std::size_t>(q)] <= f_of(q, config);
        }
      }
      if (ok) realized |= bit(j);
    }
    array[static_cast<std::size_t>(config)] = realized;
    realized_prev = realized;
    if (rank == last) break;
  }
  if (!stopped) progress.at(last - first + 1);
  for (Mask q = 1; q < subsets; ++q) {
    engines[static_cast<std::size_t>(q)]->collect(stats);
  }
}

// ---------------------------------------------------------------------------
// Bit-parallel slab sweep (SideSweepStrategy::kBitParallel).
//
// The Gray walk is processed in 64-rank slabs held transposed in a
// BitSlabs window (one word per side edge, bit L = "alive at rank
// base + L"). Three word-wide kernels decide whole lanes at once, in
// order of cost:
//
//   1. certificate bank — the last few engine verdicts of this
//      assignment, replayed word-wide: an admitting flow's support
//      edges AND together into a YES lane set, a saturated cut's dead
//      crossing edges AND (complemented) into a NO lane set;
//   2. 64-lane BFS — when the required flow is 1 and every side cap is
//      >= 1, feasibility IS reachability, and one bit-parallel BFS over
//      the side adjacency decides all 64 lanes exactly (both ways);
//   3. anchor-cut popcount — a bit-sliced saturating tally of the alive
//      capacity crossing the anchor's cut, compared per lane against
//      the assignment's requirement: lanes whose cut cannot carry the
//      demand are NO.
//
// Only the residue consults a scalar engine (created lazily, synced to
// the lowest undecided lane); the fresh certificate re-runs word-wide
// immediately, so one sync typically clears many lanes at once. Every
// kernel is sound and the engine is exact, so the output array is
// bitwise identical to kScratch — only the path to each decision (and
// hence maxflow_calls) differs.

constexpr std::size_t kCertBankSize = 12;

struct WordCert {
  Mask mask = 0;  ///< YES: support edges; NO: dead crossing cut edges
  bool admits = false;
};

/// Fixed-capacity most-recent-first certificate ring.
struct CertBank {
  std::array<WordCert, kCertBankSize> certs;
  std::size_t head = 0;  ///< slot of the most recent certificate
  std::size_t count = 0;

  void push(const WordCert& cert) {
    head = (head + kCertBankSize - 1) % kCertBankSize;
    certs[head] = cert;
    if (count < kCertBankSize) ++count;
  }
  const WordCert& at(std::size_t i) const {  // i == 0: most recent
    return certs[(head + i) % kCertBankSize];
  }
};

/// Word-wide replay of one certificate over the slab: returns the lanes
/// (drawn from `candidates`) the certificate decides; the decided value
/// is cert.admits. A YES lane keeps every support edge alive; a NO lane
/// revives no dead crossing edge of the saturated cut.
std::uint64_t cert_decided_lanes(const WordCert& cert, const BitSlabs& slabs,
                                 std::uint64_t candidates) {
  std::uint64_t w = candidates;
  if (cert.admits) {
    for (Mask rest = cert.mask; rest != 0 && w != 0; rest &= rest - 1) {
      w &= slabs.word(lowest_bit(rest));
    }
  } else {
    for (Mask rest = cert.mask; rest != 0 && w != 0; rest &= rest - 1) {
      w &= ~slabs.word(lowest_bit(rest));
    }
  }
  return w;
}

/// Saturating bit-sliced tally over 64 lanes: add() accumulates a small
/// weight into every lane of a word; less_than() then compares all 64
/// sums against the threshold at once. Weights are pre-clamped to the
/// threshold, so bit_width(threshold) value slices plus one overflow
/// word suffice.
class LaneTally {
 public:
  explicit LaneTally(Capacity threshold)
      : bits_(static_cast<int>(
            std::bit_width(static_cast<std::uint64_t>(threshold)))) {}

  void add(std::uint64_t lanes, Capacity weight) {
    const auto w = static_cast<std::uint64_t>(weight);
    for (int b = 0; (w >> b) != 0; ++b) {
      if (((w >> b) & 1) == 0) continue;
      std::uint64_t carry = lanes;
      for (int i = b; i < bits_ && carry != 0; ++i) {
        const std::uint64_t overlap = s_[static_cast<std::size_t>(i)] & carry;
        s_[static_cast<std::size_t>(i)] ^= carry;
        carry = overlap;
      }
      overflow_ |= carry;
    }
  }

  /// Lanes whose tally is strictly below `threshold`.
  std::uint64_t less_than(Capacity threshold) const {
    std::uint64_t lt = 0;
    std::uint64_t ge = overflow_;
    for (int i = bits_ - 1; i >= 0; --i) {
      const std::uint64_t open = ~(lt | ge);
      if (test_bit(static_cast<Mask>(threshold), i)) {
        lt |= open & ~s_[static_cast<std::size_t>(i)];
      } else {
        ge |= open & s_[static_cast<std::size_t>(i)];
      }
    }
    return lt;
  }

 private:
  std::array<std::uint64_t, 6> s_{};
  std::uint64_t overflow_ = 0;
  int bits_;
};

/// 64-lane reachability from the seed nodes over the slab's alive edges;
/// returns the lanes in which any target node is reached. Propagates to
/// a fixpoint (each pass is O(|E_side|) word ops; the pass count is
/// bounded by the side's diameter).
std::uint64_t connected_lanes(const BitSlabs& slabs,
                              const std::vector<NodeId>& eu,
                              const std::vector<NodeId>& ev,
                              const std::vector<std::uint8_t>& undirected,
                              const std::vector<NodeId>& seeds,
                              const std::vector<NodeId>& targets,
                              std::vector<std::uint64_t>& reach) {
  std::fill(reach.begin(), reach.end(), 0);
  for (NodeId s : seeds) {
    reach[static_cast<std::size_t>(s)] = ~std::uint64_t{0};
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t e = 0; e < eu.size(); ++e) {
      const std::uint64_t w = slabs.word(static_cast<int>(e));
      if (w == 0) continue;
      const auto u = static_cast<std::size_t>(eu[e]);
      const auto v = static_cast<std::size_t>(ev[e]);
      const std::uint64_t fwd = reach[u] & w & ~reach[v];
      if (fwd != 0) {
        reach[v] |= fwd;
        changed = true;
      }
      if (undirected[e] != 0) {
        const std::uint64_t bwd = reach[v] & w & ~reach[u];
        if (bwd != 0) {
          reach[u] |= bwd;
          changed = true;
        }
      }
    }
  }
  std::uint64_t out = 0;
  for (NodeId t : targets) {
    out |= reach[static_cast<std::size_t>(t)];
  }
  return out;
}

/// Per-assignment sweep state: the resolved super-arc plan, kernel
/// eligibility data, the certificate ring, and the lazily created
/// residue engine.
struct SlabAssignment {
  SuperArcPlan plan;
  bool connectivity = false;   ///< required == 1 and all side caps >= 1
  Capacity cut_threshold = 0;  ///< required - endpoint bypass capacity
  std::vector<NodeId> seeds;   ///< BFS sources (positive supply arcs)
  std::vector<NodeId> targets; ///< BFS sinks (positive demand arcs)
  CertBank bank;
  std::unique_ptr<GrayEngine> engine;
};

void sweep_per_assignment_bitparallel(const SideProblem& side,
                                      const AssignmentSet& assignments,
                                      Capacity d, Mask first, Mask last,
                                      std::vector<Mask>& array,
                                      SweepCounters& stats,
                                      const ExecContext* ctx,
                                      std::atomic<bool>& aborted) {
  const int m = side.view.num_edges();

  // Flat side adjacency (view translation hoisted out of the BFS).
  std::vector<NodeId> eu(static_cast<std::size_t>(m));
  std::vector<NodeId> ev(static_cast<std::size_t>(m));
  std::vector<std::uint8_t> undirected(static_cast<std::size_t>(m));
  bool unit_or_more = true;
  for (int e = 0; e < m; ++e) {
    const auto i = static_cast<std::size_t>(e);
    eu[i] = side.view.edge_u(e);
    ev[i] = side.view.edge_v(e);
    undirected[i] = side.view.edge_directed(e) ? 0 : 1;
    unit_or_more = unit_or_more && side.view.edge_capacity(e) >= 1;
  }

  // Side edges able to carry flow out of {S0, anchor} (source side),
  // resp. into {anchor, T1} (sink side) — the configuration-dependent
  // part of the anchor cut the popcount kernel bounds.
  std::vector<std::pair<int, Capacity>> anchor_edges;
  for (int e = 0; e < m; ++e) {
    const auto i = static_cast<std::size_t>(e);
    if (eu[i] != side.anchor && ev[i] != side.anchor) continue;
    if (eu[i] == ev[i]) continue;  // self loop never crosses the cut
    const bool crosses =
        undirected[i] != 0 || (side.is_source_side ? eu[i] == side.anchor
                                                   : ev[i] == side.anchor);
    if (crosses) anchor_edges.emplace_back(e, side.view.edge_capacity(e));
  }

  std::vector<SlabAssignment> state(
      static_cast<std::size_t>(assignments.size()));
  for (int j = 0; j < assignments.size(); ++j) {
    SlabAssignment& a = state[static_cast<std::size_t>(j)];
    a.plan = plan_assignment_arcs(
        side, assignments.assignments[static_cast<std::size_t>(j)], d);
    a.connectivity = a.plan.required == 1 && unit_or_more;
    // Endpoint super arcs crossing the anchor cut regardless of the side
    // configuration: an endpoint AT the anchor crosses on its
    // demand-facing arc, every other endpoint on its supply-facing one.
    Capacity bypass = 0;
    for (std::size_t i = 0; i < side.endpoints.size(); ++i) {
      const bool at_anchor = side.endpoints[i] == side.anchor;
      if (side.is_source_side) {
        bypass += at_anchor ? a.plan.out_cap[i] : a.plan.in_cap[i];
      } else {
        bypass += at_anchor ? a.plan.in_cap[i] : a.plan.out_cap[i];
      }
      if (a.plan.in_cap[i] > 0) a.seeds.push_back(side.endpoints[i]);
      if (a.plan.out_cap[i] > 0) a.targets.push_back(side.endpoints[i]);
    }
    // The anchor arc's capacity (d >= 1) makes the anchor a
    // configuration-independent seed (source side) / target (sink side).
    if (side.is_source_side) {
      a.seeds.push_back(side.anchor);
    } else {
      a.targets.push_back(side.anchor);
    }
    a.cut_threshold = a.plan.required - bypass;
  }

  BitSlabs slabs(m);
  std::vector<std::uint64_t> reach(
      static_cast<std::size_t>(side.view.num_nodes()), 0);
  std::array<Mask, 64> realized{};
  ProgressMarker progress(exec_progress(ctx));
  std::uint64_t sync_ops = 0;
  bool stopped = false;
  for (Mask base = first; base <= last; base += 64) {
    if (((base - first) & (ExecContext::kPollStride - 1)) == 0) {
      if (poll_stop(ctx, aborted)) {
        stopped = true;
        break;  // still collect engine counters below
      }
      progress.at(base - first);
    }
    const int lanes = static_cast<int>(std::min<Mask>(64, last - base + 1));
    const std::uint64_t valid = lanes == 64
                                    ? ~std::uint64_t{0}
                                    : (std::uint64_t{1} << lanes) - 1;
    slabs.fill(base);
    realized.fill(0);
    for (int j = 0; j < assignments.size(); ++j) {
      SlabAssignment& a = state[static_cast<std::size_t>(j)];
      std::uint64_t undecided = valid;
      std::uint64_t yes = 0;

      if (a.connectivity) {
        // Feasibility == reachability: the BFS decides every lane of
        // the slab exactly, both YES and NO — no engine is ever needed.
        yes = connected_lanes(slabs, eu, ev, undirected, a.seeds, a.targets,
                              reach) &
              undecided;
        stats.lanes_connectivity +=
            static_cast<std::uint64_t>(popcount(undecided));
        undecided = 0;
      } else {
        for (std::size_t c = 0; c < a.bank.count && undecided != 0; ++c) {
          const WordCert& cert = a.bank.at(c);
          const std::uint64_t w = cert_decided_lanes(cert, slabs, undecided);
          if (cert.admits) yes |= w;
          undecided &= ~w;
          stats.lanes_certificate += static_cast<std::uint64_t>(popcount(w));
        }
        if (undecided != 0 && a.cut_threshold >= 1) {
          LaneTally tally(a.cut_threshold);
          for (const auto& [e, cap] : anchor_edges) {
            tally.add(slabs.word(e), std::min(cap, a.cut_threshold));
          }
          const std::uint64_t no_w =
              tally.less_than(a.cut_threshold) & undecided;
          undecided &= ~no_w;
          stats.lanes_popcount += static_cast<std::uint64_t>(popcount(no_w));
        }
        while (undecided != 0) {
          const int L = lowest_bit(undecided);
          const Mask config = gray_code(base + static_cast<Mask>(L));
          if (!a.engine) {
            // First residue lane of this assignment: build the engine
            // directly at `config` (the construction solve is the sync).
            a.engine = std::make_unique<GrayEngine>(side.view);
            a.engine->terminals =
                add_side_super_arcs(a.engine->residual, side);
            apply_assignment_plan(a.engine->residual, a.plan);
            a.engine->flow = std::make_unique<IncrementalMaxFlow>(
                a.engine->residual, a.engine->terminals.source,
                a.engine->terminals.sink, a.plan.required, config);
          } else {
            ++sync_ops;
            STREAMREL_TRACE_SAMPLED_SPAN(mf_span, sync_ops, "maxflow_sync",
                                         "maxflow");
            a.engine->flow->sync_to(config);
          }
          a.engine->refresh(/*with_certificates=*/true);
          WordCert cert;
          cert.admits = a.engine->admits;
          cert.mask =
              cert.admits ? a.engine->support : (a.engine->cut & ~config);
          a.bank.push(cert);
          // The fresh certificate always covers its own lane (support
          // is alive at `config`; no cut edge dead at `config` is alive
          // there), so the loop strictly shrinks `undecided`.
          const std::uint64_t w = cert_decided_lanes(cert, slabs, undecided);
          if (cert.admits) yes |= w;
          undecided &= ~w;
          ++stats.scalar_residue;
          stats.lanes_certificate +=
              static_cast<std::uint64_t>(popcount(w)) - 1;
        }
      }
      for (std::uint64_t rest = yes; rest != 0; rest &= rest - 1) {
        realized[static_cast<std::size_t>(lowest_bit(rest))] |= bit(j);
      }
    }
    for (int L = 0; L < lanes; ++L) {
      array[static_cast<std::size_t>(
          gray_code(base + static_cast<Mask>(L)))] =
          realized[static_cast<std::size_t>(L)];
    }
  }
  if (!stopped) progress.at(last - first + 1);
  for (const SlabAssignment& a : state) {
    if (a.engine) a.engine->collect(stats);
  }
}

}  // namespace

std::vector<Mask> build_side_array(const SideProblem& side,
                                   const AssignmentSet& assignments,
                                   Capacity demand_rate,
                                   const SideArrayOptions& options,
                                   SideArrayStats* stats,
                                   const ExecContext* ctx) {
  if (!assignments.fits_mask()) {
    throw std::invalid_argument("assignment set too large for mask bits");
  }
  FeasibilityMethod method = options.feasibility;
  if (method == FeasibilityMethod::kPolymatroid &&
      assignments.mode != AssignmentMode::kForwardOnly) {
    throw std::invalid_argument(
        "polymatroid feasibility requires forward-only assignments");
  }
  if (method == FeasibilityMethod::kAuto) {
    const auto k = side.endpoints.size();
    const bool poly_cheaper =
        k < 6 && static_cast<std::size_t>(assignments.size()) >
                     ((std::size_t{1} << k) - 1);
    method = (assignments.mode == AssignmentMode::kForwardOnly && poly_cheaper)
                 ? FeasibilityMethod::kPolymatroid
                 : FeasibilityMethod::kPerAssignment;
  }

  const int m = side.view.num_edges();
  const Mask total = Mask{1} << m;

  SideSweepStrategy sweep = options.sweep;
  if (sweep == SideSweepStrategy::kAuto) {
    // Engine setup costs |D| (resp. 2^k - 1) graph builds per shard; only
    // worth amortizing over a reasonably large walk. Per-assignment
    // feasibility takes the slab sweep (word-wide kernels decide most
    // lanes without a solver); polymatroid feasibility keeps the Gray
    // engine bank, which grows with 2^k, so very wide bottlenecks stay
    // scratch.
    if (total < 1024) {
      sweep = SideSweepStrategy::kScratch;
    } else if (method == FeasibilityMethod::kPolymatroid) {
      sweep = side.endpoints.size() > 12 ? SideSweepStrategy::kScratch
                                         : SideSweepStrategy::kGrayIncremental;
    } else {
      sweep = SideSweepStrategy::kBitParallel;
    }
  }
  // The slab kernels reason about single assignments; a polymatroid
  // request under kBitParallel falls back to the Gray engine bank.
  if (sweep == SideSweepStrategy::kBitParallel &&
      method == FeasibilityMethod::kPolymatroid) {
    sweep = SideSweepStrategy::kGrayIncremental;
  }

  const char* strategy_name =
      sweep == SideSweepStrategy::kGrayIncremental ? "gray"
      : sweep == SideSweepStrategy::kBitParallel   ? "bit_parallel"
                                                   : "scratch";
  TraceSpan sweep_span("build_side_array", "sweep");
  sweep_span.arg("side", side.is_source_side ? "s" : "t")
      .arg("links", static_cast<std::int64_t>(m))
      .arg("configs", static_cast<std::uint64_t>(total))
      .arg("strategy", strategy_name)
      .arg("gray", sweep != SideSweepStrategy::kScratch);

  if (ProgressReporter* progress = exec_progress(ctx)) {
    progress->add_total(static_cast<std::uint64_t>(total));
  }

  std::vector<Mask> array(static_cast<std::size_t>(total), 0);
  SweepCounters local;
  std::atomic<bool> aborted{false};

  // `first`/`last` are configuration values on the scratch path and
  // Gray-code ranks on the incremental path; either way the shards
  // [0, total) are covered exactly once.
  auto run = [&](Mask first, Mask last, SweepCounters& s) {
    switch (sweep) {
      case SideSweepStrategy::kBitParallel:
        sweep_per_assignment_bitparallel(side, assignments, demand_rate, first,
                                         last, array, s, ctx, aborted);
        break;
      case SideSweepStrategy::kGrayIncremental:
        if (method == FeasibilityMethod::kPolymatroid) {
          sweep_polymatroid_gray(side, assignments, demand_rate,
                                 options.monotone_pruning, first, last, array,
                                 s, ctx, aborted);
        } else {
          sweep_per_assignment_gray(side, assignments, demand_rate,
                                    options.monotone_pruning, first, last,
                                    array, s, ctx, aborted);
        }
        break;
      default:
        if (method == FeasibilityMethod::kPolymatroid) {
          sweep_polymatroid(side, assignments, demand_rate, options.algorithm,
                            first, last, array, s, ctx, aborted);
        } else {
          sweep_per_assignment(side, assignments, demand_rate,
                               options.algorithm, first, last, array, s, ctx,
                               aborted);
        }
        break;
    }
  };

#ifdef _OPENMP
  if (options.parallel && total >= 1024) {
    // Contiguous, Gray-aligned shards: each shard owns one rank range, so
    // its Gray walk is a single contiguous path. The shard geometry is
    // FIXED by the instance size (never by the thread count), so the
    // per-shard counters — and their shard-order merge below — are
    // identical whether the sweep runs on 1 thread or 64.
    const Mask shard_count = std::min<Mask>(Mask{32}, total >> 10);
    const Mask chunk = total / shard_count;
    const int threads = static_cast<int>(std::min<Mask>(
        static_cast<Mask>(exec_resolved_threads(ctx)), shard_count));
    std::vector<SweepCounters> shard_stats(
        static_cast<std::size_t>(shard_count));
    std::vector<double> shard_ms(static_cast<std::size_t>(shard_count), 0.0);
#pragma omp parallel for schedule(dynamic, 1) num_threads(threads)
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(shard_count);
         ++i) {
      const Mask first = static_cast<Mask>(i) * chunk;
      const Mask last = static_cast<Mask>(i) + 1 == shard_count
                            ? total - 1
                            : first + chunk - 1;
      TraceSpan shard_span("side_sweep_shard", "sweep");
      shard_span.arg("shard", static_cast<std::int64_t>(i))
          .arg("ranks", static_cast<std::uint64_t>(last - first + 1));
      const auto t0 = std::chrono::steady_clock::now();
      run(first, last, shard_stats[static_cast<std::size_t>(i)]);
      shard_ms[static_cast<std::size_t>(i)] =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - t0)
              .count();
    }
    if (aborted.load(std::memory_order_relaxed)) {
      throw ExecInterrupted{ctx->stop_status()};
    }
    for (const SweepCounters& s : shard_stats) local.merge(s);
    if (stats) {
      local.flush(stats->telemetry);
      // Shards run concurrently, so wall clock is the slowest shard (the
      // max), never the sum — the sum is the CPU view and gets its own
      // key. See Telemetry::merge_parallel for the same rule applied to
      // whole trees.
      double wall = 0.0;
      double cpu = 0.0;
      for (double t : shard_ms) {
        wall = std::max(wall, t);
        cpu += t;
      }
      stats->telemetry.timer_ms("sweep") += wall;
      stats->telemetry.timer_ms("sweep_cpu") += cpu;
    }
    return array;
  }
#endif

  {
    const auto t0 = std::chrono::steady_clock::now();
    run(0, total - 1, local);
    if (stats) {
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      stats->telemetry.timer_ms("sweep") += ms;
      stats->telemetry.timer_ms("sweep_cpu") += ms;
    }
  }
  if (aborted.load(std::memory_order_relaxed)) {
    throw ExecInterrupted{ctx->stop_status()};
  }
  if (stats) local.flush(stats->telemetry);
  return array;
}

std::vector<Mask> build_side_array(const SideProblem& side,
                                   const AssignmentSet& assignments,
                                   Capacity demand_rate,
                                   const SideArrayOptions& options,
                                   std::uint64_t* maxflow_calls) {
  SideArrayStats stats;
  std::vector<Mask> array =
      build_side_array(side, assignments, demand_rate, options, &stats);
  if (maxflow_calls) *maxflow_calls += stats.maxflow_calls();
  return array;
}

SlabMaskTable build_side_array_slab(const SideProblem& side,
                                    const AssignmentSet& assignments,
                                    Capacity demand_rate,
                                    const SideArrayOptions& options,
                                    SideArrayStats* stats,
                                    const ExecContext* ctx) {
  return slab_form(
      build_side_array(side, assignments, demand_rate, options, stats, ctx),
      side.view.num_edges());
}

struct SideMaskEvaluator::Impl {
  Impl(const SideProblem& side, const AssignmentSet& assignments, Capacity d,
       MaxFlowAlgorithm algorithm)
      : eval(side, algorithm), set(&assignments), rate(d) {}

  SideEvaluator eval;
  const AssignmentSet* set;
  Capacity rate;
};

SideMaskEvaluator::SideMaskEvaluator(const SideProblem& side,
                                     const AssignmentSet& assignments,
                                     Capacity demand_rate,
                                     MaxFlowAlgorithm algorithm)
    : impl_(std::make_unique<Impl>(side, assignments, demand_rate,
                                   algorithm)) {
  if (!assignments.fits_mask()) {
    throw std::invalid_argument("assignment set too large for mask bits");
  }
}

SideMaskEvaluator::~SideMaskEvaluator() = default;
SideMaskEvaluator::SideMaskEvaluator(SideMaskEvaluator&&) noexcept = default;

Mask SideMaskEvaluator::realized(Mask config) {
  Mask out = 0;
  for (int j = 0; j < impl_->set->size(); ++j) {
    const Capacity required = impl_->eval.configure(
        impl_->set->assignments[static_cast<std::size_t>(j)], impl_->rate);
    ++calls_;
    if (impl_->eval.solve(config, required) >= required) out |= bit(j);
  }
  return out;
}

namespace {

// Open-addressed accumulation table for (realized mask -> probability).
// Distinct masks are few (<= min(2^|E_side|, 2^|D|) and usually far
// fewer), so a flat power-of-two table with linear probing beats
// unordered_map's node allocations in the hot fold loop. Mask values
// never exceed 63 usable bits, so the all-ones key can act as EMPTY.
class FlatBucketTable {
 public:
  FlatBucketTable()
      : keys_(kInitialCapacity, kEmpty), sums_(kInitialCapacity, 0.0) {}

  void add(Mask key, double p) {
    std::size_t i = slot(key);
    while (keys_[i] != key) {
      if (keys_[i] == kEmpty) {
        keys_[i] = key;
        ++size_;
        if (size_ * 10 >= keys_.size() * 7) {
          grow();
          i = slot(key);
          while (keys_[i] != key) i = (i + 1) & (keys_.size() - 1);
        }
        break;
      }
      i = (i + 1) & (keys_.size() - 1);
    }
    sums_[i] += p;
  }

  std::vector<std::pair<Mask, double>> entries() const {
    std::vector<std::pair<Mask, double>> out;
    out.reserve(size_);
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] != kEmpty) out.emplace_back(keys_[i], sums_[i]);
    }
    return out;
  }

 private:
  static constexpr Mask kEmpty = ~Mask{0};
  static constexpr std::size_t kInitialCapacity = 64;

  std::size_t slot(Mask key) const noexcept {
    // splitmix64 finalizer.
    std::uint64_t x = key + 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x) & (keys_.size() - 1);
  }

  void grow() {
    const std::vector<Mask> old_keys = std::move(keys_);
    const std::vector<double> old_sums = std::move(sums_);
    keys_.assign(old_keys.size() * 2, kEmpty);
    sums_.assign(old_sums.size() * 2, 0.0);
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] == kEmpty) continue;
      std::size_t j = slot(old_keys[i]);
      while (keys_[j] != kEmpty) j = (j + 1) & (keys_.size() - 1);
      keys_[j] = old_keys[i];
      sums_[j] = old_sums[i];
    }
  }

  std::vector<Mask> keys_;
  std::vector<double> sums_;
  std::size_t size_ = 0;
};

// Shared slab fold: walk the ranks in 64-lane slabs, compute all 64
// configuration probabilities at once with the vectorized lane-product
// kernel (direct per-lane products in ascending edge order — no ratio
// chain, so no drift, no resync, and zero failure probabilities need no
// special casing), and accumulate bucket (mask -> probability) in rank
// order. The insertion order and the Kahan total are fixed by the rank
// walk, so every overload — config-indexed or slab-form — produces a
// bitwise identical distribution.
template <typename MaskAt>
MaskDistribution fold_ranks(int m, Mask n, std::span<const double> probs,
                            MaskAt&& mask_at) {
  BitSlabs slabs(m);
  std::array<double, 64> lane_p{};
  FlatBucketTable buckets;
  KahanSum total;
  for (Mask base = 0; base < n; base += 64) {
    const int lanes = static_cast<int>(std::min<Mask>(64, n - base));
    slabs.fill(base);
    lane_config_products(slabs.words(), probs, lanes, lane_p.data());
    for (int L = 0; L < lanes; ++L) {
      const double p = lane_p[static_cast<std::size_t>(L)];
      buckets.add(mask_at(base + static_cast<Mask>(L)), p);
      total.add(p);
    }
  }
  MaskDistribution dist;
  dist.buckets = buckets.entries();
  std::sort(dist.buckets.begin(), dist.buckets.end());
  dist.total = total.value();
  return dist;
}

}  // namespace

MaskDistribution bucket_side_array(const SideProblem& side,
                                   const std::vector<Mask>& array) {
  return bucket_side_array(side, array, side.view.failure_probs());
}

MaskDistribution bucket_side_array(const SideProblem& side,
                                   const std::vector<Mask>& array,
                                   std::span<const double> probs) {
  const int m = side.view.num_edges();
  if (probs.size() != static_cast<std::size_t>(m)) {
    throw std::invalid_argument("one failure probability per side link");
  }
  return fold_ranks(m, static_cast<Mask>(array.size()), probs,
                    [&array](Mask rank) {
                      return array[static_cast<std::size_t>(gray_code(rank))];
                    });
}

MaskDistribution bucket_side_array(const SideProblem& side,
                                   const SlabMaskTable& table) {
  return bucket_side_array(side, table, side.view.failure_probs());
}

MaskDistribution bucket_side_array(const SideProblem& side,
                                   const SlabMaskTable& table,
                                   std::span<const double> probs) {
  const int m = side.view.num_edges();
  if (probs.size() != static_cast<std::size_t>(m)) {
    throw std::invalid_argument("one failure probability per side link");
  }
  return fold_ranks(
      m, static_cast<Mask>(table.by_rank.size()), probs, [&table](Mask rank) {
        return table.by_rank[static_cast<std::size_t>(rank)];
      });
}

}  // namespace streamrel
