#include "streamrel/core/importance.hpp"

#include <algorithm>

namespace streamrel {

std::vector<EdgeImportance> edge_importance(const FlowNetwork& net,
                                            const FlowDemand& demand,
                                            const SolveOptions& options) {
  net.check_demand(demand);
  const double base = compute_reliability(net, demand, options)
                          .result.reliability;
  std::vector<EdgeImportance> out;
  out.reserve(static_cast<std::size_t>(net.num_edges()));
  FlowNetwork work = net;
  for (EdgeId id = 0; id < net.num_edges(); ++id) {
    const Edge original = net.edge(id);

    work.set_failure_prob(id, 0.0);
    const double up =
        compute_reliability(work, demand, options).result.reliability;
    work.set_failure_prob(id, original.failure_prob);

    work.set_capacity(id, 0);
    const double down =
        compute_reliability(work, demand, options).result.reliability;
    work.set_capacity(id, original.capacity);

    EdgeImportance imp;
    imp.edge = id;
    imp.birnbaum = up - down;
    imp.risk_achievement = up - base;
    imp.risk_reduction = base - down;
    out.push_back(imp);
  }
  return out;
}

std::vector<EdgeImportance> ranked_by_birnbaum(
    std::vector<EdgeImportance> importances) {
  std::stable_sort(importances.begin(), importances.end(),
                   [](const EdgeImportance& a, const EdgeImportance& b) {
                     return a.birnbaum > b.birnbaum;
                   });
  return importances;
}

}  // namespace streamrel
