#include "streamrel/core/bottleneck_algorithm.hpp"

#include <stdexcept>

#include "streamrel/graph/graph_algos.hpp"
#include "streamrel/graph/subgraph.hpp"
#include "streamrel/reliability/naive.hpp"
#include "streamrel/util/config_prob.hpp"
#include "streamrel/util/stats.hpp"
#include "streamrel/util/trace.hpp"

namespace streamrel {

BottleneckArtifacts build_bottleneck_artifacts(
    const FlowNetwork& net, const FlowDemand& demand,
    const BottleneckPartition& partition, const BottleneckOptions& options,
    const ExecContext* ctx, const AssignmentSet* reuse_assignments,
    std::shared_ptr<const CompiledNetwork> snapshot, SideReuse* reuse_s,
    SideReuse* reuse_t) {
  net.check_demand(demand);
  if (partition.side_s.size() != static_cast<std::size_t>(net.num_nodes())) {
    throw std::invalid_argument("partition does not match network");
  }
  if (!partition.side_s[static_cast<std::size_t>(demand.source)] ||
      partition.side_s[static_cast<std::size_t>(demand.sink)]) {
    throw std::invalid_argument("demand endpoints on wrong partition sides");
  }

  BottleneckArtifacts artifacts;
  artifacts.partition_stats =
      analyze_partition(net, demand.source, demand.sink, partition);

  // Mask-width ceiling: each side sweep and the accumulation enumerate
  // 2^links configurations in one 64-bit mask. A partition that would
  // overflow the mask is a legitimate input the decomposition simply
  // cannot enumerate — report it as a stop status (so kAuto falls through
  // to a non-enumerating engine) rather than shifting past the mask width.
  if (artifacts.partition_stats.edges_s > kMaxMaskBits ||
      artifacts.partition_stats.edges_t > kMaxMaskBits ||
      artifacts.partition_stats.k > kMaxMaskBits) {
    artifacts.status = SolveStatus::kMaskOverflow;
    return artifacts;
  }

  // If even the full crossing capacity cannot carry d, reliability is 0
  // (paper: "If c(E') < d, the reliability ... is trivially zero").
  {
    TraceSpan span("assignments", "phase");
    span.arg("reused", reuse_assignments != nullptr);
    artifacts.assignments =
        reuse_assignments
            ? *reuse_assignments
            : enumerate_assignments(net, partition, demand.rate,
                                    options.assignments);
    span.arg("count", static_cast<std::int64_t>(artifacts.assignments.size()));
  }
  artifacts.mode_used = artifacts.assignments.mode;
  artifacts.telemetry.counter(telemetry_keys::kAssignments) =
      static_cast<std::uint64_t>(artifacts.assignments.size());
  if (artifacts.assignments.size() == 0) return artifacts;

  try {
    // Side arrays (paper §III-C): the exponential, probability-free part.
    // Both side problems are zero-copy views pinning one shared snapshot
    // — or, per side, an adopted salvage (which pins the snapshot it was
    // originally built against; the arrays are identical either way
    // because the salvage contract guarantees the side's inputs are
    // unchanged). A salvaged side keeps its original counters so the
    // telemetry still accounts for the sweep that actually built it.
    if (!snapshot) snapshot = net.compile();
    Telemetry side_tel_s;
    Telemetry side_tel_t;
    if (reuse_s) {
      artifacts.side_s = std::move(reuse_s->side);
      artifacts.array_s = std::move(reuse_s->array);
      side_tel_s = std::move(reuse_s->telemetry);
    } else {
      artifacts.side_s =
          make_side_problem(snapshot, demand, partition, /*source_side=*/true);
      SideArrayStats stats_s;
      TraceSpan span("side_array_s", "phase");
      artifacts.array_s =
          build_side_array_slab(artifacts.side_s, artifacts.assignments,
                                demand.rate, options.side, &stats_s, ctx);
      side_tel_s = std::move(stats_s.telemetry);
    }
    if (reuse_t) {
      artifacts.side_t = std::move(reuse_t->side);
      artifacts.array_t = std::move(reuse_t->array);
      side_tel_t = std::move(reuse_t->telemetry);
    } else {
      artifacts.side_t = make_side_problem(std::move(snapshot), demand,
                                           partition, /*source_side=*/false);
      SideArrayStats stats_t;
      TraceSpan span("side_array_t", "phase");
      artifacts.array_t =
          build_side_array_slab(artifacts.side_t, artifacts.assignments,
                                demand.rate, options.side, &stats_t, ctx);
      side_tel_t = std::move(stats_t.telemetry);
    }
    artifacts.telemetry.merge(side_tel_s);
    artifacts.telemetry.merge(side_tel_t);
    artifacts.telemetry.child("side_s").merge(side_tel_s);
    artifacts.telemetry.child("side_t").merge(side_tel_t);
    artifacts.telemetry.counter(telemetry_keys::kConfigurations) =
        artifacts.array_s.size() + artifacts.array_t.size();
  } catch (const ExecInterrupted& stop) {
    artifacts.status = stop.status;
    artifacts.array_s.clear();
    artifacts.array_t.clear();
  }
  return artifacts;
}

BottleneckProbabilities gather_bottleneck_probabilities(
    const FlowNetwork& net, const BottleneckPartition& partition,
    const BottleneckArtifacts& artifacts) {
  BottleneckProbabilities probs;
  const auto gather_side = [&](const SideProblem& side,
                               std::vector<double>& out) {
    // Read the LIVE network, not the side's pinned snapshot: cached views
    // stay correct across probability edits because only this gather (and
    // the crossing list below) feeds probabilities into the accumulation.
    out.reserve(side.view.edge_map().size());
    for (EdgeId original : side.view.edge_map()) {
      out.push_back(net.edge(original).failure_prob);
    }
  };
  gather_side(artifacts.side_s, probs.side_s);
  gather_side(artifacts.side_t, probs.side_t);
  probs.crossing.reserve(partition.crossing_edges.size());
  for (EdgeId id : partition.crossing_edges) {
    probs.crossing.push_back(net.edge(id).failure_prob);
  }
  return probs;
}

BottleneckResult accumulate_bottleneck(const BottleneckArtifacts& artifacts,
                                       const BottleneckProbabilities& probs,
                                       AccumulationStrategy accumulation,
                                       const ExecContext* ctx) {
  if (!artifacts.usable()) {
    throw std::invalid_argument("cannot accumulate interrupted artifacts");
  }

  BottleneckResult result;
  result.partition_stats = artifacts.partition_stats;
  result.mode_used = artifacts.mode_used;
  result.num_assignments = artifacts.assignments.size();
  result.telemetry = artifacts.telemetry;
  if (artifacts.assignments.size() == 0) return result;

  try {
    TraceSpan span("accumulate", "phase");
    span.arg("crossing", static_cast<std::uint64_t>(probs.crossing.size()));
    const MaskDistribution dist_s =
        bucket_side_array(artifacts.side_s, artifacts.array_s, probs.side_s);
    const MaskDistribution dist_t =
        bucket_side_array(artifacts.side_t, artifacts.array_t, probs.side_t);

    // Accumulation over bottleneck-link configurations (Equations 2-3).
    const ConfigProbTable bottleneck_probs(probs.crossing);
    const Mask bottleneck_total = Mask{1}
                                  << static_cast<int>(probs.crossing.size());
    KahanSum total;
    for (Mask alive = 0; alive < bottleneck_total; ++alive) {
      // Each term costs an inclusion-exclusion pass, so poll every
      // iteration rather than every kPollStride.
      if (ctx) ctx->check();
      const Mask allowed = artifacts.assignments.supported_by(alive);
      if (allowed == 0) continue;
      const double r_alive =
          joint_success_probability(dist_s, dist_t, allowed, accumulation);
      total.add(bottleneck_probs.prob(alive) * r_alive);
    }
    result.reliability = total.value();
  } catch (const ExecInterrupted& stop) {
    // Partial decomposition work cannot be turned into a bound here;
    // callers degrade to reliability_bounds on a non-exact status.
    result.status = stop.status;
    result.reliability = 0.0;
  }
  return result;
}

BottleneckResult reliability_bottleneck(
    const FlowNetwork& net, const FlowDemand& demand,
    const BottleneckPartition& partition, const BottleneckOptions& options,
    const ExecContext* ctx, std::shared_ptr<const CompiledNetwork> snapshot) {
  const BottleneckArtifacts artifacts =
      build_bottleneck_artifacts(net, demand, partition, options, ctx,
                                 nullptr, std::move(snapshot));
  if (!artifacts.usable()) {
    BottleneckResult result;
    result.partition_stats = artifacts.partition_stats;
    result.mode_used = artifacts.mode_used;
    result.num_assignments = artifacts.assignments.size();
    result.telemetry = artifacts.telemetry;
    result.status = artifacts.status;
    return result;
  }
  return accumulate_bottleneck(
      artifacts, gather_bottleneck_probabilities(net, partition, artifacts),
      options.accumulation, ctx);
}

ThroughputDistribution throughput_bottleneck(
    const FlowNetwork& net, const FlowDemand& demand,
    const BottleneckPartition& partition, const BottleneckOptions& options) {
  net.check_demand(demand);
  const std::shared_ptr<const CompiledNetwork> snapshot = net.compile();
  ThroughputDistribution dist;
  dist.at_least.reserve(static_cast<std::size_t>(demand.rate));
  for (Capacity v = 1; v <= demand.rate; ++v) {
    dist.at_least.push_back(
        reliability_bottleneck(net, FlowDemand{demand.source, demand.sink, v},
                               partition, options, nullptr, snapshot)
            .reliability);
  }
  return dist;
}

double reliability_bridge_formula(const FlowNetwork& net,
                                  const FlowDemand& demand, EdgeId bridge) {
  net.check_demand(demand);
  if (!net.valid_edge(bridge)) throw std::invalid_argument("bad bridge id");
  const Edge& e = net.edge(bridge);
  if (e.capacity < demand.rate) return 0.0;  // paper: trivially zero

  auto partition =
      partition_from_cut_edges(net, demand.source, demand.sink, {bridge});
  if (!partition || partition->k() != 1) {
    throw std::invalid_argument("edge is not a bridge separating s and t");
  }

  // Orient the bridge endpoints: x on the source side, y on the sink side.
  const NodeId x =
      partition->side_s[static_cast<std::size_t>(e.u)] ? e.u : e.v;
  const NodeId y = e.other(x);

  const Subgraph g_s = induced_subgraph(net, partition->side_s);
  std::vector<bool> sink_side(partition->side_s);
  sink_side.flip();
  const Subgraph g_t = induced_subgraph(net, sink_side);

  auto side_reliability = [&](const Subgraph& sub, NodeId from, NodeId to) {
    const NodeId sub_from = sub.node_to_sub[static_cast<std::size_t>(from)];
    const NodeId sub_to = sub.node_to_sub[static_cast<std::size_t>(to)];
    if (sub_from == sub_to) return 1.0;  // the demand endpoint IS the
                                         // bridge endpoint: nothing to route
    return reliability_naive(sub.net,
                             FlowDemand{sub_from, sub_to, demand.rate})
        .reliability;
  };
  const double r_s = side_reliability(g_s, demand.source, x);
  const double r_t = side_reliability(g_t, y, demand.sink);
  return r_s * (1.0 - e.failure_prob) * r_t;  // Equation (1)
}

}  // namespace streamrel
