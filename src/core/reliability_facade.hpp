#pragma once
// One-call public API: picks a bottleneck partition automatically and
// falls back to the exact baselines when the graph has no exploitable
// bottleneck.

#include <optional>

#include "core/bottleneck_algorithm.hpp"
#include "cuts/partition_search.hpp"
#include "reliability/factoring.hpp"
#include "reliability/frontier.hpp"
#include "reliability/naive.hpp"

namespace streamrel {

enum class Method {
  kAuto,        ///< bottleneck > frontier (rate-1) > naive > factoring
  kBottleneck,  ///< bottleneck decomposition (throws if no partition found)
  kNaive,
  kFactoring,
  kFrontier,    ///< frontier connectivity DP (rate-1, undirected only)
};

struct SolveOptions {
  Method method = Method::kAuto;
  /// kAuto preprocessing: apply series/parallel/prune reductions first
  /// for rate-1 undirected demands (exact; often collapses sparse
  /// overlays outright).
  bool use_reductions = true;
  PartitionSearchOptions partition_search{};
  BottleneckOptions bottleneck{};
  NaiveOptions naive{};
  FactoringOptions factoring{};
  FrontierOptions frontier{};
};

struct SolveReport {
  ReliabilityResult result;
  Method method_used = Method::kAuto;
  /// The partition the decomposition ran on, when it did.
  std::optional<PartitionChoice> partition;
  /// Links removed by the rate-1 reduction preprocessing (0 = none ran).
  int links_reduced = 0;
};

/// Exact reliability of `net` with respect to `demand`.
SolveReport compute_reliability(const FlowNetwork& net,
                                const FlowDemand& demand,
                                const SolveOptions& options = {});

}  // namespace streamrel
