#include "streamrel/cuts/cut_enumeration.hpp"

#include <stdexcept>

#include "streamrel/cuts/bottleneck.hpp"
#include "streamrel/maxflow/maxflow.hpp"
#include "streamrel/util/bitops.hpp"

namespace streamrel {

std::vector<std::vector<EdgeId>> enumerate_minimal_cutsets(
    const FlowNetwork& net, NodeId s, NodeId t,
    const CutEnumerationOptions& options) {
  if (!net.valid_node(s) || !net.valid_node(t) || s == t) {
    throw std::invalid_argument("bad endpoints");
  }
  if (net.num_edges() > kMaxMaskBits) {
    throw std::invalid_argument(
        "cut enumeration requires <= 63 edges (mask-based search)");
  }
  std::vector<std::vector<EdgeId>> out;
  // No subset smaller than the minimum cut cardinality can disconnect.
  const auto lower =
      static_cast<int>(min_cardinality_cut(net, s, t).value);
  if (lower == 0) return out;  // already disconnected: no cut is minimal

  std::uint64_t examined = 0;
  for (int k = lower; k <= options.max_size; ++k) {
    for (CombinationRange combos(net.num_edges(), k); !combos.done();
         combos.next()) {
      if (++examined > options.max_subsets_examined ||
          out.size() >= options.max_results) {
        return out;
      }
      const std::vector<int> ids = bits_of(combos.value());
      std::vector<EdgeId> cut(ids.begin(), ids.end());
      if (is_minimal_cutset(net, s, t, cut)) out.push_back(std::move(cut));
    }
  }
  return out;
}

}  // namespace streamrel
