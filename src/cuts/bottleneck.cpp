#include "streamrel/cuts/bottleneck.hpp"

#include <algorithm>
#include <stdexcept>

#include "streamrel/graph/graph_algos.hpp"

namespace streamrel {

namespace {

std::vector<EdgeId> crossing_of(const FlowNetwork& net,
                                const std::vector<bool>& side_s) {
  std::vector<EdgeId> crossing;
  for (EdgeId id = 0; id < net.num_edges(); ++id) {
    const Edge& e = net.edge(id);
    if (side_s[static_cast<std::size_t>(e.u)] !=
        side_s[static_cast<std::size_t>(e.v)]) {
      crossing.push_back(id);
    }
  }
  return crossing;
}

}  // namespace

BottleneckPartition partition_from_sides(const FlowNetwork& net, NodeId s,
                                         NodeId t,
                                         std::vector<bool> side_s) {
  if (side_s.size() != static_cast<std::size_t>(net.num_nodes())) {
    throw std::invalid_argument("side vector size mismatch");
  }
  if (!net.valid_node(s) || !net.valid_node(t)) {
    throw std::invalid_argument("bad demand endpoints");
  }
  if (!side_s[static_cast<std::size_t>(s)]) {
    throw std::invalid_argument("source must lie on the S side");
  }
  if (side_s[static_cast<std::size_t>(t)]) {
    throw std::invalid_argument("sink must lie on the T side");
  }
  BottleneckPartition p;
  p.crossing_edges = crossing_of(net, side_s);
  p.side_s = std::move(side_s);
  return p;
}

std::optional<BottleneckPartition> partition_from_cut_edges(
    const FlowNetwork& net, NodeId s, NodeId t,
    const std::vector<EdgeId>& cut_edges) {
  if (!net.valid_node(s) || !net.valid_node(t) || s == t) {
    throw std::invalid_argument("bad demand endpoints");
  }
  if (!removal_disconnects(net, s, t, cut_edges)) return std::nullopt;

  // Components of G - cut (direction-insensitive so the side sets are
  // well-defined for mixed graphs too).
  std::vector<bool> gone(static_cast<std::size_t>(net.num_edges()), false);
  for (EdgeId id : cut_edges) gone[static_cast<std::size_t>(id)] = true;
  FlowNetwork reduced(net.num_nodes());
  for (EdgeId id = 0; id < net.num_edges(); ++id) {
    if (gone[static_cast<std::size_t>(id)]) continue;
    const Edge& e = net.edge(id);
    reduced.add_edge(e.u, e.v, e.capacity, e.failure_prob, e.kind);
  }
  const Components comps = connected_components(reduced);
  const int comp_s = comps.id[static_cast<std::size_t>(s)];
  const int comp_t = comps.id[static_cast<std::size_t>(t)];
  if (comp_s == comp_t) return std::nullopt;  // directed-only separation:
  // s cannot reach t but they share an undirected component; no node
  // bipartition reproduces this cut, so report failure.

  // Count internal links per component to drive the balance heuristic.
  std::vector<int> comp_edges(static_cast<std::size_t>(comps.count), 0);
  for (EdgeId id = 0; id < reduced.num_edges(); ++id) {
    comp_edges[static_cast<std::size_t>(
        comps.id[static_cast<std::size_t>(reduced.edge(id).u)])]++;
  }

  std::vector<bool> side(static_cast<std::size_t>(net.num_nodes()), false);
  int load_s = comp_edges[static_cast<std::size_t>(comp_s)];
  int load_t = comp_edges[static_cast<std::size_t>(comp_t)];
  std::vector<int> comp_side(static_cast<std::size_t>(comps.count), -1);
  comp_side[static_cast<std::size_t>(comp_s)] = 1;
  comp_side[static_cast<std::size_t>(comp_t)] = 0;
  for (int c = 0; c < comps.count; ++c) {
    if (comp_side[static_cast<std::size_t>(c)] != -1) continue;
    if (load_s <= load_t) {
      comp_side[static_cast<std::size_t>(c)] = 1;
      load_s += comp_edges[static_cast<std::size_t>(c)];
    } else {
      comp_side[static_cast<std::size_t>(c)] = 0;
      load_t += comp_edges[static_cast<std::size_t>(c)];
    }
  }
  for (NodeId n = 0; n < net.num_nodes(); ++n) {
    side[static_cast<std::size_t>(n)] =
        comp_side[static_cast<std::size_t>(
            comps.id[static_cast<std::size_t>(n)])] == 1;
  }
  return partition_from_sides(net, s, t, std::move(side));
}

PartitionStats analyze_partition(const FlowNetwork& net, NodeId s, NodeId t,
                                 const BottleneckPartition& partition) {
  PartitionStats stats;
  stats.k = partition.k();
  for (EdgeId id = 0; id < net.num_edges(); ++id) {
    const Edge& e = net.edge(id);
    const bool su = partition.side_s[static_cast<std::size_t>(e.u)];
    const bool sv = partition.side_s[static_cast<std::size_t>(e.v)];
    if (su && sv) {
      stats.edges_s++;
    } else if (!su && !sv) {
      stats.edges_t++;
    }
  }
  for (EdgeId id : partition.crossing_edges) {
    stats.crossing_capacity += net.edge(id).capacity;
  }
  if (net.num_edges() > 0) {
    stats.alpha = static_cast<double>(std::max(stats.edges_s, stats.edges_t)) /
                  static_cast<double>(net.num_edges());
  }
  stats.minimal = is_minimal_cutset(net, s, t, partition.crossing_edges);

  // "Exactly two components" in the paper's sense: each side is internally
  // connected (direction-insensitive).
  std::vector<bool> gone(static_cast<std::size_t>(net.num_edges()), false);
  for (EdgeId id : partition.crossing_edges) {
    gone[static_cast<std::size_t>(id)] = true;
  }
  FlowNetwork reduced(net.num_nodes());
  for (EdgeId id = 0; id < net.num_edges(); ++id) {
    if (gone[static_cast<std::size_t>(id)]) continue;
    const Edge& e = net.edge(id);
    reduced.add_edge(e.u, e.v, e.capacity, e.failure_prob, e.kind);
  }
  stats.two_components = connected_components(reduced).count == 2;
  return stats;
}

bool is_minimal_cutset(const FlowNetwork& net, NodeId s, NodeId t,
                       const std::vector<EdgeId>& cut) {
  if (!removal_disconnects(net, s, t, cut)) return false;
  // Dropping any single edge from the cut must reconnect s and t;
  // for down-closed "disconnects" this is equivalent to full minimality.
  for (std::size_t skip = 0; skip < cut.size(); ++skip) {
    std::vector<EdgeId> sub;
    sub.reserve(cut.size() - 1);
    for (std::size_t i = 0; i < cut.size(); ++i) {
      if (i != skip) sub.push_back(cut[i]);
    }
    if (removal_disconnects(net, s, t, sub)) return false;
  }
  return true;
}

}  // namespace streamrel
