#include "streamrel/cuts/partition_search.hpp"

#include <algorithm>

#include "streamrel/graph/graph_algos.hpp"
#include "streamrel/maxflow/maxflow.hpp"
#include "streamrel/util/trace.hpp"

namespace streamrel {

namespace {

// Lower (max side, k) is better: the side term drives the 2^alpha|E|
// factor, the k term the assignment count.
bool better(const PartitionStats& a, const PartitionStats& b) {
  const int side_a = std::max(a.edges_s, a.edges_t);
  const int side_b = std::max(b.edges_s, b.edges_t);
  if (side_a != side_b) return side_a < side_b;
  return a.k < b.k;
}

}  // namespace

std::vector<PartitionChoice> find_candidate_partitions(
    const FlowNetwork& net, NodeId s, NodeId t,
    const PartitionSearchOptions& options, const ExecContext* ctx) {
  TraceSpan span("partition_search", "search");
  std::vector<PartitionChoice> candidates;

  auto consider = [&](const std::vector<EdgeId>& cut) {
    if (ctx) ctx->check();
    auto part = partition_from_cut_edges(net, s, t, cut);
    if (!part) return;
    PartitionStats stats = analyze_partition(net, s, t, *part);
    if (stats.k > options.max_k) return;
    if (std::max(stats.edges_s, stats.edges_t) > options.max_side_edges) {
      return;
    }
    for (const PartitionChoice& existing : candidates) {
      if (existing.partition.side_s == part->side_s) return;  // duplicate
    }
    candidates.push_back(PartitionChoice{std::move(*part), stats});
  };

  // Bridges that separate s from t are ideal k = 1 bottlenecks.
  for (EdgeId bridge : find_bridges(net)) {
    consider({bridge});
  }

  // The min-cardinality cut works on networks of any size.
  const MinCut cardinality_cut = min_cardinality_cut(net, s, t);
  if (cardinality_cut.value > 0) consider(cardinality_cut.edges);

  // Exhaustive minimal-cut-set enumeration (mask-sized networks only).
  if (net.fits_mask()) {
    CutEnumerationOptions enum_opts = options.enumeration;
    enum_opts.max_size = std::min(enum_opts.max_size, options.max_k);
    for (const auto& cut : enumerate_minimal_cutsets(net, s, t, enum_opts)) {
      consider(cut);
    }
  }

  std::sort(candidates.begin(), candidates.end(),
            [](const PartitionChoice& a, const PartitionChoice& b) {
              return better(a.stats, b.stats);
            });
  span.arg("candidates", static_cast<std::uint64_t>(candidates.size()));
  return candidates;
}

std::optional<PartitionChoice> find_best_partition(
    const FlowNetwork& net, NodeId s, NodeId t,
    const PartitionSearchOptions& options, const ExecContext* ctx) {
  auto candidates = find_candidate_partitions(net, s, t, options, ctx);
  if (candidates.empty()) return std::nullopt;
  return std::move(candidates.front());
}

}  // namespace streamrel
