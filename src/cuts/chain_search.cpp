#include "streamrel/cuts/chain_search.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "streamrel/util/trace.hpp"

namespace streamrel {

std::optional<ChainPlan> find_chain_plan(const FlowNetwork& net, NodeId s,
                                         NodeId t,
                                         const ChainSearchOptions& options,
                                         const ExecContext* ctx) {
  if (!net.valid_node(s) || !net.valid_node(t) || s == t) {
    throw std::invalid_argument("bad endpoints");
  }
  TraceSpan span("chain_search", "search");

  // BFS order from s (direction-insensitive); unreached nodes appended.
  std::vector<int> position(static_cast<std::size_t>(net.num_nodes()), -1);
  std::vector<NodeId> order;
  order.reserve(static_cast<std::size_t>(net.num_nodes()));
  std::vector<NodeId> queue{s};
  position[static_cast<std::size_t>(s)] = 0;
  order.push_back(s);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    for (EdgeId id : net.incident_edges(queue[head])) {
      const NodeId next = net.edge(id).other(queue[head]);
      if (position[static_cast<std::size_t>(next)] == -1) {
        position[static_cast<std::size_t>(next)] =
            static_cast<int>(order.size());
        order.push_back(next);
        queue.push_back(next);
      }
    }
  }
  for (NodeId n = 0; n < net.num_nodes(); ++n) {
    if (position[static_cast<std::size_t>(n)] == -1) {
      position[static_cast<std::size_t>(n)] = static_cast<int>(order.size());
      order.push_back(n);
    }
  }
  const int pos_t = position[static_cast<std::size_t>(t)];
  if (pos_t == static_cast<int>(order.size())) return std::nullopt;

  // An edge crosses prefix boundary b iff min_pos < b <= max_pos; sweep b
  // and keep the current crossing set.
  std::vector<std::pair<int, int>> spans;  // (min_pos, max_pos) per edge
  spans.reserve(static_cast<std::size_t>(net.num_edges()));
  for (const Edge& e : net.edges()) {
    const int pu = position[static_cast<std::size_t>(e.u)];
    const int pv = position[static_cast<std::size_t>(e.v)];
    spans.emplace_back(std::min(pu, pv), std::max(pu, pv));
  }

  // Greedy boundary selection: accept a prefix boundary when its crossing
  // set is small and disjoint from the previously accepted one (edges
  // spanning two accepted boundaries would skip a layer).
  std::vector<int> boundaries;
  std::vector<std::vector<EdgeId>> cuts;
  std::set<EdgeId> last_cut;
  for (int b = 1; b <= pos_t; ++b) {
    if (ctx && (static_cast<std::uint64_t>(b) &
                (ExecContext::kPollStride - 1)) == 0) {
      ctx->check();
    }
    std::vector<EdgeId> crossing;
    bool disjoint = true;
    for (EdgeId id = 0; id < net.num_edges(); ++id) {
      if (spans[static_cast<std::size_t>(id)].first < b &&
          b <= spans[static_cast<std::size_t>(id)].second) {
        crossing.push_back(id);
        disjoint &= last_cut.count(id) == 0;
      }
    }
    if (crossing.empty()) continue;  // disconnected prefix: not a cut
    if (static_cast<int>(crossing.size()) > options.max_cut_size) continue;
    if (!disjoint) continue;
    boundaries.push_back(b);
    last_cut.clear();
    last_cut.insert(crossing.begin(), crossing.end());
    cuts.push_back(std::move(crossing));
  }

  ChainPlan plan;
  plan.num_layers = static_cast<int>(boundaries.size()) + 1;
  if (plan.num_layers < options.min_layers) return std::nullopt;
  plan.cuts = std::move(cuts);
  plan.layer.resize(static_cast<std::size_t>(net.num_nodes()));
  for (NodeId n = 0; n < net.num_nodes(); ++n) {
    const int pos = position[static_cast<std::size_t>(n)];
    plan.layer[static_cast<std::size_t>(n)] = static_cast<int>(
        std::upper_bound(boundaries.begin(), boundaries.end(), pos) -
        boundaries.begin());
  }
  // The sink must land in the last layer (true by construction since
  // every boundary is <= pos_t, and boundaries are distinct... the final
  // boundary could equal pos_t, putting t past it). Guard anyway.
  if (plan.layer[static_cast<std::size_t>(t)] != plan.num_layers - 1) {
    return std::nullopt;
  }

  // Per-layer edge budget.
  std::vector<int> layer_edges(static_cast<std::size_t>(plan.num_layers), 0);
  for (const Edge& e : net.edges()) {
    const int lu = plan.layer[static_cast<std::size_t>(e.u)];
    const int lv = plan.layer[static_cast<std::size_t>(e.v)];
    if (lu == lv) layer_edges[static_cast<std::size_t>(lu)]++;
  }
  plan.max_layer_edges =
      *std::max_element(layer_edges.begin(), layer_edges.end());
  if (plan.max_layer_edges > options.max_layer_edges) return std::nullopt;
  return plan;
}

}  // namespace streamrel
