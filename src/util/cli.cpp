#include "streamrel/util/cli.hpp"

#include <stdexcept>

namespace streamrel {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "";  // bare boolean flag
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  return flags_.count(name) != 0;
}

std::string CliArgs::get(const std::string& name,
                         const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name,
                              std::int64_t fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return fallback;
  return std::stoll(it->second);
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return fallback;
  return std::stod(it->second);
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  if (it->second.empty() || it->second == "1" || it->second == "true" ||
      it->second == "yes" || it->second == "on") {
    return true;
  }
  if (it->second == "0" || it->second == "false" || it->second == "no" ||
      it->second == "off") {
    return false;
  }
  throw std::invalid_argument("bad boolean flag --" + name);
}

}  // namespace streamrel
