#include "streamrel/util/bitops.hpp"

namespace streamrel {

std::vector<int> bits_of(Mask m) {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(popcount(m)));
  while (m != 0) {
    out.push_back(lowest_bit(m));
    m &= m - 1;
  }
  return out;
}

Mask mask_of(const std::vector<int>& indices) {
  Mask m = 0;
  for (int i : indices) m |= bit(i);
  return m;
}

CombinationRange::CombinationRange(int n, int k) noexcept
    : limit_(Mask{1} << n), current_(0), done_(false) {
  if (k < 0 || k > n) {
    done_ = true;
    return;
  }
  current_ = full_mask(k);
  if (current_ >= limit_ && k > 0) done_ = true;
}

void CombinationRange::next() noexcept {
  if (current_ == 0) {  // the single k == 0 subset has been yielded
    done_ = true;
    return;
  }
  // Gosper's hack: next bigger integer with the same popcount.
  const Mask c = current_ & (~current_ + 1);
  const Mask r = current_ + c;
  current_ = (((r ^ current_) >> 2) / c) | r;
  if (current_ >= limit_) done_ = true;
}

}  // namespace streamrel
