#include "streamrel/util/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace streamrel {

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
  return buf;
}

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("table needs headers");
}

TextTable& TextTable::new_row() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

TextTable& TextTable::add_cell(std::string value) {
  if (rows_.empty()) new_row();
  if (rows_.back().size() >= headers_.size()) {
    throw std::logic_error("row has more cells than headers");
  }
  rows_.back().push_back(std::move(value));
  return *this;
}

TextTable& TextTable::add_cell(const char* value) {
  return add_cell(std::string(value));
}
TextTable& TextTable::add_cell(double value, int precision) {
  return add_cell(format_double(value, precision));
}
TextTable& TextTable::add_cell(std::int64_t value) {
  return add_cell(std::to_string(value));
}
TextTable& TextTable::add_cell(std::uint64_t value) {
  return add_cell(std::to_string(value));
}
TextTable& TextTable::add_cell(int value) {
  return add_cell(std::to_string(value));
}

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
          c == '-' || c == '+' || c == 'e' || c == 'E' || c == 'x' ||
          c == 'n' || c == 'a' || c == 'i' || c == 'f')) {
      return false;
    }
  }
  return true;
}

}  // namespace

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string cell = c < cells.size() ? cells[c] : std::string();
      const std::size_t pad = widths[c] - cell.size();
      if (c > 0) os << "  ";
      if (looks_numeric(cell)) {
        os << std::string(pad, ' ') << cell;
      } else {
        os << cell << std::string(pad, ' ');
      }
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c > 0 ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string TextTable::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

void TextTable::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace streamrel
