#include "streamrel/util/binio.hpp"

#include <array>

namespace streamrel {

namespace {

std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_crc32_table();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void write_section(BinaryWriter& out, std::uint32_t tag,
                   std::string_view payload) {
  out.u32(tag);
  out.u64(payload.size());
  out.u32(crc32(payload.data(), payload.size()));
  out.raw(payload.data(), payload.size());
}

std::string_view read_section(BinaryReader& in, std::uint32_t expected_tag) {
  const std::uint32_t tag = in.u32();
  if (tag != expected_tag) {
    throw BinReadError("unexpected section tag " + std::to_string(tag) +
                       " (wanted " + std::to_string(expected_tag) + ")");
  }
  const std::uint64_t len = in.u64();
  const std::uint32_t want_crc = in.u32();
  if (len > in.remaining()) {
    throw BinReadError("section length exceeds remaining input");
  }
  const std::string_view payload = in.view(static_cast<std::size_t>(len));
  const std::uint32_t got_crc = crc32(payload.data(), payload.size());
  if (got_crc != want_crc) {
    throw BinReadError("section checksum mismatch for tag " +
                       std::to_string(expected_tag));
  }
  return payload;
}

void write_file_header(BinaryWriter& out, const char (&magic)[9],
                       std::uint32_t version) {
  out.raw(magic, 8);
  out.u32(version);
}

std::uint32_t read_file_header(BinaryReader& in, const char (&magic)[9],
                               std::uint32_t max_version) {
  const std::string_view got = in.view(8);
  if (got != std::string_view(magic, 8)) {
    throw BinReadError("bad file magic");
  }
  const std::uint32_t version = in.u32();
  if (version == 0 || version > max_version) {
    throw BinReadError("unsupported format version " +
                       std::to_string(version));
  }
  return version;
}

}  // namespace streamrel
