#include "streamrel/util/exec_context.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace streamrel {

std::string_view to_string(SolveStatus status) noexcept {
  switch (status) {
    case SolveStatus::kExact:
      return "exact";
    case SolveStatus::kDeadlineExpired:
      return "deadline_expired";
    case SolveStatus::kBudgetExhausted:
      return "budget_exhausted";
    case SolveStatus::kCancelled:
      return "cancelled";
    case SolveStatus::kMaskOverflow:
      return "mask_overflow";
  }
  return "unknown";
}

int ExecContext::resolved_threads() const noexcept {
#ifdef _OPENMP
  const int hw = omp_get_max_threads();
#else
  const int hw = 1;
#endif
  if (max_threads <= 0) return hw;
  return max_threads < hw ? max_threads : hw;
}

int exec_resolved_threads(const ExecContext* ctx) noexcept {
  if (ctx) return ctx->resolved_threads();
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

}  // namespace streamrel
