#include "streamrel/util/json.hpp"

#include <cctype>
#include <charconv>
#include <stdexcept>

namespace streamrel {

namespace {

[[noreturn]] void fail(std::size_t offset, const std::string& what) {
  throw std::invalid_argument("JSON parse error at byte " +
                              std::to_string(offset) + ": " + what);
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail(pos_, "trailing content after value");
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(pos_, std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        fail(pos_, "bad literal");
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        fail(pos_, "bad literal");
      case 'n':
        if (consume_literal("null")) return JsonValue();
        fail(pos_, "bad literal");
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue::Object members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(members));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue(std::move(members));
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue::Array elements;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(elements));
    }
    while (true) {
      elements.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue(std::move(elements));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail(pos_, "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail(pos_, "unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail(pos_, "truncated \\u escape");
          unsigned int code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned int>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned int>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned int>(h - 'A' + 10);
            } else {
              fail(pos_ - 1, "bad hex digit in \\u escape");
            }
          }
          if (code > 0x7F) fail(pos_ - 4, "non-ASCII \\u escape unsupported");
          out.push_back(static_cast<char>(code));
          break;
        }
        default: fail(pos_ - 1, "unknown escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double value = 0.0;
    const auto [end, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (ec != std::errc{} || end != text_.data() + pos_ || pos_ == start) {
      fail(start, "malformed number");
    }
    return JsonValue(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

[[noreturn]] void kind_mismatch(const char* wanted) {
  throw std::invalid_argument(std::string("JSON value is not a ") + wanted);
}

}  // namespace

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) kind_mismatch("bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::kNumber) kind_mismatch("number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) kind_mismatch("string");
  return string_;
}

const JsonValue::Array& JsonValue::as_array() const {
  if (kind_ != Kind::kArray) kind_mismatch("array");
  return array_;
}

const JsonValue::Object& JsonValue::as_object() const {
  if (kind_ != Kind::kObject) kind_mismatch("object");
  return object_;
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace streamrel
