#include "streamrel/util/telemetry.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

namespace streamrel {

std::size_t LatencyHistogram::bucket_index(double ms) noexcept {
  const double us = ms * 1000.0;
  if (!(us > 0.0) || !std::isfinite(us)) return 0;  // also catches NaN
  const double idx = std::floor(std::log2(us) * 4.0) + 1.0;
  if (idx < 1.0) return 1;
  if (idx >= static_cast<double>(kBuckets)) return kBuckets - 1;
  return static_cast<std::size_t>(idx);
}

double LatencyHistogram::bucket_value_ms(std::size_t index) noexcept {
  if (index == 0) return 0.0;
  const double us =
      std::exp2(static_cast<double>(index - 1) / 4.0);  // lower bound
  return us / 1000.0;
}

void LatencyHistogram::record_ms(double ms) noexcept {
  if (!std::isfinite(ms)) ms = 0.0;  // non-finite samples count as 0
  buckets_[bucket_index(ms)] += 1;
  sum_ms_ += ms;
  if (count_ == 0) {
    min_ms_ = max_ms_ = ms;
  } else {
    min_ms_ = std::min(min_ms_, ms);
    max_ms_ = std::max(max_ms_, ms);
  }
  ++count_;
}

void LatencyHistogram::merge(const LatencyHistogram& other) noexcept {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  sum_ms_ += other.sum_ms_;
  if (count_ == 0) {
    min_ms_ = other.min_ms_;
    max_ms_ = other.max_ms_;
  } else {
    min_ms_ = std::min(min_ms_, other.min_ms_);
    max_ms_ = std::max(max_ms_, other.max_ms_);
  }
  count_ += other.count_;
}

double LatencyHistogram::percentile_ms(double p) const noexcept {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Nearest rank: the smallest sample index (1-based) covering p percent.
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(p / 100.0 *
                                              static_cast<double>(count_))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cumulative += buckets_[i];
    if (cumulative >= rank) return bucket_value_ms(i);
  }
  return bucket_value_ms(kBuckets - 1);
}

Telemetry::Counter& Telemetry::counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.emplace(std::string(name), Counter{0}).first->second;
}

Telemetry::Counter Telemetry::counter_or(std::string_view name,
                                         Counter fallback) const {
  const auto it = counters_.find(name);
  return it != counters_.end() ? it->second : fallback;
}

double& Telemetry::timer_ms(std::string_view name) {
  const auto it = timers_.find(name);
  if (it != timers_.end()) return it->second;
  return timers_.emplace(std::string(name), 0.0).first->second;
}

double Telemetry::timer_ms_or(std::string_view name, double fallback) const {
  const auto it = timers_.find(name);
  return it != timers_.end() ? it->second : fallback;
}

LatencyHistogram& Telemetry::histogram(std::string_view name) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(std::string(name), LatencyHistogram{})
      .first->second;
}

const LatencyHistogram* Telemetry::find_histogram(std::string_view name) const {
  const auto it = histograms_.find(name);
  return it != histograms_.end() ? &it->second : nullptr;
}

Telemetry& Telemetry::child(std::string_view name) {
  const auto it = children_.find(name);
  if (it != children_.end()) return it->second;
  return children_.emplace(std::string(name), Telemetry{}).first->second;
}

const Telemetry* Telemetry::find_child(std::string_view name) const {
  const auto it = children_.find(name);
  return it != children_.end() ? &it->second : nullptr;
}

void Telemetry::merge(const Telemetry& other) {
  for (const auto& [name, value] : other.counters_) counters_[name] += value;
  for (const auto& [name, value] : other.timers_) timers_[name] += value;
  for (const auto& [name, hist] : other.histograms_) {
    histograms_[name].merge(hist);
  }
  for (const auto& [name, sub] : other.children_) children_[name].merge(sub);
}

void Telemetry::merge_parallel(const Telemetry& other) {
  for (const auto& [name, value] : other.counters_) counters_[name] += value;
  for (const auto& [name, value] : other.timers_) {
    double& slot = timers_[name];
    slot = std::max(slot, value);
  }
  for (const auto& [name, hist] : other.histograms_) {
    histograms_[name].merge(hist);
  }
  for (const auto& [name, sub] : other.children_) {
    children_[name].merge_parallel(sub);
  }
}

bool Telemetry::counters_equal(const Telemetry& other) const {
  if (counters_ != other.counters_) return false;
  if (children_.size() != other.children_.size()) return false;
  auto it = children_.begin();
  auto jt = other.children_.begin();
  for (; it != children_.end(); ++it, ++jt) {
    if (it->first != jt->first) return false;
    if (!it->second.counters_equal(jt->second)) return false;
  }
  return true;
}

namespace {

void append_quoted(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// Timers are wall-clock measurements; a non-finite value (overflowed
/// arithmetic upstream, a sentinel) must not corrupt the document, so it
/// renders as null — still valid JSON for util/json and every consumer.
void append_number(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  out += buf;
}

}  // namespace

void Telemetry::append_json(std::string& out) const {
  out += '{';
  bool first = true;
  const auto sep = [&] {
    if (!first) out += ", ";
    first = false;
  };
  for (const auto& [name, value] : counters_) {
    sep();
    append_quoted(out, name);
    out += ": ";
    out += std::to_string(value);
  }
  for (const auto& [name, value] : timers_) {
    sep();
    append_quoted(out, name + "_ms");
    out += ": ";
    append_number(out, value);
  }
  for (const auto& [name, hist] : histograms_) {
    sep();
    append_quoted(out, name + "_hist");
    out += ": {\"count\": ";
    out += std::to_string(hist.count());
    out += ", \"min_ms\": ";
    append_number(out, hist.min_ms());
    out += ", \"p50_ms\": ";
    append_number(out, hist.percentile_ms(50));
    out += ", \"p95_ms\": ";
    append_number(out, hist.percentile_ms(95));
    out += ", \"p99_ms\": ";
    append_number(out, hist.percentile_ms(99));
    out += ", \"max_ms\": ";
    append_number(out, hist.max_ms());
    out += '}';
  }
  for (const auto& [name, sub] : children_) {
    sep();
    append_quoted(out, name);
    out += ": ";
    sub.append_json(out);
  }
  out += '}';
}

std::string Telemetry::to_json() const {
  std::string out;
  append_json(out);
  return out;
}

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ScopedTimer::ScopedTimer(Telemetry& telemetry, std::string_view name)
    : slot_(&telemetry.timer_ms(name)), start_ns_(now_ns()) {}

ScopedTimer::~ScopedTimer() {
  *slot_ += static_cast<double>(now_ns() - start_ns_) * 1e-6;
}

}  // namespace streamrel
