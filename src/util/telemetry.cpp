#include "streamrel/util/telemetry.hpp"

#include <chrono>
#include <cstdio>

namespace streamrel {

Telemetry::Counter& Telemetry::counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.emplace(std::string(name), Counter{0}).first->second;
}

Telemetry::Counter Telemetry::counter_or(std::string_view name,
                                         Counter fallback) const {
  const auto it = counters_.find(name);
  return it != counters_.end() ? it->second : fallback;
}

double& Telemetry::timer_ms(std::string_view name) {
  const auto it = timers_.find(name);
  if (it != timers_.end()) return it->second;
  return timers_.emplace(std::string(name), 0.0).first->second;
}

double Telemetry::timer_ms_or(std::string_view name, double fallback) const {
  const auto it = timers_.find(name);
  return it != timers_.end() ? it->second : fallback;
}

Telemetry& Telemetry::child(std::string_view name) {
  const auto it = children_.find(name);
  if (it != children_.end()) return it->second;
  return children_.emplace(std::string(name), Telemetry{}).first->second;
}

const Telemetry* Telemetry::find_child(std::string_view name) const {
  const auto it = children_.find(name);
  return it != children_.end() ? &it->second : nullptr;
}

void Telemetry::merge(const Telemetry& other) {
  for (const auto& [name, value] : other.counters_) counters_[name] += value;
  for (const auto& [name, value] : other.timers_) timers_[name] += value;
  for (const auto& [name, sub] : other.children_) children_[name].merge(sub);
}

bool Telemetry::counters_equal(const Telemetry& other) const {
  if (counters_ != other.counters_) return false;
  if (children_.size() != other.children_.size()) return false;
  auto it = children_.begin();
  auto jt = other.children_.begin();
  for (; it != children_.end(); ++it, ++jt) {
    if (it->first != jt->first) return false;
    if (!it->second.counters_equal(jt->second)) return false;
  }
  return true;
}

namespace {

void append_quoted(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

}  // namespace

void Telemetry::append_json(std::string& out) const {
  out += '{';
  bool first = true;
  const auto sep = [&] {
    if (!first) out += ", ";
    first = false;
  };
  for (const auto& [name, value] : counters_) {
    sep();
    append_quoted(out, name);
    out += ": ";
    out += std::to_string(value);
  }
  for (const auto& [name, value] : timers_) {
    sep();
    append_quoted(out, name + "_ms");
    out += ": ";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", value);
    out += buf;
  }
  for (const auto& [name, sub] : children_) {
    sep();
    append_quoted(out, name);
    out += ": ";
    sub.append_json(out);
  }
  out += '}';
}

std::string Telemetry::to_json() const {
  std::string out;
  append_json(out);
  return out;
}

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ScopedTimer::ScopedTimer(Telemetry& telemetry, std::string_view name)
    : slot_(&telemetry.timer_ms(name)), start_ns_(now_ns()) {}

ScopedTimer::~ScopedTimer() {
  *slot_ += static_cast<double>(now_ns() - start_ns_) * 1e-6;
}

}  // namespace streamrel
