#include "streamrel/util/stats.hpp"

#include <cmath>
#include <stdexcept>

namespace streamrel {

void KahanSum::add(double x) noexcept {
  const double t = sum_ + x;
  if (std::abs(sum_) >= std::abs(x)) {
    compensation_ += (sum_ - t) + x;
  } else {
    compensation_ += (x - t) + sum_;
  }
  sum_ = t;
}

void KahanSum::merge(const KahanSum& other) noexcept {
  add(other.sum_);
  add(other.compensation_);
}

void OnlineStats::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double proportion_ci_halfwidth(std::uint64_t successes, std::uint64_t samples,
                               double z) {
  if (samples == 0) throw std::invalid_argument("no samples");
  const double n = static_cast<double>(samples);
  const double p = static_cast<double>(successes) / n;
  return z * std::sqrt(p * (1.0 - p) / n);
}

Interval wilson_interval(std::uint64_t successes, std::uint64_t samples,
                         double z) {
  if (samples == 0) throw std::invalid_argument("no samples");
  const double n = static_cast<double>(samples);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {center - half, center + half};
}

LineFit fit_line(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) {
    throw std::invalid_argument("fit_line: need >= 2 matching points");
  }
  const double n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0) throw std::invalid_argument("fit_line: x values identical");
  LineFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = (syy == 0.0) ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

}  // namespace streamrel
