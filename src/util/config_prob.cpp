#include "streamrel/util/config_prob.hpp"

#include <cassert>
#include <stdexcept>

namespace streamrel {

namespace {

// Fills `table` with products over one half of the links:
// table[m] = prod over bit i of m alive/dead probability of link base+i.
void fill_half(std::vector<double>& table, const std::vector<double>& probs,
               int base, int bits) {
  table.assign(std::size_t{1} << bits, 1.0);
  for (int i = 0; i < bits; ++i) {
    const double p_fail = probs[static_cast<std::size_t>(base + i)];
    const double p_up = 1.0 - p_fail;
    const std::size_t stride = std::size_t{1} << i;
    // Extend the table one link at a time: masks with bit i clear use the
    // failure factor, masks with bit i set the survival factor.
    for (std::size_t m = 0; m < (std::size_t{1} << bits); ++m) {
      table[m] *= (m & stride) ? p_up : p_fail;
    }
  }
}

}  // namespace

ConfigProbTable::ConfigProbTable(const std::vector<double>& failure_probs) {
  if (failure_probs.size() > static_cast<std::size_t>(kMaxMaskBits)) {
    throw std::invalid_argument(
        "ConfigProbTable: too many links for mask-based enumeration");
  }
  for (double p : failure_probs) {
    if (!(p >= 0.0) || !(p < 1.0)) {
      throw std::invalid_argument(
          "ConfigProbTable: failure probabilities must lie in [0, 1)");
    }
  }
  num_links_ = static_cast<int>(failure_probs.size());
  if (num_links_ > 40) {  // half tables would exceed 2^20 doubles
    direct_ = failure_probs;
    return;
  }
  low_bits_ = num_links_ / 2;
  low_mask_ = full_mask(low_bits_);
  fill_half(low_, failure_probs, /*base=*/0, low_bits_);
  fill_half(high_, failure_probs, /*base=*/low_bits_, num_links_ - low_bits_);
}

double config_probability(const std::vector<double>& failure_probs,
                          Mask alive) noexcept {
  double prod = 1.0;
  for (std::size_t i = 0; i < failure_probs.size(); ++i) {
    prod *= test_bit(alive, static_cast<int>(i)) ? (1.0 - failure_probs[i])
                                                 : failure_probs[i];
  }
  return prod;
}

}  // namespace streamrel
