#include "streamrel/util/trace.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <vector>

namespace streamrel {

namespace trace_detail {
std::atomic<bool> g_enabled{false};
thread_local TraceCapture* t_capture = nullptr;
}  // namespace trace_detail

namespace {

using SteadyClock = std::chrono::steady_clock;

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          SteadyClock::now().time_since_epoch())
          .count());
}

/// One thread's ring. Owned by the global registry (shared_ptr) so the
/// buffer outlives its thread; the thread only keeps a raw pointer.
/// Writes are single-threaded (the owning thread); reads happen from the
/// exporting thread at a coordination point (no solve in flight).
struct ThreadRing {
  explicit ThreadRing(std::uint32_t id) : tid(id) {
    events.reserve(Tracer::kRingCapacity);
  }

  void push(TraceEvent&& event) {
    event.tid = tid;
    if (events.size() < Tracer::kRingCapacity) {
      events.push_back(std::move(event));
      return;
    }
    events[next_overwrite] = std::move(event);
    next_overwrite = (next_overwrite + 1) % Tracer::kRingCapacity;
    ++dropped;
  }

  void clear() {
    events.clear();
    next_overwrite = 0;
    dropped = 0;
  }

  const std::uint32_t tid;
  std::vector<TraceEvent> events;
  std::size_t next_overwrite = 0;  ///< oldest slot once the ring is full
  std::uint64_t dropped = 0;
};

struct Registry {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadRing>> rings;
  std::uint64_t epoch_ns = steady_now_ns();
};

Registry& registry() {
  static Registry* r = new Registry;  // immortal: threads may record late
  return *r;
}

ThreadRing& thread_ring() {
  thread_local ThreadRing* ring = [] {
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    auto owned =
        std::make_shared<ThreadRing>(static_cast<std::uint32_t>(r.rings.size()));
    r.rings.push_back(owned);
    return owned.get();
  }();
  return *ring;
}

void append_json_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_us(std::string& out, std::uint64_t ns) {
  // Microseconds with nanosecond precision, the unit Chrome expects.
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out += buf;
}

}  // namespace

void Tracer::set_enabled(bool on) {
  if (on) {
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    r.epoch_ns = steady_now_ns();
  }
  trace_detail::g_enabled.store(on, std::memory_order_relaxed);
}

void Tracer::clear() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  for (auto& ring : r.rings) ring->clear();
  r.epoch_ns = steady_now_ns();
}

std::uint64_t Tracer::now_ns() {
  Registry& r = registry();
  return steady_now_ns() - r.epoch_ns;
}

void Tracer::record(TraceEvent event) {
  // A bound per-request capture wins over the global rings: the request's
  // own spans must not leak into (or out of) concurrently traced tenants.
  if (TraceCapture* capture = trace_detail::t_capture) {
    capture->push(std::move(event));
    return;
  }
  thread_ring().push(std::move(event));
}

TraceCapture::TraceCapture() : prev_(trace_detail::t_capture) {
  trace_detail::t_capture = this;
}

TraceCapture::~TraceCapture() { trace_detail::t_capture = prev_; }

void TraceCapture::push(TraceEvent event) {
  if (events_.size() >= kMaxEvents) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

std::string TraceCapture::summary_json() const {
  struct SpanStats {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
  };
  std::map<std::string, SpanStats> spans;
  for (const TraceEvent& event : events_) {
    SpanStats& s = spans[event.name];
    s.count += 1;
    s.total_ns += event.dur_ns;
  }
  std::string out = "{\"events\": " + std::to_string(events_.size()) +
                    ", \"dropped\": " + std::to_string(dropped_) +
                    ", \"spans\": {";
  bool first = true;
  for (const auto& [name, stats] : spans) {
    if (!first) out += ", ";
    first = false;
    out += '"';
    append_json_escaped(out, name);
    out += "\": {\"count\": " + std::to_string(stats.count) +
           ", \"total_us\": " + std::to_string(stats.total_ns / 1000) + "}";
  }
  out += "}}";
  return out;
}

std::uint64_t Tracer::event_count() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  std::uint64_t total = 0;
  for (const auto& ring : r.rings) total += ring->events.size();
  return total;
}

std::uint64_t Tracer::dropped_count() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  std::uint64_t total = 0;
  for (const auto& ring : r.rings) total += ring->dropped;
  return total;
}

std::string Tracer::export_chrome_json() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);

  std::string out;
  out.reserve(1 << 16);
  out += "{\"traceEvents\": [";
  bool first = true;
  std::uint64_t dropped = 0;
  for (const auto& ring : r.rings) {
    dropped += ring->dropped;
    // Chronological order: the slots after next_overwrite are the oldest
    // once the ring has wrapped.
    const std::size_t n = ring->events.size();
    const std::size_t start =
        n == kRingCapacity ? ring->next_overwrite : std::size_t{0};
    for (std::size_t i = 0; i < n; ++i) {
      const TraceEvent& e = ring->events[(start + i) % n];
      out += first ? "\n" : ",\n";
      first = false;
      out += "{\"name\": \"";
      append_json_escaped(out, e.name);
      out += "\", \"cat\": \"";
      append_json_escaped(out, e.category);
      out += "\", \"ph\": \"X\", \"ts\": ";
      append_us(out, e.start_ns);
      out += ", \"dur\": ";
      append_us(out, e.dur_ns);
      out += ", \"pid\": 1, \"tid\": ";
      out += std::to_string(e.tid);
      if (!e.args.empty()) {
        out += ", \"args\": {";
        out += e.args;
        out += '}';
      }
      out += '}';
    }
  }
  out += "\n], \"displayTimeUnit\": \"ms\", \"otherData\": {\"tool\": "
         "\"streamrel\", \"dropped_events\": ";
  out += std::to_string(dropped);
  out += "}}\n";
  return out;
}

bool Tracer::export_chrome_json_to_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << export_chrome_json();
  return static_cast<bool>(out);
}

// ---------------------------------------------------------------------------
// TraceSpan

void TraceSpan::begin(std::string_view name, const char* category) {
  name_.assign(name);
  args_.clear();
  category_ = category;
  start_ns_ = Tracer::now_ns();
  active_ = true;
}

void TraceSpan::finish() {
  TraceEvent event;
  event.name = std::move(name_);
  event.category = category_;
  event.start_ns = start_ns_;
  event.dur_ns = Tracer::now_ns() - start_ns_;
  event.args = std::move(args_);
  Tracer::record(std::move(event));
  active_ = false;
}

namespace {

void append_arg_key(std::string& args, std::string_view key) {
  if (!args.empty()) args += ", ";
  args += '"';
  append_json_escaped(args, key);
  args += "\": ";
}

}  // namespace

TraceSpan& TraceSpan::arg(std::string_view key, std::string_view value) {
  if (!active_) return *this;
  append_arg_key(args_, key);
  args_ += '"';
  append_json_escaped(args_, value);
  args_ += '"';
  return *this;
}

TraceSpan& TraceSpan::arg(std::string_view key, std::uint64_t value) {
  if (!active_) return *this;
  append_arg_key(args_, key);
  args_ += std::to_string(value);
  return *this;
}

TraceSpan& TraceSpan::arg(std::string_view key, std::int64_t value) {
  if (!active_) return *this;
  append_arg_key(args_, key);
  args_ += std::to_string(value);
  return *this;
}

TraceSpan& TraceSpan::arg(std::string_view key, double value) {
  if (!active_) return *this;
  append_arg_key(args_, key);
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  args_ += buf;
  return *this;
}

TraceSpan& TraceSpan::arg(std::string_view key, bool value) {
  if (!active_) return *this;
  append_arg_key(args_, key);
  args_ += value ? "true" : "false";
  return *this;
}

// ---------------------------------------------------------------------------
// ProgressReporter

struct ProgressReporter::Impl {
  Options options;
  std::ostream* out;
  std::atomic<std::uint64_t> visited{0};
  std::atomic<std::uint64_t> total{0};
  std::atomic<std::uint64_t> last_print_ns{0};
  std::atomic<bool> finished{false};
  std::uint64_t start_ns = steady_now_ns();
  std::mutex print_mutex;
};

ProgressReporter::ProgressReporter(std::ostream* out, Options options)
    : impl_(std::make_unique<Impl>()) {
  impl_->options = std::move(options);
  impl_->out = out ? out : &std::cerr;
}

ProgressReporter::~ProgressReporter() { finish(); }

void ProgressReporter::add_total(std::uint64_t n) noexcept {
  impl_->total.fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t ProgressReporter::visited() const noexcept {
  return impl_->visited.load(std::memory_order_relaxed);
}

std::uint64_t ProgressReporter::total() const noexcept {
  return impl_->total.load(std::memory_order_relaxed);
}

ProgressReporter::Snapshot ProgressReporter::snapshot() const {
  Snapshot s;
  s.visited = visited();
  s.total = total();
  s.elapsed_s =
      static_cast<double>(steady_now_ns() - impl_->start_ns) * 1e-9;
  if (s.elapsed_s > 0.0) s.rate_per_s = static_cast<double>(s.visited) / s.elapsed_s;
  if (s.rate_per_s > 0.0 && s.total > s.visited) {
    s.eta_s = static_cast<double>(s.total - s.visited) / s.rate_per_s;
  }
  return s;
}

std::string ProgressReporter::render_line() const {
  const Snapshot s = snapshot();
  char buf[160];
  if (s.total > 0) {
    const double pct = 100.0 * static_cast<double>(s.visited) /
                       static_cast<double>(s.total);
    std::snprintf(buf, sizeof(buf),
                  "%s: %llu/%llu (%.1f%%) %.3g cfg/s ETA %.2fs",
                  impl_->options.label.c_str(),
                  static_cast<unsigned long long>(s.visited),
                  static_cast<unsigned long long>(s.total), pct, s.rate_per_s,
                  s.eta_s);
  } else {
    std::snprintf(buf, sizeof(buf), "%s: %llu visited, %.3g cfg/s",
                  impl_->options.label.c_str(),
                  static_cast<unsigned long long>(s.visited), s.rate_per_s);
  }
  return buf;
}

void ProgressReporter::add(std::uint64_t n) {
  impl_->visited.fetch_add(n, std::memory_order_relaxed);
  if (impl_->finished.load(std::memory_order_relaxed)) return;

  // Throttle: one thread wins the CAS per interval and prints; everyone
  // else returns without touching the stream.
  const std::uint64_t now = steady_now_ns();
  std::uint64_t last = impl_->last_print_ns.load(std::memory_order_relaxed);
  const auto interval_ns =
      static_cast<std::uint64_t>(impl_->options.interval_ms * 1e6);
  if (now - last < interval_ns && last != 0) return;
  if (!impl_->last_print_ns.compare_exchange_strong(
          last, now, std::memory_order_relaxed)) {
    return;
  }
  const std::lock_guard<std::mutex> lock(impl_->print_mutex);
  *impl_->out << '\r' << render_line() << std::flush;
}

void ProgressReporter::finish() {
  bool expected = false;
  if (!impl_->finished.compare_exchange_strong(expected, true)) return;
  if (impl_->last_print_ns.load(std::memory_order_relaxed) == 0) return;
  const std::lock_guard<std::mutex> lock(impl_->print_mutex);
  *impl_->out << '\r' << render_line() << '\n' << std::flush;
}

}  // namespace streamrel
