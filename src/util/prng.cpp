#include "streamrel/util/prng.hpp"

namespace streamrel {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t s = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  return splitmix64(s);
}

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

Xoshiro256::result_type Xoshiro256::operator()() noexcept {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::uniform_below(std::uint64_t bound) noexcept {
  // Lemire's method: multiply-shift with rejection of the biased low range.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0ULL - bound) % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Xoshiro256::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1ULL;
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) +
                                   uniform_below(span));
}

double Xoshiro256::uniform01() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform_real(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

bool Xoshiro256::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

void Xoshiro256::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> acc{0, 0, 0, 0};
  for (std::uint64_t word : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if (word & (1ULL << bit)) {
        for (int i = 0; i < 4; ++i) acc[static_cast<std::size_t>(i)] ^= state_[static_cast<std::size_t>(i)];
      }
      (*this)();
    }
  }
  state_ = acc;
}

}  // namespace streamrel
