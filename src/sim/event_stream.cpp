#include "streamrel/sim/event_stream.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "streamrel/util/json.hpp"
#include "streamrel/util/prng.hpp"

namespace streamrel {

void sort_event_stream(EventStream& events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const ChurnEvent& a, const ChurnEvent& b) {
                     return a.time < b.time;
                   });
}

namespace {

double require_number(const JsonValue& obj, std::string_view key) {
  const JsonValue* v = obj.find(key);
  if (!v) {
    throw std::invalid_argument("event stream: missing \"" +
                                std::string(key) + "\"");
  }
  return v->as_number();
}

const JsonValue& require_member(const JsonValue& obj, std::string_view key) {
  const JsonValue* v = obj.find(key);
  if (!v) {
    throw std::invalid_argument("event stream: missing \"" +
                                std::string(key) + "\"");
  }
  return *v;
}

int as_id(const JsonValue& v, std::string_view what) {
  const double n = v.as_number();
  if (n < 0.0 || n != std::floor(n)) {
    throw std::invalid_argument("event stream: bad " + std::string(what));
  }
  return static_cast<int>(n);
}

}  // namespace

NetworkDelta parse_delta_json(const JsonValue& obj) {
  NetworkDelta delta;
  if (const JsonValue* edits = obj.find("set_failure_prob")) {
    for (const JsonValue& e : edits->as_array()) {
      delta.set_failure_prob(as_id(require_member(e, "edge"), "edge id"),
                             require_number(e, "p"));
    }
  }
  if (const JsonValue* edits = obj.find("set_capacity")) {
    for (const JsonValue& e : edits->as_array()) {
      delta.set_capacity(as_id(require_member(e, "edge"), "edge id"),
                         static_cast<Capacity>(require_number(e, "c")));
    }
  }
  if (const JsonValue* n = obj.find("add_nodes")) {
    delta.nodes_added = as_id(*n, "add_nodes count");
  }
  if (const JsonValue* adds = obj.find("add_edge")) {
    for (const JsonValue& e : adds->as_array()) {
      const JsonValue* directed = e.find("directed");
      delta.add_edge(as_id(require_member(e, "u"), "endpoint"),
                     as_id(require_member(e, "v"), "endpoint"),
                     static_cast<Capacity>(require_number(e, "c")),
                     require_number(e, "p"),
                     directed && directed->as_bool() ? EdgeKind::kDirected
                                                     : EdgeKind::kUndirected);
    }
  }
  if (const JsonValue* removes = obj.find("remove_edge")) {
    for (const JsonValue& e : removes->as_array()) {
      delta.remove_edge(as_id(e, "edge id"));
    }
  }
  if (const JsonValue* removes = obj.find("remove_node")) {
    for (const JsonValue& e : removes->as_array()) {
      delta.remove_node(as_id(e, "node id"));
    }
  }
  return delta;
}

ChurnEvent parse_churn_event(const JsonValue& obj) {
  ChurnEvent event;
  event.time = require_number(obj, "time");
  if (const JsonValue* label = obj.find("label")) {
    event.label = label->as_string();
  }
  event.delta = parse_delta_json(obj);
  return event;
}

EventStream parse_event_stream(std::string_view json_text) {
  const JsonValue doc = parse_json(json_text);
  const JsonValue* events = doc.find("events");
  if (!events) {
    throw std::invalid_argument("event stream: missing \"events\" array");
  }
  EventStream out;
  out.reserve(events->as_array().size());
  for (const JsonValue& item : events->as_array()) {
    out.push_back(parse_churn_event(item));
  }
  return out;
}

EventStream random_churn_events(const FlowNetwork& net, NodeId server,
                                const ChurnEventOptions& options) {
  if (net.num_edges() == 0 || !net.valid_node(server)) {
    throw std::invalid_argument("churn stream needs a non-empty network");
  }
  if (options.events < 0 || options.mean_interarrival <= 0.0) {
    throw std::invalid_argument("bad churn stream options");
  }
  const double total_weight = options.weight_degrade +
                              options.weight_capacity + options.weight_leave +
                              options.weight_join;
  if (!(total_weight > 0.0)) {
    throw std::invalid_argument("churn stream: all class weights are zero");
  }

  Xoshiro256 rng(options.seed);
  // The generator applies each emitted delta to its own copy so every
  // delta is valid against the state its predecessors produce — the id
  // contract documented in the header.
  FlowNetwork state = net;
  NodeId tracked_server = server;
  NodeId tracked_protect = options.protect_node;
  EventStream stream;
  stream.reserve(static_cast<std::size_t>(options.events));
  double clock = 0.0;

  for (int i = 0; i < options.events; ++i) {
    clock += -options.mean_interarrival * std::log1p(-rng.uniform01());
    ChurnEvent event;
    event.time = clock;

    double pick = rng.uniform_real(0.0, total_weight);
    const bool degrade = (pick -= options.weight_degrade) < 0.0;
    const bool capacity = !degrade && (pick -= options.weight_capacity) < 0.0;
    const bool leave = !degrade && !capacity &&
                       (pick -= options.weight_leave) < 0.0;
    const bool have_edges = state.num_edges() > 0;

    if (degrade && have_edges) {
      const EdgeId edge = static_cast<EdgeId>(
          rng.uniform_below(static_cast<std::uint64_t>(state.num_edges())));
      event.delta.set_failure_prob(
          edge, rng.uniform_real(0.0, options.degrade_max_prob));
      event.label = "degrade link " + std::to_string(edge);
    } else if (capacity && have_edges) {
      const EdgeId edge = static_cast<EdgeId>(
          rng.uniform_below(static_cast<std::uint64_t>(state.num_edges())));
      const Capacity c = state.edge(edge).capacity;
      event.delta.set_capacity(edge, c > 1 && rng.bernoulli(0.5) ? c - 1
                                                                 : c + 1);
      event.label = "re-provision link " + std::to_string(edge);
    } else if (leave && state.num_nodes() > 3 && have_edges) {
      NodeId victim = tracked_server;
      while (victim == tracked_server || victim == tracked_protect) {
        victim = static_cast<NodeId>(
            rng.uniform_below(static_cast<std::uint64_t>(state.num_nodes())));
      }
      event.delta.remove_node(victim);
      event.label = "peer " + std::to_string(victim) + " leaves";
    } else {
      const NodeId joiner = event.delta.add_node(state.num_nodes());
      NodeId a = static_cast<NodeId>(
          rng.uniform_below(static_cast<std::uint64_t>(state.num_nodes())));
      NodeId b = a;
      while (b == a) {
        b = static_cast<NodeId>(
            rng.uniform_below(static_cast<std::uint64_t>(state.num_nodes())));
      }
      const double p = rng.uniform_real(0.01, options.degrade_max_prob);
      event.delta.add_edge(a, joiner, options.join_capacity, p);
      event.delta.add_edge(joiner, b, options.join_capacity, p);
      event.label = "peer joins via " + std::to_string(a) + "," +
                    std::to_string(b);
    }

    const DeltaApplication applied = apply_delta_in_place(state, event.delta);
    if (applied.applied == DeltaClass::kTopology) {
      tracked_server =
          applied.node_map[static_cast<std::size_t>(tracked_server)];
      if (tracked_protect != kInvalidNode) {
        tracked_protect =
            applied.node_map[static_cast<std::size_t>(tracked_protect)];
      }
    }
    stream.push_back(std::move(event));
  }
  return stream;
}

}  // namespace streamrel
