#include "streamrel/sim/churn_replay.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "streamrel/util/trace.hpp"

namespace streamrel {

namespace {

// Carries the demand across a topology event; throws when the event
// removed an endpoint (the stream is inconsistent with this demand).
void translate_demand(const std::vector<NodeId>& node_map, FlowDemand& demand,
                      const ChurnEvent& event, std::size_t index) {
  const NodeId s = node_map[static_cast<std::size_t>(demand.source)];
  const NodeId t = node_map[static_cast<std::size_t>(demand.sink)];
  if (s == kInvalidNode || t == kInvalidNode) {
    throw std::invalid_argument("replay: event " + std::to_string(index) +
                                " (" + event.label +
                                ") removed a demand endpoint");
  }
  demand.source = s;
  demand.sink = t;
}

void finish_report(ReplayReport& report, bool warm) {
  double survival_sum = 0.0;
  std::size_t survival_events = 0;
  report.worst_event = -1;
  double worst = 0.0;
  for (std::size_t i = 0; i < report.series.size(); ++i) {
    const ReplayEventOutcome& out = report.series[i];
    const std::uint64_t touched =
        out.entries_full + out.entries_partial + out.entries_survived;
    if (touched > 0) {
      survival_sum += out.survival;
      survival_events += 1;
    }
    if (out.delta_r < worst) {
      worst = out.delta_r;
      report.worst_event = static_cast<int>(i);
    }
  }
  report.final_reliability = report.series.empty()
                                 ? report.initial_reliability
                                 : report.series.back().reliability;
  if (!warm) {
    report.artifact_survival_rate = 0.0;
  } else if (survival_events > 0) {
    report.artifact_survival_rate =
        survival_sum / static_cast<double>(survival_events);
  } else {
    report.artifact_survival_rate = 1.0;  // nothing was ever at risk
  }
}

}  // namespace

ReplayReport replay_churn(const FlowNetwork& net, const FlowDemand& demand0,
                          const EventStream& events,
                          const ReplayOptions& options) {
  TraceSpan span("churn_replay", "sim");
  span.arg("events", static_cast<std::uint64_t>(events.size()))
      .arg("warm", options.use_session);

  ReplayReport report;
  report.series.reserve(events.size());
  FlowDemand demand = demand0;

  if (options.use_session) {
    QuerySession session(net, options.cache);
    report.initial_reliability =
        session.solve(demand, options.solve).result.reliability;
    double prev = report.initial_reliability;
    for (std::size_t i = 0; i < events.size(); ++i) {
      const ChurnEvent& event = events[i];
      ReplayEventOutcome out;
      out.time = event.time;
      out.label = event.label;
      const DeltaOutcome applied = session.apply_delta(event.delta);
      out.applied = applied.applied;
      if (out.applied == DeltaClass::kTopology) {
        translate_demand(applied.node_map, demand, event, i);
      }
      out.entries_full = applied.entries_full;
      out.entries_partial = applied.entries_partial;
      out.entries_survived = applied.entries_survived;
      const std::uint64_t touched =
          out.entries_full + out.entries_partial + out.entries_survived;
      out.survival =
          touched == 0
              ? 1.0
              : (static_cast<double>(out.entries_survived) +
                 0.5 * static_cast<double>(out.entries_partial)) /
                    static_cast<double>(touched);
      out.reliability = session.solve(demand, options.solve).result.reliability;
      out.delta_r = out.reliability - prev;
      prev = out.reliability;
      report.series.push_back(std::move(out));
    }
    report.telemetry = session.telemetry();
  } else {
    FlowNetwork state = net;
    report.initial_reliability =
        compute_reliability(state, demand, options.solve).result.reliability;
    double prev = report.initial_reliability;
    for (std::size_t i = 0; i < events.size(); ++i) {
      const ChurnEvent& event = events[i];
      ReplayEventOutcome out;
      out.time = event.time;
      out.label = event.label;
      const DeltaApplication applied = apply_delta_in_place(state, event.delta);
      out.applied = applied.applied;
      if (out.applied == DeltaClass::kTopology) {
        translate_demand(applied.node_map, demand, event, i);
      }
      out.reliability =
          compute_reliability(state, demand, options.solve).result.reliability;
      out.delta_r = out.reliability - prev;
      prev = out.reliability;
      report.series.push_back(std::move(out));
    }
  }

  finish_report(report, options.use_session);
  return report;
}

}  // namespace streamrel
