#include "streamrel/sim/availability_sim.hpp"

#include <cmath>
#include <queue>
#include <stdexcept>

#include "streamrel/maxflow/incremental_dinic.hpp"
#include "streamrel/util/prng.hpp"

namespace streamrel {

namespace {

struct Transition {
  double time;
  EdgeId edge;
  bool operator>(const Transition& other) const noexcept {
    return time > other.time;
  }
};

double draw_exponential(Xoshiro256& rng, double mean) {
  // Inverse transform; uniform01 is in [0, 1) so 1 - u is in (0, 1].
  return -mean * std::log(1.0 - rng.uniform01());
}

}  // namespace

SimulationReport simulate_availability(const FlowNetwork& net,
                                       const FlowDemand& demand,
                                       const std::vector<LinkDynamics>& links,
                                       const SimulationOptions& options) {
  net.check_demand(demand);
  if (links.size() != static_cast<std::size_t>(net.num_edges())) {
    throw std::invalid_argument("need one LinkDynamics per link");
  }
  if (options.duration <= 0.0 || options.warmup < 0.0) {
    throw std::invalid_argument("bad simulation horizon");
  }
  for (const LinkDynamics& dyn : links) {
    if (dyn.mean_uptime <= 0.0 || dyn.mean_downtime < 0.0) {
      throw std::invalid_argument("bad link dynamics");
    }
  }

  Xoshiro256 rng(options.seed);
  IncrementalMaxFlow flow(net, demand);

  // Start each link from its stationary distribution so the warmup only
  // has to wash out correlations, not the marginals.
  std::priority_queue<Transition, std::vector<Transition>, std::greater<>>
      queue;
  std::vector<bool> up(static_cast<std::size_t>(net.num_edges()));
  for (EdgeId id = 0; id < net.num_edges(); ++id) {
    const LinkDynamics& dyn = links[static_cast<std::size_t>(id)];
    const bool is_up = !rng.bernoulli(dyn.unavailability());
    up[static_cast<std::size_t>(id)] = is_up;
    if (!is_up) flow.set_edge_alive(id, false);
    if (dyn.mean_downtime > 0.0) {  // static links never transition
      queue.push(Transition{
          draw_exponential(rng,
                           is_up ? dyn.mean_uptime : dyn.mean_downtime),
          id});
    }
  }

  SimulationReport report;
  const double t_end = options.warmup + options.duration;
  double now = 0.0;
  bool feasible = flow.admits();
  double feasible_time = 0.0;
  double spell_start = 0.0;  // start of the current (in)feasible spell
  double outage_total = 0.0;
  std::uint64_t uptime_spells = 0;
  double uptime_total = 0.0;

  auto account_until = [&](double t) {
    const double lo = std::max(spell_start, options.warmup);
    const double hi = std::min(t, t_end);
    if (hi > lo && feasible) feasible_time += hi - lo;
  };

  while (!queue.empty() && queue.top().time < t_end) {
    const Transition tr = queue.top();
    queue.pop();
    now = tr.time;
    const auto ei = static_cast<std::size_t>(tr.edge);
    up[ei] = !up[ei];
    flow.set_edge_alive(tr.edge, up[ei]);
    const LinkDynamics& dyn = links[ei];
    queue.push(Transition{
        now + draw_exponential(rng,
                               up[ei] ? dyn.mean_uptime : dyn.mean_downtime),
        tr.edge});
    if (now >= options.warmup) ++report.transitions;

    const bool now_feasible = flow.admits();
    if (now_feasible == feasible) continue;
    account_until(now);
    // Spell statistics only for spells fully inside the window.
    if (spell_start >= options.warmup && now <= t_end) {
      const double spell = now - spell_start;
      if (feasible) {
        uptime_total += spell;
        ++uptime_spells;
      } else {
        outage_total += spell;
        ++report.interruptions;
      }
    }
    feasible = now_feasible;
    spell_start = now;
  }
  account_until(t_end);

  report.availability = feasible_time / options.duration;
  report.mean_outage =
      report.interruptions > 0
          ? outage_total / static_cast<double>(report.interruptions)
          : 0.0;
  report.mean_uptime_spell =
      uptime_spells > 0 ? uptime_total / static_cast<double>(uptime_spells)
                        : 0.0;
  return report;
}

}  // namespace streamrel
