#include "streamrel/sim/link_dynamics.hpp"

namespace streamrel {

std::vector<LinkDynamics> dynamics_from_probabilities(const FlowNetwork& net,
                                                      double mean_downtime) {
  if (mean_downtime <= 0.0) {
    throw std::invalid_argument("mean downtime must be positive");
  }
  std::vector<LinkDynamics> out;
  out.reserve(static_cast<std::size_t>(net.num_edges()));
  for (const Edge& e : net.edges()) {
    LinkDynamics dyn;
    dyn.mean_downtime = mean_downtime;
    if (e.failure_prob <= 0.0) {
      // Never down: model as an (effectively) infinite up-time.
      dyn.mean_downtime = 0.0;
      dyn.mean_uptime = 1.0;
    } else {
      // p = down / (up + down)  =>  up = down * (1 - p) / p.
      dyn.mean_uptime =
          mean_downtime * (1.0 - e.failure_prob) / e.failure_prob;
    }
    out.push_back(dyn);
  }
  return out;
}

}  // namespace streamrel
