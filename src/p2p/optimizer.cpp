#include "streamrel/p2p/optimizer.hpp"

#include <set>
#include <stdexcept>
#include <utility>

namespace streamrel {

UpgradePlan plan_overlay_upgrade(const FlowNetwork& net,
                                 const FlowDemand& demand,
                                 std::vector<UpgradeCandidate> candidates,
                                 int budget, const SolveOptions& options) {
  net.check_demand(demand);
  if (budget < 0) throw std::invalid_argument("negative budget");
  for (const UpgradeCandidate& c : candidates) {
    if (!net.valid_node(c.u) || !net.valid_node(c.v) || c.u == c.v) {
      throw std::invalid_argument("bad candidate endpoints");
    }
  }

  UpgradePlan plan;
  FlowNetwork current = net;
  plan.reliability_before =
      compute_reliability(current, demand, options).result.reliability;
  plan.reliability_after = plan.reliability_before;

  for (int round = 0; round < budget && !candidates.empty(); ++round) {
    double best_r = plan.reliability_after;
    std::size_t best_index = candidates.size();
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      FlowNetwork trial = current;
      const UpgradeCandidate& c = candidates[i];
      trial.add_edge(c.u, c.v, c.capacity, c.failure_prob, c.kind);
      const double r =
          compute_reliability(trial, demand, options).result.reliability;
      if (r > best_r + 1e-12) {
        best_r = r;
        best_index = i;
      }
    }
    if (best_index == candidates.size()) break;  // nothing helps anymore
    const UpgradeCandidate chosen = candidates[best_index];
    current.add_edge(chosen.u, chosen.v, chosen.capacity,
                     chosen.failure_prob, chosen.kind);
    candidates.erase(candidates.begin() +
                     static_cast<std::ptrdiff_t>(best_index));
    plan.chosen.push_back(chosen);
    plan.reliability_after = best_r;
    plan.trajectory.push_back(best_r);
  }
  return plan;
}

std::vector<UpgradeCandidate> all_missing_links(const FlowNetwork& net,
                                                Capacity capacity,
                                                double failure_prob) {
  std::set<std::pair<NodeId, NodeId>> present;
  for (const Edge& e : net.edges()) {
    present.insert({std::min(e.u, e.v), std::max(e.u, e.v)});
  }
  std::vector<UpgradeCandidate> out;
  for (NodeId u = 0; u < net.num_nodes(); ++u) {
    for (NodeId v = u + 1; v < net.num_nodes(); ++v) {
      if (present.count({u, v})) continue;
      out.push_back(UpgradeCandidate{u, v, capacity, failure_prob,
                                     EdgeKind::kUndirected});
    }
  }
  return out;
}

}  // namespace streamrel
