#include "streamrel/p2p/churn.hpp"

#include <cmath>
#include <stdexcept>

namespace streamrel {

double peer_departure_prob(const ChurnModel& model) {
  if (model.mean_session_minutes <= 0.0 || model.window_minutes < 0.0) {
    throw std::invalid_argument("bad churn model parameters");
  }
  return 1.0 - std::exp(-model.window_minutes / model.mean_session_minutes);
}

double link_failure_prob(const ChurnModel& model, int endpoints_churning) {
  if (endpoints_churning < 0 || endpoints_churning > 2) {
    throw std::invalid_argument("a link has at most two churning endpoints");
  }
  if (!(model.base_link_loss >= 0.0) || !(model.base_link_loss < 1.0)) {
    throw std::invalid_argument("base link loss must lie in [0, 1)");
  }
  const double survive_peer = 1.0 - peer_departure_prob(model);
  double survive = 1.0 - model.base_link_loss;
  for (int i = 0; i < endpoints_churning; ++i) survive *= survive_peer;
  return 1.0 - survive;
}

NetworkDelta churn_delta(const FlowNetwork& net, NodeId server,
                         const ChurnModel& model) {
  NetworkDelta delta;
  for (EdgeId id = 0; id < net.num_edges(); ++id) {
    const Edge& e = net.edge(id);
    const int churning = (e.u == server || e.v == server) ? 1 : 2;
    delta.set_failure_prob(id, link_failure_prob(model, churning));
  }
  return delta;
}

}  // namespace streamrel
