#include "streamrel/p2p/scenario.hpp"

namespace streamrel {

GeneratedNetwork make_fig2_bridge_graph(double p) {
  GeneratedNetwork g;
  g.net = FlowNetwork(8);
  // Source-side diamond: s=0, a=1, b=2, x=3.
  g.net.add_undirected_edge(0, 1, 1, p);  // e1: s-a
  g.net.add_undirected_edge(0, 2, 1, p);  // e2: s-b
  g.net.add_undirected_edge(1, 3, 1, p);  // e3: a-x
  g.net.add_undirected_edge(2, 3, 1, p);  // e4: b-x
  // Sink-side diamond: y=4, c=5, d=6, t=7.
  g.net.add_undirected_edge(4, 5, 1, p);  // e5: y-c
  g.net.add_undirected_edge(4, 6, 1, p);  // e6: y-d
  g.net.add_undirected_edge(5, 7, 1, p);  // e7: c-t
  g.net.add_undirected_edge(6, 7, 1, p);  // e8: d-t
  // The bridge (the figure's red e9).
  g.net.add_undirected_edge(3, 4, 1, p);  // e9: x-y
  g.source = 0;
  g.sink = 7;
  g.side_s = {true, true, true, true, false, false, false, false};
  return g;
}

GeneratedNetwork make_fig4_graph(double p) {
  GeneratedNetwork g;
  g.net = FlowNetwork(6);
  const NodeId s = 0, x1 = 1, x2 = 2, y1 = 3, y2 = 4, t = 5;
  // Source side (ids 0-4).
  g.net.add_undirected_edge(s, x1, 1, p);   // 0
  g.net.add_undirected_edge(s, x1, 1, p);   // 1 (parallel)
  g.net.add_undirected_edge(s, x2, 1, p);   // 2
  g.net.add_undirected_edge(s, x2, 1, p);   // 3 (parallel)
  g.net.add_undirected_edge(x1, x2, 1, p);  // 4
  // Sink side (ids 5-6).
  g.net.add_undirected_edge(y1, t, 2, p);  // 5
  g.net.add_undirected_edge(y2, t, 2, p);  // 6
  // Bottleneck links e1, e2 (ids 7-8).
  g.net.add_undirected_edge(x1, y1, 2, p);  // 7
  g.net.add_undirected_edge(x2, y2, 2, p);  // 8
  g.source = s;
  g.sink = t;
  g.side_s = {true, true, true, false, false, false};
  return g;
}

Fig5Configs fig5_source_side_configs() {
  // Source-side subgraph edge order equals original ids 0..4 (they are
  // the first edges of the network): bits 0,1 = the two s-x1 links,
  // bits 2,3 = the two s-x2 links, bit 4 = x1-x2.
  Fig5Configs configs;
  configs.a = mask_of({0, 2, 3});        // x1 reachable with 1, x2 with 2
  configs.b = mask_of({0, 2});           // one unit to each endpoint
  configs.c = mask_of({0, 1, 2, 3, 4});  // everything alive
  return configs;
}

GeneratedNetwork make_two_isp_scenario(const TwoIspParams& params) {
  ClusteredParams cp;
  cp.nodes_s = params.peers_per_isp;
  cp.nodes_t = params.peers_per_isp;
  cp.extra_edges_s = params.extra_links_per_isp;
  cp.extra_edges_t = params.extra_links_per_isp;
  cp.bottleneck_links = params.peering_links;
  cp.cluster_caps = {params.link_capacity, params.link_capacity};
  cp.bottleneck_caps = {params.peering_capacity, params.peering_capacity};
  cp.cluster_probs = {params.internal_failure, params.internal_failure};
  cp.bottleneck_probs = {params.peering_failure, params.peering_failure};
  cp.kind = EdgeKind::kUndirected;
  Xoshiro256 rng(params.seed);
  return clustered_bottleneck(rng, cp);
}

}  // namespace streamrel
