#include "streamrel/p2p/tree_builder.hpp"

#include <stdexcept>

namespace streamrel {

std::vector<EdgeId> add_single_tree(Overlay& overlay,
                                    const SingleTreeOptions& options) {
  if (options.fanout < 1) throw std::invalid_argument("fanout must be >= 1");
  if (options.stream_rate < 1) {
    throw std::invalid_argument("stream rate must be >= 1");
  }
  std::vector<EdgeId> edges;
  edges.reserve(static_cast<std::size_t>(overlay.num_peers()));
  for (int i = 0; i < overlay.num_peers(); ++i) {
    const NodeId parent =
        i == 0 ? overlay.server() : overlay.peer((i - 1) / options.fanout);
    edges.push_back(overlay.net().add_directed_edge(
        parent, overlay.peer(i), options.stream_rate,
        options.link_failure_prob));
  }
  return edges;
}

std::vector<std::vector<EdgeId>> add_striped_trees(
    Overlay& overlay, const StripedTreesOptions& options) {
  if (options.stripes < 1) throw std::invalid_argument("need >= 1 stripe");
  if (options.fanout < 1) throw std::invalid_argument("fanout must be >= 1");
  const int n = overlay.num_peers();
  std::vector<std::vector<EdgeId>> per_stripe;
  per_stripe.reserve(static_cast<std::size_t>(options.stripes));
  for (int stripe = 0; stripe < options.stripes; ++stripe) {
    // Rotate the peer order so interior roles move between stripes.
    const int rotation = n * stripe / options.stripes;
    auto peer_at = [&](int position) {
      return overlay.peer((position + rotation) % n);
    };
    std::vector<EdgeId> edges;
    edges.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const NodeId parent =
          i == 0 ? overlay.server() : peer_at((i - 1) / options.fanout);
      edges.push_back(overlay.net().add_directed_edge(
          parent, peer_at(i), /*capacity=*/1, options.link_failure_prob));
    }
    per_stripe.push_back(std::move(edges));
  }
  return per_stripe;
}

}  // namespace streamrel
