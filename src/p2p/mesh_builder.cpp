#include "streamrel/p2p/mesh_builder.hpp"

#include <set>
#include <stdexcept>
#include <utility>

namespace streamrel {

std::vector<EdgeId> add_random_mesh(Overlay& overlay, Xoshiro256& rng,
                                    const MeshOptions& options) {
  if (options.degree < 1 || options.server_links < 1) {
    throw std::invalid_argument("mesh needs positive degrees");
  }
  const int n = overlay.num_peers();
  if (options.server_links > n) {
    throw std::invalid_argument("more server links than peers");
  }
  std::vector<EdgeId> edges;
  std::set<std::pair<NodeId, NodeId>> used;
  const EdgeKind kind =
      options.directed ? EdgeKind::kDirected : EdgeKind::kUndirected;

  auto link = [&](NodeId a, NodeId b) {
    const auto key = options.directed
                         ? std::pair{a, b}
                         : std::pair{std::min(a, b), std::max(a, b)};
    if (used.count(key)) return;
    used.insert(key);
    edges.push_back(overlay.net().add_edge(a, b, options.link_capacity,
                                           options.link_failure_prob, kind));
  };

  // Server feeds distinct random peers.
  std::vector<int> order(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
  for (int i = n - 1; i > 0; --i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_below(static_cast<std::uint64_t>(i) + 1));
    std::swap(order[static_cast<std::size_t>(i)], order[j]);
  }
  for (int i = 0; i < options.server_links; ++i) {
    link(overlay.server(), overlay.peer(order[static_cast<std::size_t>(i)]));
  }

  // Peer-to-peer neighbour sets.
  for (int i = 0; i < n; ++i) {
    for (int d = 0; d < options.degree; ++d) {
      const int j = static_cast<int>(
          rng.uniform_below(static_cast<std::uint64_t>(n)));
      if (j == i) continue;
      link(overlay.peer(i), overlay.peer(j));
    }
  }
  return edges;
}

}  // namespace streamrel
