#include "streamrel/p2p/overlay.hpp"

#include <sstream>
#include <stdexcept>

namespace streamrel {

Overlay::Overlay(int num_peers) : num_peers_(num_peers) {
  if (num_peers < 1) throw std::invalid_argument("overlay needs >= 1 peer");
  net_ = FlowNetwork(1 + num_peers);
}

NodeId Overlay::peer(int index) const {
  if (index < 0 || index >= num_peers_) {
    throw std::invalid_argument("peer index out of range");
  }
  return 1 + index;
}

FlowDemand Overlay::demand_to(NodeId subscriber, Capacity sub_streams) const {
  if (!net_.valid_node(subscriber) || subscriber == server()) {
    throw std::invalid_argument("subscriber must be a peer node");
  }
  return FlowDemand{server(), subscriber, sub_streams};
}

std::string Overlay::summary() const {
  std::ostringstream oss;
  oss << "overlay: server + " << num_peers_ << " peers, " << net_.num_edges()
      << " links";
  return oss.str();
}

}  // namespace streamrel
