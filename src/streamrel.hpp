#pragma once
// DEPRECATED shim — the public surface moved to <streamrel/streamrel.hpp>
// (the installed header tree under include/streamrel/). This file exists
// only so pre-API-v3 client code keeps compiling; it will be removed.

#if defined(__GNUC__) || defined(__clang__)
#pragma GCC warning \
    "src/streamrel.hpp is deprecated; include <streamrel/streamrel.hpp>"
#endif

#include "streamrel/streamrel.hpp"  // IWYU pragma: export
