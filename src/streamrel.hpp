#pragma once
// StreamRel — reliability calculation of P2P streaming systems with
// bottleneck links (reproduction of Fujita, IPDPSW 2017).
//
// Umbrella header: pulls in the whole public API. Individual headers can
// be included selectively; see README.md for the architecture map.

#include "core/accumulate.hpp"          // IWYU pragma: export
#include "core/assignments.hpp"         // IWYU pragma: export
#include "core/bottleneck_algorithm.hpp"// IWYU pragma: export
#include "core/chain.hpp"               // IWYU pragma: export
#include "core/engine.hpp"              // IWYU pragma: export
#include "core/hybrid_mc.hpp"           // IWYU pragma: export
#include "core/importance.hpp"          // IWYU pragma: export
#include "core/polynomial_decomposition.hpp" // IWYU pragma: export
#include "core/shared_risk.hpp"         // IWYU pragma: export
#include "core/reliability_facade.hpp"  // IWYU pragma: export
#include "core/side_array.hpp"          // IWYU pragma: export
#include "cuts/bottleneck.hpp"          // IWYU pragma: export
#include "cuts/chain_search.hpp"        // IWYU pragma: export
#include "cuts/cut_enumeration.hpp"     // IWYU pragma: export
#include "cuts/partition_search.hpp"    // IWYU pragma: export
#include "graph/dot_export.hpp"         // IWYU pragma: export
#include "graph/flow_network.hpp"       // IWYU pragma: export
#include "graph/generators.hpp"         // IWYU pragma: export
#include "graph/graph_algos.hpp"        // IWYU pragma: export
#include "graph/io.hpp"                 // IWYU pragma: export
#include "graph/subgraph.hpp"           // IWYU pragma: export
#include "maxflow/incremental_dinic.hpp"// IWYU pragma: export
#include "maxflow/maxflow.hpp"          // IWYU pragma: export
#include "p2p/churn.hpp"                // IWYU pragma: export
#include "p2p/mesh_builder.hpp"         // IWYU pragma: export
#include "p2p/optimizer.hpp"            // IWYU pragma: export
#include "p2p/overlay.hpp"              // IWYU pragma: export
#include "p2p/scenario.hpp"             // IWYU pragma: export
#include "p2p/tree_builder.hpp"         // IWYU pragma: export
#include "reliability/bounds.hpp"       // IWYU pragma: export
#include "reliability/factoring.hpp"    // IWYU pragma: export
#include "reliability/frontier.hpp"     // IWYU pragma: export
#include "reliability/monte_carlo.hpp"  // IWYU pragma: export
#include "reliability/multicast.hpp"    // IWYU pragma: export
#include "reliability/naive.hpp"        // IWYU pragma: export
#include "reliability/node_failures.hpp"// IWYU pragma: export
#include "reliability/polynomial.hpp"   // IWYU pragma: export
#include "reliability/reductions.hpp"   // IWYU pragma: export
#include "reliability/throughput.hpp"   // IWYU pragma: export
#include "sim/availability_sim.hpp"     // IWYU pragma: export
#include "sim/link_dynamics.hpp"        // IWYU pragma: export
#include "util/exec_context.hpp"        // IWYU pragma: export
#include "util/telemetry.hpp"           // IWYU pragma: export
