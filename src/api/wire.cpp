#include "streamrel/api/wire.hpp"

#include <cmath>
#include <cstdio>
#include <map>

#include "streamrel/util/table.hpp"
#include "streamrel/version.hpp"

namespace streamrel {

namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Doubles that survive a parse round trip (shortest-ish %.17g).
std::string exact_double(double value) { return format_double(value, 17); }

/// The "id" member as rendered JSON. Scalars only: an object/array id
/// cannot be echoed deterministically by a schema-checked response.
std::string render_id(const JsonValue* v) {
  if (!v || v->is_null()) return "null";
  if (v->is_bool()) return v->as_bool() ? "true" : "false";
  if (v->is_number()) {
    const double n = v->as_number();
    if (std::floor(n) == n && std::fabs(n) <= 9.007199254740992e15) {
      return std::to_string(static_cast<long long>(n));
    }
    return exact_double(n);
  }
  if (v->is_string()) return json_quote(v->as_string());
  throw WireParseError("bad_request", "\"id\" must be a scalar");
}

/// Minimal insertion-order JSON object builder for the serializers.
class ObjectWriter {
 public:
  void member(std::string_view key, std::string_view raw_value) {
    out_ += first_ ? "\"" : ", \"";
    first_ = false;
    append_escaped(out_, key);
    out_ += "\": ";
    out_ += raw_value;
  }
  void member_str(std::string_view key, std::string_view value) {
    member(key, json_quote(value));
  }
  void member_int(std::string_view key, std::int64_t value) {
    member(key, std::to_string(value));
  }
  void member_double(std::string_view key, double value) {
    member(key, exact_double(value));
  }
  void member_bool(std::string_view key, bool value) {
    member(key, value ? "true" : "false");
  }
  std::string take() && { return "{" + std::move(out_) + "}"; }

 private:
  std::string out_;
  bool first_ = true;
};

void write_query_members(ObjectWriter& w, const WireQuery& q) {
  if (q.source) w.member_int("source", *q.source);
  if (q.sink) w.member_int("sink", *q.sink);
  if (q.rate) w.member_int("d", *q.rate);
  if (q.method != Method::kAuto) w.member_str("method", to_string(q.method));
  if (q.deadline_ms > 0.0) w.member_double("deadline_ms", q.deadline_ms);
  if (!q.overrides.empty()) {
    std::string arr = "[";
    for (std::size_t i = 0; i < q.overrides.size(); ++i) {
      if (i) arr += ", ";
      arr += "{\"edge\": " + std::to_string(q.overrides[i].edge) +
             ", \"p\": " + exact_double(q.overrides[i].failure_prob) + "}";
    }
    arr += "]";
    w.member("overrides", arr);
  }
}

void write_delta_members(ObjectWriter& w, const NetworkDelta& delta) {
  if (!delta.prob_edits.empty()) {
    std::string arr = "[";
    for (std::size_t i = 0; i < delta.prob_edits.size(); ++i) {
      if (i) arr += ", ";
      arr += "{\"edge\": " + std::to_string(delta.prob_edits[i].edge) +
             ", \"p\": " + exact_double(delta.prob_edits[i].failure_prob) +
             "}";
    }
    w.member("set_failure_prob", arr + "]");
  }
  if (!delta.capacity_edits.empty()) {
    std::string arr = "[";
    for (std::size_t i = 0; i < delta.capacity_edits.size(); ++i) {
      if (i) arr += ", ";
      arr += "{\"edge\": " + std::to_string(delta.capacity_edits[i].edge) +
             ", \"c\": " + std::to_string(delta.capacity_edits[i].capacity) +
             "}";
    }
    w.member("set_capacity", arr + "]");
  }
  if (delta.nodes_added != 0) w.member_int("add_nodes", delta.nodes_added);
  if (!delta.edge_adds.empty()) {
    std::string arr = "[";
    for (std::size_t i = 0; i < delta.edge_adds.size(); ++i) {
      const NetworkDelta::EdgeAdd& e = delta.edge_adds[i];
      if (i) arr += ", ";
      arr += "{\"u\": " + std::to_string(e.u) +
             ", \"v\": " + std::to_string(e.v) +
             ", \"c\": " + std::to_string(e.capacity) +
             ", \"p\": " + exact_double(e.failure_prob);
      if (e.kind == EdgeKind::kDirected) arr += ", \"directed\": true";
      arr += "}";
    }
    w.member("add_edge", arr + "]");
  }
  if (!delta.edge_removes.empty()) {
    std::string arr = "[";
    for (std::size_t i = 0; i < delta.edge_removes.size(); ++i) {
      if (i) arr += ", ";
      arr += std::to_string(delta.edge_removes[i]);
    }
    w.member("remove_edge", arr + "]");
  }
  if (!delta.node_removes.empty()) {
    std::string arr = "[";
    for (std::size_t i = 0; i < delta.node_removes.size(); ++i) {
      if (i) arr += ", ";
      arr += std::to_string(delta.node_removes[i]);
    }
    w.member("remove_node", arr + "]");
  }
}

std::string write_event(const ChurnEvent& event) {
  ObjectWriter w;
  w.member_double("time", event.time);
  if (!event.label.empty()) w.member_str("label", event.label);
  write_delta_members(w, event.delta);
  return std::move(w).take();
}

WireLane default_lane(WireVerb verb) noexcept {
  return (verb == WireVerb::kBatch || verb == WireVerb::kReplay)
             ? WireLane::kBulk
             : WireLane::kInteractive;
}

std::size_t parse_mask_budget(const JsonValue& v) {
  const double n = v.as_number();
  if (n < 0.0 || n != std::floor(n)) {
    throw std::invalid_argument("\"max_mask_tables\" must be a whole number");
  }
  return static_cast<std::size_t>(n);
}

}  // namespace

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  append_escaped(out, s);
  out += '"';
  return out;
}

void append_json_member(std::string& object_json, std::string_view key,
                        std::string_view value_json) {
  if (object_json.size() < 2 || object_json.back() != '}') object_json = "{}";
  object_json.pop_back();
  if (object_json.size() > 1) object_json += ", ";
  object_json += '"';
  append_escaped(object_json, key);
  object_json += "\": ";
  object_json += value_json;
  object_json += '}';
}

std::string_view to_string(WireVerb verb) noexcept {
  switch (verb) {
    case WireVerb::kRegisterNetwork: return "register_network";
    case WireVerb::kSolve: return "solve";
    case WireVerb::kBatch: return "batch";
    case WireVerb::kApplyDelta: return "apply_delta";
    case WireVerb::kReplay: return "replay";
    case WireVerb::kStats: return "stats";
    case WireVerb::kMetrics: return "metrics";
    case WireVerb::kDump: return "dump";
    case WireVerb::kPersist: return "persist";
    case WireVerb::kRestore: return "restore";
    case WireVerb::kShutdown: return "shutdown";
  }
  return "unknown";
}

bool parse_wire_verb(std::string_view name, WireVerb* out) noexcept {
  if (name == "register_network") {
    *out = WireVerb::kRegisterNetwork;
  } else if (name == "solve") {
    *out = WireVerb::kSolve;
  } else if (name == "batch") {
    *out = WireVerb::kBatch;
  } else if (name == "apply_delta") {
    *out = WireVerb::kApplyDelta;
  } else if (name == "replay") {
    *out = WireVerb::kReplay;
  } else if (name == "stats") {
    *out = WireVerb::kStats;
  } else if (name == "metrics") {
    *out = WireVerb::kMetrics;
  } else if (name == "dump") {
    *out = WireVerb::kDump;
  } else if (name == "persist") {
    *out = WireVerb::kPersist;
  } else if (name == "restore") {
    *out = WireVerb::kRestore;
  } else if (name == "shutdown") {
    *out = WireVerb::kShutdown;
  } else {
    return false;
  }
  return true;
}

std::string_view to_string(WireLane lane) noexcept {
  return lane == WireLane::kInteractive ? "interactive" : "bulk";
}

bool parse_method_name(std::string_view name, Method* out) noexcept {
  if (name == "auto") {
    *out = Method::kAuto;
  } else if (name == "naive") {
    *out = Method::kNaive;
  } else if (name == "factoring") {
    *out = Method::kFactoring;
  } else if (name == "bottleneck") {
    *out = Method::kBottleneck;
  } else if (name == "frontier") {
    *out = Method::kFrontier;
  } else if (name == "hybrid") {
    *out = Method::kHybridMc;
  } else {
    return false;
  }
  return true;
}

WireQuery parse_wire_query(const JsonValue& obj) {
  WireQuery q;
  if (const JsonValue* v = obj.find("source")) {
    q.source = static_cast<NodeId>(v->as_number());
  }
  if (const JsonValue* v = obj.find("sink")) {
    q.sink = static_cast<NodeId>(v->as_number());
  }
  if (const JsonValue* v = obj.find("d")) {
    q.rate = static_cast<Capacity>(v->as_number());
  }
  if (const JsonValue* v = obj.find("deadline_ms")) {
    q.deadline_ms = v->as_number();
  }
  if (const JsonValue* v = obj.find("method")) {
    if (!parse_method_name(v->as_string(), &q.method)) {
      throw WireParseError(
          "bad_request", "unknown method '" + v->as_string() + "' in batch file");
    }
  }
  if (const JsonValue* v = obj.find("overrides")) {
    for (const JsonValue& o : v->as_array()) {
      const JsonValue* edge = o.find("edge");
      const JsonValue* p = o.find("p");
      if (!edge || !p) {
        throw WireParseError("bad_request",
                             "override needs \"edge\" and \"p\" members");
      }
      q.overrides.push_back(ProbOverride{
          static_cast<EdgeId>(edge->as_number()), p->as_number()});
    }
  }
  return q;
}

WireRequest parse_wire_request(std::string_view line) {
  JsonValue doc;
  try {
    doc = parse_json(line);
  } catch (const std::invalid_argument& e) {
    throw WireParseError("parse_error", e.what());
  }
  if (!doc.is_object()) {
    throw WireParseError("bad_request", "request must be a JSON object");
  }

  WireRequest req;
  req.id_json = render_id(doc.find("id"));

  const JsonValue* version = doc.find("v");
  if (!version || !version->is_number()) {
    throw WireParseError("bad_request",
                         "missing \"v\" (wire schema version)", req.id_json);
  }
  req.version = static_cast<int>(version->as_number());
  if (req.version != kWireSchemaVersion) {
    throw WireParseError(
        "unsupported_version",
        "unsupported wire schema version " + std::to_string(req.version) +
            " (this build speaks " + std::to_string(kWireSchemaVersion) + ")",
        req.id_json);
  }

  const JsonValue* verb = doc.find("verb");
  if (!verb || !verb->is_string()) {
    throw WireParseError("bad_request", "missing \"verb\"", req.id_json);
  }
  if (!parse_wire_verb(verb->as_string(), &req.verb)) {
    throw WireParseError("unknown_verb",
                         "unknown verb '" + verb->as_string() + "'",
                         req.id_json);
  }

  try {
    if (const JsonValue* t = doc.find("tenant")) req.tenant = t->as_string();
    if (const JsonValue* n = doc.find("network_id")) {
      req.network_id = n->as_string();
    }
    req.lane = default_lane(req.verb);
    if (const JsonValue* lane = doc.find("lane")) {
      const std::string& name = lane->as_string();
      if (name == "interactive") {
        req.lane = WireLane::kInteractive;
      } else if (name == "bulk") {
        req.lane = WireLane::kBulk;
      } else {
        throw std::invalid_argument("unknown lane '" + name + "'");
      }
    }
    if (const JsonValue* v = doc.find("deadline_ms")) {
      req.deadline_ms = v->as_number();
    }
    if (const JsonValue* v = doc.find("max_threads")) {
      req.max_threads = static_cast<int>(v->as_number());
    }
    if (const JsonValue* v = doc.find("telemetry")) {
      req.want_telemetry = v->as_bool();
    }
    if (const JsonValue* v = doc.find("trace")) req.want_trace = v->as_bool();

    switch (req.verb) {
      case WireVerb::kRegisterNetwork: {
        const JsonValue* net = doc.find("network");
        if (!net) {
          throw std::invalid_argument(
              "register_network needs a \"network\" member (.net text)");
        }
        req.network_text = net->as_string();
        req.query = parse_wire_query(doc);
        if (const JsonValue* v = doc.find("max_mask_tables")) {
          req.max_mask_tables = parse_mask_budget(*v);
        }
        break;
      }
      case WireVerb::kSolve:
        req.query = parse_wire_query(doc);
        break;
      case WireVerb::kBatch: {
        const JsonValue* qs = doc.find("queries");
        if (!qs || !qs->is_array()) {
          throw std::invalid_argument("batch needs a \"queries\" array");
        }
        req.queries.reserve(qs->as_array().size());
        for (const JsonValue& entry : qs->as_array()) {
          req.queries.push_back(parse_wire_query(entry));
        }
        if (const JsonValue* v = doc.find("max_mask_tables")) {
          req.max_mask_tables = parse_mask_budget(*v);
        }
        break;
      }
      case WireVerb::kApplyDelta:
        req.delta = parse_delta_json(doc);
        break;
      case WireVerb::kReplay: {
        const JsonValue* ev = doc.find("events");
        if (!ev || !ev->is_array()) {
          throw std::invalid_argument("replay needs an \"events\" array");
        }
        req.events.reserve(ev->as_array().size());
        for (const JsonValue& entry : ev->as_array()) {
          req.events.push_back(parse_churn_event(entry));
        }
        if (const JsonValue* v = doc.find("cold")) req.cold = v->as_bool();
        break;
      }
      case WireVerb::kDump:
        if (const JsonValue* v = doc.find("path")) {
          req.dump_path = v->as_string();
        }
        break;
      case WireVerb::kStats:
      case WireVerb::kMetrics:
      case WireVerb::kPersist:
      case WireVerb::kRestore:
      case WireVerb::kShutdown:
        break;
    }
  } catch (const WireParseError& e) {
    throw WireParseError(e.code(), e.what(), req.id_json,
                         std::string(to_string(req.verb)));
  } catch (const std::invalid_argument& e) {
    throw WireParseError("bad_request", e.what(), req.id_json,
                         std::string(to_string(req.verb)));
  }
  return req;
}

WireRequest parse_batch_file(std::string_view text) {
  const JsonValue doc = parse_json(text);
  const JsonValue* list = doc.is_array() ? &doc : doc.find("queries");
  if (!list || !list->is_array()) {
    throw WireParseError(
        "bad_request", "batch file needs a top-level array or a \"queries\" key");
  }
  WireRequest req;
  req.verb = WireVerb::kBatch;
  req.lane = WireLane::kBulk;
  req.queries.reserve(list->as_array().size());
  for (const JsonValue& entry : list->as_array()) {
    req.queries.push_back(parse_wire_query(entry));
  }
  if (const JsonValue* v = doc.find("max_mask_tables")) {
    req.max_mask_tables = parse_mask_budget(*v);
  }
  return req;
}

std::string serialize_wire_request(const WireRequest& request) {
  ObjectWriter w;
  w.member_int("v", request.version);
  w.member("id", request.id_json);
  w.member_str("verb", to_string(request.verb));
  if (request.tenant != "default") w.member_str("tenant", request.tenant);
  if (request.network_id != "default") {
    w.member_str("network_id", request.network_id);
  }
  if (request.lane != default_lane(request.verb)) {
    w.member_str("lane", to_string(request.lane));
  }
  if (request.deadline_ms > 0.0) {
    w.member_double("deadline_ms", request.deadline_ms);
  }
  if (request.max_threads != 0) w.member_int("max_threads", request.max_threads);
  if (request.want_telemetry) w.member_bool("telemetry", true);
  if (request.want_trace) w.member_bool("trace", true);

  switch (request.verb) {
    case WireVerb::kRegisterNetwork:
      w.member_str("network", request.network_text);
      write_query_members(w, request.query);
      if (request.max_mask_tables) {
        w.member_int("max_mask_tables",
                     static_cast<std::int64_t>(*request.max_mask_tables));
      }
      break;
    case WireVerb::kSolve:
      write_query_members(w, request.query);
      break;
    case WireVerb::kBatch: {
      std::string arr = "[";
      for (std::size_t i = 0; i < request.queries.size(); ++i) {
        if (i) arr += ", ";
        ObjectWriter qw;
        write_query_members(qw, request.queries[i]);
        arr += std::move(qw).take();
      }
      w.member("queries", arr + "]");
      if (request.max_mask_tables) {
        w.member_int("max_mask_tables",
                     static_cast<std::int64_t>(*request.max_mask_tables));
      }
      break;
    }
    case WireVerb::kApplyDelta:
      write_delta_members(w, request.delta);
      break;
    case WireVerb::kReplay: {
      std::string arr = "[";
      for (std::size_t i = 0; i < request.events.size(); ++i) {
        if (i) arr += ", ";
        arr += write_event(request.events[i]);
      }
      w.member("events", arr + "]");
      if (request.cold) w.member_bool("cold", true);
      break;
    }
    case WireVerb::kDump:
      if (!request.dump_path.empty()) w.member_str("path", request.dump_path);
      break;
    case WireVerb::kStats:
    case WireVerb::kMetrics:
    case WireVerb::kPersist:
    case WireVerb::kRestore:
    case WireVerb::kShutdown:
      break;
  }
  return std::move(w).take();
}

std::string serialize_wire_response(const WireResponse& response) {
  std::string out = "{\"v\": " + std::to_string(kWireSchemaVersion) +
                    ", \"id\": " + response.id_json +
                    ", \"verb\": " + json_quote(response.verb) +
                    ", \"ok\": " + (response.ok ? "true" : "false");
  if (response.ok) {
    out += ", \"result\": " + response.result_json;
  } else {
    out += ", \"error\": {\"code\": " + json_quote(response.error_code) +
           ", \"message\": " + json_quote(response.error_message) + "}";
  }
  out += "}";
  return out;
}

WireResponse make_wire_error(std::string id_json, std::string_view verb,
                             std::string_view code, std::string_view message) {
  WireResponse resp;
  resp.id_json = std::move(id_json);
  resp.verb.assign(verb);
  resp.ok = false;
  resp.error_code.assign(code);
  resp.error_message.assign(message);
  resp.result_json.clear();
  return resp;
}

// --- renderers ---------------------------------------------------------

std::string render_batch_query_line(std::size_t index,
                                    const FlowDemand& demand,
                                    const SolveReport& report) {
  std::string out = "{\"query\": " + std::to_string(index) +
                    ", \"source\": " + std::to_string(demand.source) +
                    ", \"sink\": " + std::to_string(demand.sink) +
                    ", \"d\": " + std::to_string(demand.rate) +
                    ", \"reliability\": " +
                    format_double(report.result.reliability, 10) +
                    ", \"status\": \"" +
                    std::string(to_string(report.result.status)) +
                    "\", \"method\": \"" +
                    std::string(to_string(report.method_used)) +
                    "\", \"engine\": \"" + std::string(report.engine) + "\"";
  if (report.bounds) {
    out += ", \"bounds\": {\"lower\": " +
           format_double(report.bounds->lower, 10) +
           ", \"upper\": " + format_double(report.bounds->upper, 10) + "}";
  }
  out += "}";
  return out;
}

std::string render_batch_summary(const BatchReport& batch,
                                 std::uint64_t cache_hits,
                                 std::uint64_t cache_misses,
                                 std::uint64_t cache_evictions,
                                 double elapsed_ms) {
  // Engines that actually answered (post-kAuto resolution), by count.
  std::map<std::string, int> engines;
  for (const SolveReport& report : batch.reports) {
    engines[std::string(report.engine)]++;
  }
  std::string out =
      "{\"summary\": {\"api_version\": " +
      std::to_string(STREAMREL_API_VERSION) +
      ", \"queries\": " + std::to_string(batch.reports.size()) +
      ", \"exact\": " + std::to_string(batch.exact_count) +
      ", \"cache_hits\": " + std::to_string(cache_hits) +
      ", \"cache_misses\": " + std::to_string(cache_misses) +
      ", \"cache_evictions\": " + std::to_string(cache_evictions) +
      ", \"elapsed_ms\": " + format_double(elapsed_ms, 4) + ", \"engines\": {";
  bool first = true;
  for (const auto& [engine, count] : engines) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + engine + "\": " + std::to_string(count);
  }
  out += "}, \"telemetry\": " + batch.telemetry.to_json() + "}}";
  return out;
}

std::string render_replay_initial_line(double reliability) {
  return "{\"t\": 0, \"reliability\": " + format_double(reliability, 10) + "}";
}

std::string render_replay_event_line(const ReplayEventOutcome& outcome) {
  std::string out = "{\"t\": " + format_double(outcome.time, 6) +
                    ", \"label\": \"";
  append_escaped(out, outcome.label);
  out += "\", \"class\": \"" + std::string(to_string(outcome.applied)) +
         "\", \"reliability\": " + format_double(outcome.reliability, 10) +
         ", \"delta_r\": " + format_double(outcome.delta_r, 10) +
         ", \"cache\": {\"full\": " + std::to_string(outcome.entries_full) +
         ", \"partial\": " + std::to_string(outcome.entries_partial) +
         ", \"survived\": " + std::to_string(outcome.entries_survived) + "}}";
  return out;
}

std::string render_replay_summary(const ReplayReport& report, bool warm,
                                  double elapsed_ms) {
  std::string out = "{\"summary\": {\"mode\": \"";
  out += warm ? "warm" : "cold";
  out += "\", \"events\": " + std::to_string(report.series.size()) +
         ", \"final_reliability\": " +
         format_double(report.final_reliability, 10) +
         ", \"worst_event\": " + std::to_string(report.worst_event);
  if (report.worst_event >= 0) {
    out += ", \"worst_label\": \"";
    append_escaped(
        out, report.series[static_cast<std::size_t>(report.worst_event)].label);
    out += "\"";
  }
  out += ", \"artifact_survival_rate\": " +
         format_double(report.artifact_survival_rate, 6) +
         ", \"elapsed_ms\": " + format_double(elapsed_ms, 4) + "}}";
  return out;
}

std::string render_solve_result(const SolveReport& report, double elapsed_ms,
                                bool include_telemetry,
                                std::string_view extra_members) {
  std::string out =
      "{\"reliability\": " + format_double(report.result.reliability, 10) +
      ", \"status\": \"" + std::string(to_string(report.result.status)) +
      "\", \"method\": \"" + std::string(to_string(report.method_used)) +
      "\", \"engine\": \"" + std::string(report.engine) +
      "\", \"links_reduced\": " + std::to_string(report.links_reduced) +
      ", \"elapsed_ms\": " + format_double(elapsed_ms, 4);
  if (report.bounds) {
    out += ", \"bounds\": {\"lower\": " +
           format_double(report.bounds->lower, 10) +
           ", \"upper\": " + format_double(report.bounds->upper, 10) + "}";
  }
  if (include_telemetry) {
    out += ", \"telemetry\": " + report.result.telemetry.to_json();
  }
  out.append(extra_members);
  out += "}";
  return out;
}

}  // namespace streamrel
