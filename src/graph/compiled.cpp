#include "streamrel/graph/compiled.hpp"

#include <atomic>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "streamrel/util/trace.hpp"

namespace streamrel {

std::uint64_t CompiledNetwork::next_structure_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::shared_ptr<const CompiledNetwork> CompiledNetwork::compile(
    const FlowNetwork& net) {
  const auto num_edges = static_cast<std::size_t>(net.num_edges());
  auto topology = std::make_shared<Topology>();
  topology->num_nodes = net.num_nodes();
  topology->u.reserve(num_edges);
  topology->v.reserve(num_edges);
  topology->kind.reserve(num_edges);
  auto structure = std::make_shared<Structure>();
  structure->capacity.reserve(num_edges);
  for (const Edge& e : net.edges()) {
    topology->u.push_back(e.u);
    topology->v.push_back(e.v);
    topology->kind.push_back(e.kind);
    structure->capacity.push_back(e.capacity);
  }
  topology->offsets.reserve(static_cast<std::size_t>(net.num_nodes()) + 1);
  topology->offsets.push_back(0);
  topology->incident.reserve(2 * num_edges);
  for (NodeId n = 0; n < net.num_nodes(); ++n) {
    const std::vector<EdgeId>& inc = net.incident_edges(n);
    topology->incident.insert(topology->incident.end(), inc.begin(),
                              inc.end());
    topology->offsets.push_back(topology->incident.size());
  }
  structure->topology = std::move(topology);
  structure->id = next_structure_id();

  auto compiled = std::shared_ptr<CompiledNetwork>(new CompiledNetwork());
  compiled->structure_ = std::move(structure);
  compiled->failure_prob_.reserve(num_edges);
  compiled->log_failure_.reserve(num_edges);
  compiled->log_survival_.reserve(num_edges);
  for (const Edge& e : net.edges()) {
    compiled->failure_prob_.push_back(e.failure_prob);
    compiled->log_failure_.push_back(
        e.failure_prob > 0.0 ? std::log(e.failure_prob)
                             : -std::numeric_limits<double>::infinity());
    compiled->log_survival_.push_back(std::log1p(-e.failure_prob));
  }
  return compiled;
}

std::shared_ptr<const CompiledNetwork> CompiledNetwork::from_parts(
    Topology topology, std::vector<Capacity> capacity,
    std::vector<double> failure_prob, std::vector<double> log_failure,
    std::vector<double> log_survival) {
  const std::size_t num_edges = topology.u.size();
  if (topology.num_nodes < 0 || topology.v.size() != num_edges ||
      topology.kind.size() != num_edges ||
      topology.offsets.size() !=
          static_cast<std::size_t>(topology.num_nodes) + 1 ||
      capacity.size() != num_edges || failure_prob.size() != num_edges ||
      log_failure.size() != num_edges || log_survival.size() != num_edges) {
    throw std::invalid_argument("from_parts: column length mismatch");
  }
  auto structure = std::make_shared<Structure>();
  structure->topology = std::make_shared<Topology>(std::move(topology));
  structure->capacity = std::move(capacity);
  structure->id = next_structure_id();
  structure->parent_id = 0;

  auto compiled = std::shared_ptr<CompiledNetwork>(new CompiledNetwork());
  compiled->structure_ = std::move(structure);
  compiled->failure_prob_ = std::move(failure_prob);
  compiled->log_failure_ = std::move(log_failure);
  compiled->log_survival_ = std::move(log_survival);
  return compiled;
}

std::shared_ptr<const CompiledNetwork> CompiledNetwork::with_failure_prob(
    EdgeId id, double p) const {
  if (!valid_edge(id)) {
    throw std::invalid_argument("with_failure_prob: bad edge id");
  }
  if (!(p >= 0.0) || !(p < 1.0)) {
    throw std::invalid_argument(
        "with_failure_prob: failure probability not in [0,1)");
  }
  auto overlay = std::shared_ptr<CompiledNetwork>(new CompiledNetwork());
  overlay->structure_ = structure_;  // shared, same structure_id()
  overlay->failure_prob_ = failure_prob_;
  overlay->log_failure_ = log_failure_;
  overlay->log_survival_ = log_survival_;
  const auto i = static_cast<std::size_t>(id);
  overlay->failure_prob_[i] = p;
  overlay->log_failure_[i] =
      p > 0.0 ? std::log(p) : -std::numeric_limits<double>::infinity();
  overlay->log_survival_[i] = std::log1p(-p);
  return overlay;
}

std::shared_ptr<const CompiledNetwork> CompiledNetwork::with_failure_probs(
    std::span<const double> probs) const {
  if (probs.size() != failure_prob_.size()) {
    throw std::invalid_argument(
        "with_failure_probs: probability column size mismatch");
  }
  auto overlay = std::shared_ptr<CompiledNetwork>(new CompiledNetwork());
  overlay->structure_ = structure_;  // shared, same structure_id()
  overlay->failure_prob_.assign(probs.begin(), probs.end());
  overlay->log_failure_.reserve(probs.size());
  overlay->log_survival_.reserve(probs.size());
  for (std::size_t i = 0; i < probs.size(); ++i) {
    const double p = probs[i];
    if (!(p >= 0.0) || !(p < 1.0)) {
      throw std::invalid_argument(
          "with_failure_probs: failure probability not in [0,1)");
    }
    if (p == failure_prob_[i]) {
      // Unchanged entry: copy the derived logs bit-for-bit rather than
      // re-deriving them (same bits either way; cheaper, and keeps the
      // overlay honest as a pure re-sync).
      overlay->log_failure_.push_back(log_failure_[i]);
      overlay->log_survival_.push_back(log_survival_[i]);
    } else {
      overlay->log_failure_.push_back(
          p > 0.0 ? std::log(p) : -std::numeric_limits<double>::infinity());
      overlay->log_survival_.push_back(std::log1p(-p));
    }
  }
  return overlay;
}

std::shared_ptr<const CompiledNetwork> FlowNetwork::compile() const {
  return CompiledNetwork::compile(*this);
}

NetworkView::NetworkView(std::shared_ptr<const CompiledNetwork> snapshot)
    : snapshot_(std::move(snapshot)) {
  const int n = snapshot_->num_nodes();
  const int m = snapshot_->num_edges();
  node_map_.resize(static_cast<std::size_t>(n));
  node_to_view_.resize(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i) {
    node_map_[static_cast<std::size_t>(i)] = i;
    node_to_view_[static_cast<std::size_t>(i)] = i;
  }
  edge_map_.resize(static_cast<std::size_t>(m));
  edge_to_view_.resize(static_cast<std::size_t>(m));
  for (EdgeId i = 0; i < m; ++i) {
    edge_map_[static_cast<std::size_t>(i)] = i;
    edge_to_view_[static_cast<std::size_t>(i)] = i;
  }
}

NetworkView::NetworkView(std::shared_ptr<const CompiledNetwork> snapshot,
                         const std::vector<bool>& in_side)
    : snapshot_(std::move(snapshot)) {
  if (in_side.size() != static_cast<std::size_t>(snapshot_->num_nodes())) {
    throw std::invalid_argument("NetworkView: side vector size mismatch");
  }
  TraceSpan span("network_view");
  // Same dense, id-ordered numbering as induced_subgraph: nodes first,
  // then edges with both endpoints inside, in original-id order.
  node_to_view_.assign(in_side.size(), kInvalidNode);
  for (NodeId n = 0; n < snapshot_->num_nodes(); ++n) {
    if (in_side[static_cast<std::size_t>(n)]) {
      node_to_view_[static_cast<std::size_t>(n)] =
          static_cast<NodeId>(node_map_.size());
      node_map_.push_back(n);
    }
  }
  edge_to_view_.assign(static_cast<std::size_t>(snapshot_->num_edges()),
                       kInvalidEdge);
  for (EdgeId id = 0; id < snapshot_->num_edges(); ++id) {
    const NodeId su = node_to_view_[static_cast<std::size_t>(
        snapshot_->edge_u(id))];
    const NodeId sv = node_to_view_[static_cast<std::size_t>(
        snapshot_->edge_v(id))];
    if (su == kInvalidNode || sv == kInvalidNode) continue;
    edge_to_view_[static_cast<std::size_t>(id)] =
        static_cast<EdgeId>(edge_map_.size());
    edge_map_.push_back(id);
  }
  span.arg("nodes", num_nodes());
  span.arg("links", num_edges());
}

std::vector<double> NetworkView::failure_probs() const {
  std::vector<double> out;
  out.reserve(edge_map_.size());
  for (EdgeId original : edge_map_) {
    out.push_back(snapshot_->failure_prob(original));
  }
  return out;
}

Mask NetworkView::project_mask(Mask original_alive) const {
  Mask out = 0;
  for (std::size_t vid = 0; vid < edge_map_.size(); ++vid) {
    if (test_bit(original_alive, edge_map_[vid])) {
      out |= bit(static_cast<int>(vid));
    }
  }
  return out;
}

Mask NetworkView::lift_mask(Mask view_alive) const {
  Mask out = 0;
  for (std::size_t vid = 0; vid < edge_map_.size(); ++vid) {
    if (test_bit(view_alive, static_cast<int>(vid))) {
      out |= bit(edge_map_[vid]);
    }
  }
  return out;
}

}  // namespace streamrel
