#include "streamrel/graph/graph_algos.hpp"

#include <algorithm>
#include <stdexcept>

namespace streamrel {

namespace {

// Shared BFS. `alive(id)` filters edges; `respect_direction` limits
// directed-edge traversal to tail -> head.
template <typename AliveFn>
std::vector<bool> bfs(const FlowNetwork& net, NodeId from, AliveFn alive,
                      bool respect_direction) {
  if (!net.valid_node(from)) throw std::invalid_argument("bad start node");
  std::vector<bool> seen(static_cast<std::size_t>(net.num_nodes()), false);
  std::vector<NodeId> queue;
  queue.reserve(static_cast<std::size_t>(net.num_nodes()));
  seen[static_cast<std::size_t>(from)] = true;
  queue.push_back(from);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId n = queue[head];
    for (EdgeId id : net.incident_edges(n)) {
      if (!alive(id)) continue;
      const Edge& e = net.edge(id);
      if (respect_direction && e.directed() && e.u != n) continue;
      const NodeId next = e.other(n);
      if (!seen[static_cast<std::size_t>(next)]) {
        seen[static_cast<std::size_t>(next)] = true;
        queue.push_back(next);
      }
    }
  }
  return seen;
}

}  // namespace

std::vector<bool> reachable_nodes(const FlowNetwork& net, NodeId from,
                                  bool respect_direction) {
  return bfs(
      net, from, [](EdgeId) { return true; }, respect_direction);
}

std::vector<bool> reachable_nodes_masked(const FlowNetwork& net, NodeId from,
                                         Mask alive, bool respect_direction) {
  if (!net.fits_mask()) {
    throw std::invalid_argument("network too large for edge masks");
  }
  return bfs(
      net, from, [alive](EdgeId id) { return test_bit(alive, id); },
      respect_direction);
}

namespace {

template <typename AliveFn>
Components components_impl(const FlowNetwork& net, AliveFn alive) {
  Components comps;
  comps.id.assign(static_cast<std::size_t>(net.num_nodes()), -1);
  std::vector<NodeId> queue;
  for (NodeId root = 0; root < net.num_nodes(); ++root) {
    if (comps.id[static_cast<std::size_t>(root)] != -1) continue;
    const int cid = comps.count++;
    comps.id[static_cast<std::size_t>(root)] = cid;
    queue.clear();
    queue.push_back(root);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const NodeId n = queue[head];
      for (EdgeId id : net.incident_edges(n)) {
        if (!alive(id)) continue;
        const NodeId next = net.edge(id).other(n);
        if (comps.id[static_cast<std::size_t>(next)] == -1) {
          comps.id[static_cast<std::size_t>(next)] = cid;
          queue.push_back(next);
        }
      }
    }
  }
  return comps;
}

}  // namespace

Components connected_components(const FlowNetwork& net) {
  return components_impl(net, [](EdgeId) { return true; });
}

Components connected_components_masked(const FlowNetwork& net, Mask alive) {
  if (!net.fits_mask()) {
    throw std::invalid_argument("network too large for edge masks");
  }
  return components_impl(net,
                         [alive](EdgeId id) { return test_bit(alive, id); });
}

bool removal_disconnects(const FlowNetwork& net, NodeId s, NodeId t,
                         const std::vector<EdgeId>& removed,
                         bool respect_direction) {
  if (!net.valid_node(s) || !net.valid_node(t)) {
    throw std::invalid_argument("bad endpoints");
  }
  std::vector<bool> gone(static_cast<std::size_t>(net.num_edges()), false);
  for (EdgeId id : removed) {
    if (!net.valid_edge(id)) throw std::invalid_argument("bad edge id");
    gone[static_cast<std::size_t>(id)] = true;
  }
  const auto seen = bfs(
      net, s, [&gone](EdgeId id) { return !gone[static_cast<std::size_t>(id)]; },
      respect_direction);
  return !seen[static_cast<std::size_t>(t)];
}

std::vector<EdgeId> find_bridges(const FlowNetwork& net) {
  const auto n = static_cast<std::size_t>(net.num_nodes());
  std::vector<int> disc(n, -1);
  std::vector<int> low(n, -1);
  std::vector<EdgeId> bridges;
  int timer = 0;

  // Iterative DFS; each stack frame remembers which incident edge index
  // to resume from and the edge used to enter the node (so one copy of a
  // parallel pair is not treated as the tree edge twice).
  struct Frame {
    NodeId node;
    EdgeId in_edge;
    std::size_t next_idx;
  };
  std::vector<Frame> stack;

  for (NodeId root = 0; root < net.num_nodes(); ++root) {
    if (disc[static_cast<std::size_t>(root)] != -1) continue;
    stack.push_back({root, kInvalidEdge, 0});
    disc[static_cast<std::size_t>(root)] = low[static_cast<std::size_t>(root)] = timer++;
    while (!stack.empty()) {
      Frame& fr = stack.back();
      const auto& inc = net.incident_edges(fr.node);
      if (fr.next_idx < inc.size()) {
        const EdgeId id = inc[fr.next_idx++];
        if (id == fr.in_edge) continue;  // don't reuse the entry edge
        const Edge& e = net.edge(id);
        const NodeId next = e.other(fr.node);
        const auto ni = static_cast<std::size_t>(next);
        if (disc[ni] == -1) {
          disc[ni] = low[ni] = timer++;
          stack.push_back({next, id, 0});
        } else {
          low[static_cast<std::size_t>(fr.node)] =
              std::min(low[static_cast<std::size_t>(fr.node)], disc[ni]);
        }
      } else {
        const Frame done = fr;
        stack.pop_back();
        if (!stack.empty()) {
          const auto pi = static_cast<std::size_t>(stack.back().node);
          const auto ci = static_cast<std::size_t>(done.node);
          low[pi] = std::min(low[pi], low[ci]);
          if (low[ci] > disc[pi]) bridges.push_back(done.in_edge);
        }
      }
    }
  }
  std::sort(bridges.begin(), bridges.end());
  return bridges;
}

}  // namespace streamrel
