#include "streamrel/graph/flow_network.hpp"

#include <sstream>
#include <stdexcept>

namespace streamrel {

FlowNetwork::FlowNetwork(int num_nodes) {
  if (num_nodes < 0) throw std::invalid_argument("negative node count");
  num_nodes_ = num_nodes;
  incident_.resize(static_cast<std::size_t>(num_nodes));
}

NodeId FlowNetwork::add_node() {
  incident_.emplace_back();
  return num_nodes_++;
}

NodeId FlowNetwork::add_nodes(int count) {
  if (count <= 0) throw std::invalid_argument("add_nodes: count must be > 0");
  const NodeId first = num_nodes_;
  for (int i = 0; i < count; ++i) add_node();
  return first;
}

EdgeId FlowNetwork::add_edge(NodeId u, NodeId v, Capacity capacity,
                             double failure_prob, EdgeKind kind) {
  if (!valid_node(u) || !valid_node(v)) {
    throw std::invalid_argument("add_edge: endpoint out of range");
  }
  if (u == v) throw std::invalid_argument("add_edge: self-loops not allowed");
  if (capacity < 0) throw std::invalid_argument("add_edge: negative capacity");
  if (!(failure_prob >= 0.0) || !(failure_prob < 1.0)) {
    throw std::invalid_argument("add_edge: failure probability not in [0,1)");
  }
  const EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{u, v, capacity, failure_prob, kind});
  incident_[static_cast<std::size_t>(u)].push_back(id);
  incident_[static_cast<std::size_t>(v)].push_back(id);
  return id;
}

void FlowNetwork::set_failure_prob(EdgeId id, double p) {
  if (!valid_edge(id)) throw std::invalid_argument("bad edge id");
  if (!(p >= 0.0) || !(p < 1.0)) {
    throw std::invalid_argument("failure probability not in [0,1)");
  }
  edges_[static_cast<std::size_t>(id)].failure_prob = p;
}

void FlowNetwork::set_capacity(EdgeId id, Capacity c) {
  if (!valid_edge(id)) throw std::invalid_argument("bad edge id");
  if (c < 0) throw std::invalid_argument("negative capacity");
  edges_[static_cast<std::size_t>(id)].capacity = c;
}

Mask FlowNetwork::all_edges_mask() const {
  if (!fits_mask()) {
    throw std::invalid_argument(
        "network has more than 63 edges; exhaustive masks unavailable");
  }
  return full_mask(num_edges());
}

std::vector<double> FlowNetwork::failure_probs() const {
  std::vector<double> out;
  out.reserve(edges_.size());
  for (const Edge& e : edges_) out.push_back(e.failure_prob);
  return out;
}

Capacity FlowNetwork::total_capacity(const std::vector<EdgeId>& ids) const {
  Capacity total = 0;
  for (EdgeId id : ids) {
    if (!valid_edge(id)) throw std::invalid_argument("bad edge id");
    total += edge(id).capacity;
  }
  return total;
}

void FlowNetwork::check_demand(const FlowDemand& demand) const {
  if (!valid_node(demand.source) || !valid_node(demand.sink)) {
    throw std::invalid_argument("demand endpoints out of range");
  }
  if (demand.source == demand.sink) {
    throw std::invalid_argument("demand source equals sink");
  }
  if (demand.rate <= 0) {
    throw std::invalid_argument("demand rate must be positive");
  }
}

std::string FlowNetwork::summary() const {
  int directed = 0;
  for (const Edge& e : edges_) directed += e.directed() ? 1 : 0;
  std::ostringstream oss;
  oss << num_nodes_ << " nodes, " << num_edges() << " edges";
  if (directed == 0) {
    oss << " (undirected)";
  } else if (directed == num_edges()) {
    oss << " (directed)";
  } else {
    oss << " (" << directed << " directed, " << (num_edges() - directed)
        << " undirected)";
  }
  return oss.str();
}

}  // namespace streamrel
