#include "streamrel/graph/dot_export.hpp"

#include <algorithm>
#include <sstream>

#include "streamrel/util/table.hpp"

namespace streamrel {

std::string to_dot(const FlowNetwork& net, const DotOptions& options) {
  bool any_directed = false;
  for (const Edge& e : net.edges()) any_directed |= e.directed();

  std::ostringstream os;
  os << (any_directed ? "digraph" : "graph") << " streamrel {\n";
  os << "  rankdir=LR;\n  node [shape=circle];\n";
  for (NodeId n = 0; n < net.num_nodes(); ++n) {
    os << "  n" << n << " [label=\"" << n << "\"";
    if (n == options.source || n == options.sink) {
      os << ", shape=doublecircle";
    }
    if (!options.side_s.empty() &&
        options.side_s[static_cast<std::size_t>(n)]) {
      os << ", style=filled, fillcolor=lightgray";
    }
    os << "];\n";
  }
  const char* connector = any_directed ? " -> " : " -- ";
  for (EdgeId id = 0; id < net.num_edges(); ++id) {
    const Edge& e = net.edge(id);
    os << "  n" << e.u << connector << "n" << e.v << " [label=\"e" << id
       << ": c=" << e.capacity;
    if (options.show_probabilities) {
      os << ", p=" << format_double(e.failure_prob, 3);
    }
    os << "\"";
    if (any_directed && !e.directed()) os << ", dir=none";
    if (std::find(options.highlight.begin(), options.highlight.end(), id) !=
        options.highlight.end()) {
      os << ", color=red, penwidth=2.0";
    }
    os << "];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace streamrel
