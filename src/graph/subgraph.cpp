#include "streamrel/graph/subgraph.hpp"

#include <stdexcept>

#include "streamrel/util/trace.hpp"

namespace streamrel {

Subgraph induced_subgraph(const FlowNetwork& net,
                          const std::vector<bool>& in_side) {
  if (in_side.size() != static_cast<std::size_t>(net.num_nodes())) {
    throw std::invalid_argument("induced_subgraph: side vector size mismatch");
  }
  // This span is the copy detector: hot paths should build NetworkViews
  // (span "network_view") instead of materializing a FlowNetwork here.
  TraceSpan span("induced_subgraph");
  Subgraph sub;
  sub.node_to_sub.assign(in_side.size(), kInvalidNode);
  for (NodeId n = 0; n < net.num_nodes(); ++n) {
    if (in_side[static_cast<std::size_t>(n)]) {
      sub.node_to_sub[static_cast<std::size_t>(n)] = sub.net.add_node();
      sub.node_map.push_back(n);
    }
  }
  sub.edge_to_sub.assign(static_cast<std::size_t>(net.num_edges()),
                         kInvalidEdge);
  for (EdgeId id = 0; id < net.num_edges(); ++id) {
    const Edge& e = net.edge(id);
    const NodeId su = sub.node_to_sub[static_cast<std::size_t>(e.u)];
    const NodeId sv = sub.node_to_sub[static_cast<std::size_t>(e.v)];
    if (su == kInvalidNode || sv == kInvalidNode) continue;
    const EdgeId sid =
        sub.net.add_edge(su, sv, e.capacity, e.failure_prob, e.kind);
    sub.edge_to_sub[static_cast<std::size_t>(id)] = sid;
    sub.edge_map.push_back(id);
  }
  return sub;
}

Mask project_mask(const Subgraph& sub, Mask original_alive) {
  Mask out = 0;
  for (std::size_t sid = 0; sid < sub.edge_map.size(); ++sid) {
    if (test_bit(original_alive, sub.edge_map[sid])) {
      out |= bit(static_cast<int>(sid));
    }
  }
  return out;
}

NodeId merge_sources(FlowNetwork& net, const std::vector<NodeId>& servers) {
  if (servers.empty()) {
    throw std::invalid_argument("merge_sources: need >= 1 server");
  }
  Capacity total = 0;
  for (NodeId server : servers) {
    if (!net.valid_node(server)) {
      throw std::invalid_argument("merge_sources: bad server id");
    }
    for (EdgeId id : net.incident_edges(server)) {
      total += net.edge(id).capacity;
    }
  }
  const NodeId super = net.add_node();
  // Capacity = sum of all server incident capacity: an effective infinity
  // that keeps the integer arithmetic bounded.
  for (NodeId server : servers) {
    net.add_directed_edge(super, server, total, 0.0);
  }
  return super;
}

Mask lift_mask(const Subgraph& sub, Mask sub_alive) {
  Mask out = 0;
  for (std::size_t sid = 0; sid < sub.edge_map.size(); ++sid) {
    if (test_bit(sub_alive, static_cast<int>(sid))) {
      out |= bit(sub.edge_map[sid]);
    }
  }
  return out;
}

}  // namespace streamrel
