#include "streamrel/graph/serialize.hpp"

#include <string>

#include "streamrel/util/binio.hpp"

namespace streamrel {

namespace {

// Section tags (arbitrary but stable — part of the v1 format).
constexpr std::uint32_t kTagTopology = 0x4F504F54;     // "TOPO"
constexpr std::uint32_t kTagCapacity = 0x53504143;     // "CAPS"
constexpr std::uint32_t kTagProbability = 0x424F5250;  // "PROB"
constexpr std::uint32_t kTagDelta = 0x41544C44;        // "DLTA"
constexpr std::uint32_t kTagLineage = 0x454E494C;      // "LINE"

// Sanity caps: a corrupted count must fail fast, not allocate the
// machine away. Generous vs. anything the solvers can actually handle.
constexpr std::uint64_t kMaxNodes = 1u << 28;
constexpr std::uint64_t kMaxEdges = 1u << 28;
constexpr std::uint64_t kMaxDeltaEdits = 1u << 24;
constexpr std::uint64_t kMaxLineage = 1u << 20;

std::uint32_t read_version(BinaryReader& in) {
  const std::uint32_t version = in.u32();
  if (version == 0 || version > kGraphFormatVersion) {
    throw BinReadError("unsupported graph format version " +
                       std::to_string(version));
  }
  return version;
}

double checked_prob(double p, const char* what) {
  if (!(p >= 0.0) || !(p < 1.0)) {
    throw BinReadError(std::string(what) +
                       ": failure probability outside [0,1)");
  }
  return p;
}

}  // namespace

std::string serialize_compiled(const CompiledNetwork& snapshot) {
  const CompiledNetwork::Topology& topo = snapshot.topology();
  const std::size_t num_edges = topo.u.size();

  BinaryWriter topo_w;
  topo_w.i32(topo.num_nodes);
  topo_w.u64(num_edges);
  for (NodeId n : topo.u) topo_w.i32(n);
  for (NodeId n : topo.v) topo_w.i32(n);
  for (EdgeKind k : topo.kind) topo_w.u8(static_cast<std::uint8_t>(k));
  for (std::size_t off : topo.offsets) topo_w.u64(off);
  topo_w.u64(topo.incident.size());
  for (EdgeId e : topo.incident) topo_w.i32(e);

  BinaryWriter cap_w;
  for (Capacity c : snapshot.structure().capacity) cap_w.i64(c);

  BinaryWriter prob_w;
  for (EdgeId e = 0; e < snapshot.num_edges(); ++e) {
    prob_w.f64(snapshot.failure_prob(e));
  }
  for (EdgeId e = 0; e < snapshot.num_edges(); ++e) {
    prob_w.f64(snapshot.log_failure(e));
  }
  for (EdgeId e = 0; e < snapshot.num_edges(); ++e) {
    prob_w.f64(snapshot.log_survival(e));
  }

  BinaryWriter out;
  out.u32(kGraphFormatVersion);
  write_section(out, kTagTopology, topo_w.bytes());
  write_section(out, kTagCapacity, cap_w.bytes());
  write_section(out, kTagProbability, prob_w.bytes());
  return std::move(out).take();
}

std::shared_ptr<const CompiledNetwork> deserialize_compiled(
    std::string_view bytes) {
  BinaryReader in(bytes);
  read_version(in);

  BinaryReader topo_r(read_section(in, kTagTopology));
  CompiledNetwork::Topology topo;
  topo.num_nodes = topo_r.i32();
  if (topo.num_nodes < 0 ||
      static_cast<std::uint64_t>(topo.num_nodes) > kMaxNodes) {
    throw BinReadError("snapshot node count out of range");
  }
  const std::uint64_t num_edges64 = topo_r.u64();
  if (num_edges64 > kMaxEdges) {
    throw BinReadError("snapshot edge count out of range");
  }
  const auto num_edges = static_cast<std::size_t>(num_edges64);
  auto read_endpoint = [&](const char* what) {
    const NodeId n = topo_r.i32();
    if (n < 0 || n >= topo.num_nodes) {
      throw BinReadError(std::string("snapshot ") + what +
                         " endpoint out of range");
    }
    return n;
  };
  topo.u.reserve(num_edges);
  for (std::size_t i = 0; i < num_edges; ++i) {
    topo.u.push_back(read_endpoint("u"));
  }
  topo.v.reserve(num_edges);
  for (std::size_t i = 0; i < num_edges; ++i) {
    topo.v.push_back(read_endpoint("v"));
  }
  topo.kind.reserve(num_edges);
  for (std::size_t i = 0; i < num_edges; ++i) {
    const std::uint8_t k = topo_r.u8();
    if (k > static_cast<std::uint8_t>(EdgeKind::kUndirected)) {
      throw BinReadError("snapshot edge kind out of range");
    }
    topo.kind.push_back(static_cast<EdgeKind>(k));
  }
  topo.offsets.reserve(static_cast<std::size_t>(topo.num_nodes) + 1);
  for (std::size_t i = 0;
       i <= static_cast<std::size_t>(topo.num_nodes); ++i) {
    const std::uint64_t off = topo_r.u64();
    if (!topo.offsets.empty() && off < topo.offsets.back()) {
      throw BinReadError("snapshot CSR offsets not monotone");
    }
    topo.offsets.push_back(static_cast<std::size_t>(off));
  }
  if (topo.offsets.front() != 0) {
    throw BinReadError("snapshot CSR offsets must start at 0");
  }
  const std::uint64_t incident_count = topo_r.u64();
  if (incident_count != topo.offsets.back() ||
      incident_count > 2 * num_edges64) {
    throw BinReadError("snapshot CSR incident count inconsistent");
  }
  topo.incident.reserve(static_cast<std::size_t>(incident_count));
  for (std::uint64_t i = 0; i < incident_count; ++i) {
    const EdgeId e = topo_r.i32();
    if (e < 0 || static_cast<std::uint64_t>(e) >= num_edges64) {
      throw BinReadError("snapshot incident edge id out of range");
    }
    topo.incident.push_back(e);
  }
  if (!topo_r.at_end()) {
    throw BinReadError("snapshot topology section has trailing bytes");
  }

  BinaryReader cap_r(read_section(in, kTagCapacity));
  std::vector<Capacity> capacity;
  capacity.reserve(num_edges);
  for (std::size_t i = 0; i < num_edges; ++i) {
    const Capacity c = cap_r.i64();
    if (c < 0) throw BinReadError("snapshot capacity negative");
    capacity.push_back(c);
  }
  if (!cap_r.at_end()) {
    throw BinReadError("snapshot capacity section has trailing bytes");
  }

  BinaryReader prob_r(read_section(in, kTagProbability));
  std::vector<double> failure_prob, log_failure, log_survival;
  failure_prob.reserve(num_edges);
  for (std::size_t i = 0; i < num_edges; ++i) {
    failure_prob.push_back(checked_prob(prob_r.f64(), "snapshot"));
  }
  // Derived log columns adopted bitwise, never numerically re-checked:
  // re-deriving through libm could disagree in the last ulp across
  // hosts, and bitwise restore is the whole contract.
  log_failure.reserve(num_edges);
  for (std::size_t i = 0; i < num_edges; ++i) {
    log_failure.push_back(prob_r.f64());
  }
  log_survival.reserve(num_edges);
  for (std::size_t i = 0; i < num_edges; ++i) {
    log_survival.push_back(prob_r.f64());
  }
  if (!prob_r.at_end()) {
    throw BinReadError("snapshot probability section has trailing bytes");
  }
  if (!in.at_end()) {
    throw BinReadError("snapshot payload has trailing bytes");
  }

  try {
    return CompiledNetwork::from_parts(
        std::move(topo), std::move(capacity), std::move(failure_prob),
        std::move(log_failure), std::move(log_survival));
  } catch (const std::invalid_argument& e) {
    throw BinReadError(std::string("snapshot rejected: ") + e.what());
  }
}

FlowNetwork builder_from_compiled(const CompiledNetwork& snapshot) {
  FlowNetwork net;
  net.add_nodes(snapshot.num_nodes());
  for (EdgeId e = 0; e < snapshot.num_edges(); ++e) {
    net.add_edge(snapshot.edge_u(e), snapshot.edge_v(e),
                 snapshot.edge_capacity(e), snapshot.failure_prob(e),
                 snapshot.edge_kind(e));
  }
  return net;
}

std::string serialize_delta(const NetworkDelta& delta) {
  BinaryWriter body;
  body.u64(delta.prob_edits.size());
  for (const NetworkDelta::ProbEdit& e : delta.prob_edits) {
    body.i32(e.edge);
    body.f64(e.failure_prob);
  }
  body.u64(delta.capacity_edits.size());
  for (const NetworkDelta::CapacityEdit& e : delta.capacity_edits) {
    body.i32(e.edge);
    body.i64(e.capacity);
  }
  body.u64(delta.edge_adds.size());
  for (const NetworkDelta::EdgeAdd& e : delta.edge_adds) {
    body.i32(e.u);
    body.i32(e.v);
    body.i64(e.capacity);
    body.f64(e.failure_prob);
    body.u8(static_cast<std::uint8_t>(e.kind));
  }
  body.u64(delta.edge_removes.size());
  for (EdgeId e : delta.edge_removes) body.i32(e);
  body.u64(delta.node_removes.size());
  for (NodeId n : delta.node_removes) body.i32(n);
  body.i32(delta.nodes_added);

  BinaryWriter out;
  out.u32(kGraphFormatVersion);
  write_section(out, kTagDelta, body.bytes());
  return std::move(out).take();
}

NetworkDelta deserialize_delta(std::string_view bytes) {
  BinaryReader in(bytes);
  read_version(in);
  BinaryReader body(read_section(in, kTagDelta));

  auto read_count = [&](const char* what) {
    const std::uint64_t n = body.u64();
    if (n > kMaxDeltaEdits) {
      throw BinReadError(std::string("delta ") + what + " count out of range");
    }
    return static_cast<std::size_t>(n);
  };

  NetworkDelta delta;
  const std::size_t num_prob = read_count("prob edit");
  delta.prob_edits.reserve(num_prob);
  for (std::size_t i = 0; i < num_prob; ++i) {
    NetworkDelta::ProbEdit e;
    e.edge = body.i32();
    e.failure_prob = checked_prob(body.f64(), "delta");
    delta.prob_edits.push_back(e);
  }
  const std::size_t num_cap = read_count("capacity edit");
  delta.capacity_edits.reserve(num_cap);
  for (std::size_t i = 0; i < num_cap; ++i) {
    NetworkDelta::CapacityEdit e;
    e.edge = body.i32();
    e.capacity = body.i64();
    delta.capacity_edits.push_back(e);
  }
  const std::size_t num_adds = read_count("edge add");
  delta.edge_adds.reserve(num_adds);
  for (std::size_t i = 0; i < num_adds; ++i) {
    NetworkDelta::EdgeAdd e;
    e.u = body.i32();
    e.v = body.i32();
    e.capacity = body.i64();
    e.failure_prob = checked_prob(body.f64(), "delta");
    const std::uint8_t k = body.u8();
    if (k > static_cast<std::uint8_t>(EdgeKind::kUndirected)) {
      throw BinReadError("delta edge kind out of range");
    }
    e.kind = static_cast<EdgeKind>(k);
    delta.edge_adds.push_back(e);
  }
  const std::size_t num_eremove = read_count("edge remove");
  delta.edge_removes.reserve(num_eremove);
  for (std::size_t i = 0; i < num_eremove; ++i) {
    delta.edge_removes.push_back(body.i32());
  }
  const std::size_t num_nremove = read_count("node remove");
  delta.node_removes.reserve(num_nremove);
  for (std::size_t i = 0; i < num_nremove; ++i) {
    delta.node_removes.push_back(body.i32());
  }
  delta.nodes_added = body.i32();
  if (delta.nodes_added < 0 ||
      static_cast<std::uint64_t>(delta.nodes_added) > kMaxDeltaEdits) {
    throw BinReadError("delta nodes_added out of range");
  }
  if (!body.at_end()) {
    throw BinReadError("delta payload has trailing bytes");
  }
  if (!in.at_end()) {
    throw BinReadError("delta envelope has trailing bytes");
  }
  return delta;
}

std::string serialize_lineage(const std::vector<DeltaRecord>& lineage) {
  BinaryWriter body;
  body.u64(lineage.size());
  for (const DeltaRecord& r : lineage) {
    body.u64(r.structure_id);
    body.u64(r.parent_structure_id);
    body.u8(static_cast<std::uint8_t>(r.delta_class));
    body.i32(r.capacity_edits);
    body.i32(r.edges_added);
    body.i32(r.edges_removed);
    body.i32(r.nodes_added);
    body.i32(r.nodes_removed);
  }
  BinaryWriter out;
  out.u32(kGraphFormatVersion);
  write_section(out, kTagLineage, body.bytes());
  return std::move(out).take();
}

std::vector<DeltaRecord> deserialize_lineage(std::string_view bytes) {
  BinaryReader in(bytes);
  read_version(in);
  BinaryReader body(read_section(in, kTagLineage));
  const std::uint64_t count = body.u64();
  if (count > kMaxLineage) {
    throw BinReadError("lineage record count out of range");
  }
  std::vector<DeltaRecord> lineage;
  lineage.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    DeltaRecord r;
    r.structure_id = body.u64();
    r.parent_structure_id = body.u64();
    const std::uint8_t c = body.u8();
    if (c > static_cast<std::uint8_t>(DeltaClass::kTopology)) {
      throw BinReadError("lineage delta class out of range");
    }
    r.delta_class = static_cast<DeltaClass>(c);
    r.capacity_edits = body.i32();
    r.edges_added = body.i32();
    r.edges_removed = body.i32();
    r.nodes_added = body.i32();
    r.nodes_removed = body.i32();
    lineage.push_back(r);
  }
  if (!body.at_end()) {
    throw BinReadError("lineage payload has trailing bytes");
  }
  if (!in.at_end()) {
    throw BinReadError("lineage envelope has trailing bytes");
  }
  return lineage;
}

}  // namespace streamrel
