#include "streamrel/graph/delta.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

#include "streamrel/graph/compiled.hpp"
#include "streamrel/util/trace.hpp"

namespace streamrel {

std::string_view to_string(DeltaClass c) noexcept {
  switch (c) {
    case DeltaClass::kProbabilityOnly: return "probability";
    case DeltaClass::kCapacityOnly: return "capacity";
    case DeltaClass::kTopology: return "topology";
  }
  return "?";
}

namespace {

/// The delta resolved against a concrete pre-delta shape: validated,
/// with id translations and the final per-old-edge attribute values.
/// Shared by the builder and the snapshot application paths so both
/// produce the identical successor.
struct DeltaPlan {
  DeltaClass cls = DeltaClass::kProbabilityOnly;
  int old_nodes = 0;
  int old_edges = 0;
  int new_nodes = 0;
  std::vector<NodeId> node_map;      ///< old id -> new id / kInvalidNode
  std::vector<EdgeId> edge_map;      ///< old id -> new id / kInvalidEdge
  std::vector<NodeId> extended_node; ///< extended id (old + added) -> new id
  std::vector<Capacity> capacity;    ///< final capacity per old edge
  std::vector<double> prob;          ///< final probability per old edge
  std::vector<bool> prob_edited;     ///< per old edge
  std::vector<std::size_t> surviving_adds;  ///< indices into delta.edge_adds
  std::vector<EdgeId> touched_edges; ///< capacity-edited surviving, NEW ids
};

void check_prob(double p) {
  if (!(p >= 0.0) || !(p < 1.0)) {
    throw std::invalid_argument("delta: failure probability not in [0,1)");
  }
}

DeltaPlan resolve(const NetworkDelta& delta, int old_nodes, int old_edges,
                  std::span<const Capacity> old_caps,
                  std::span<const double> old_probs) {
  DeltaPlan plan;
  plan.cls = delta.classify();
  plan.old_nodes = old_nodes;
  plan.old_edges = old_edges;
  if (delta.nodes_added < 0) {
    throw std::invalid_argument("delta: negative node addition count");
  }

  // Final attribute values for pre-existing edges (edits in order, last
  // one wins; edits naming removed edges are rejected below).
  plan.capacity.assign(old_caps.begin(), old_caps.end());
  plan.prob.assign(old_probs.begin(), old_probs.end());
  plan.prob_edited.assign(static_cast<std::size_t>(old_edges), false);
  std::vector<bool> cap_edited(static_cast<std::size_t>(old_edges), false);
  for (const NetworkDelta::ProbEdit& e : delta.prob_edits) {
    if (e.edge < 0 || e.edge >= old_edges) {
      throw std::invalid_argument("delta: probability edit names a bad edge");
    }
    check_prob(e.failure_prob);
    plan.prob[static_cast<std::size_t>(e.edge)] = e.failure_prob;
    plan.prob_edited[static_cast<std::size_t>(e.edge)] = true;
  }
  for (const NetworkDelta::CapacityEdit& e : delta.capacity_edits) {
    if (e.edge < 0 || e.edge >= old_edges) {
      throw std::invalid_argument("delta: capacity edit names a bad edge");
    }
    if (e.capacity < 0) {
      throw std::invalid_argument("delta: negative capacity");
    }
    plan.capacity[static_cast<std::size_t>(e.edge)] = e.capacity;
    cap_edited[static_cast<std::size_t>(e.edge)] = true;
  }

  // Removals (pre-delta ids only, no duplicates).
  std::vector<bool> node_removed(static_cast<std::size_t>(old_nodes), false);
  for (const NodeId n : delta.node_removes) {
    if (n < 0 || n >= old_nodes) {
      throw std::invalid_argument("delta: node removal names a bad node");
    }
    if (node_removed[static_cast<std::size_t>(n)]) {
      throw std::invalid_argument("delta: duplicate node removal");
    }
    node_removed[static_cast<std::size_t>(n)] = true;
  }
  std::vector<bool> edge_removed(static_cast<std::size_t>(old_edges), false);
  for (const EdgeId e : delta.edge_removes) {
    if (e < 0 || e >= old_edges) {
      throw std::invalid_argument("delta: edge removal names a bad edge");
    }
    if (edge_removed[static_cast<std::size_t>(e)]) {
      throw std::invalid_argument("delta: duplicate edge removal");
    }
    edge_removed[static_cast<std::size_t>(e)] = true;
  }

  // Node numbering: surviving old nodes keep their relative order, added
  // nodes append.
  plan.node_map.assign(static_cast<std::size_t>(old_nodes), kInvalidNode);
  NodeId next_node = 0;
  for (NodeId n = 0; n < old_nodes; ++n) {
    if (!node_removed[static_cast<std::size_t>(n)]) {
      plan.node_map[static_cast<std::size_t>(n)] = next_node++;
    }
  }
  plan.extended_node = plan.node_map;
  for (int i = 0; i < delta.nodes_added; ++i) {
    plan.extended_node.push_back(next_node++);
  }
  plan.new_nodes = next_node;

  const auto extended_alive = [&](NodeId n) {
    return n >= 0 &&
           n < static_cast<NodeId>(plan.extended_node.size()) &&
           plan.extended_node[static_cast<std::size_t>(n)] != kInvalidNode;
  };

  // Edge numbering: surviving old edges first (old order), surviving
  // added edges after (add order). An edge dies with either endpoint.
  plan.edge_map.assign(static_cast<std::size_t>(old_edges), kInvalidEdge);
  EdgeId next_edge = 0;
  // Snapshot application needs endpoints; the caller passes them via the
  // survives callback below — but endpoints live in different containers
  // for the two paths, so survival is finalized by the caller. Here we
  // only pre-fill removal flags; see finalize_edges.
  static_cast<void>(next_edge);
  plan.surviving_adds.reserve(delta.edge_adds.size());
  for (std::size_t i = 0; i < delta.edge_adds.size(); ++i) {
    const NetworkDelta::EdgeAdd& add = delta.edge_adds[i];
    if (add.u < 0 || add.v < 0 ||
        add.u >= static_cast<NodeId>(plan.extended_node.size()) ||
        add.v >= static_cast<NodeId>(plan.extended_node.size())) {
      throw std::invalid_argument("delta: edge addition names a bad node");
    }
    if (add.u == add.v) {
      throw std::invalid_argument("delta: edge addition is a self-loop");
    }
    if (add.capacity < 0) {
      throw std::invalid_argument("delta: negative capacity");
    }
    check_prob(add.failure_prob);
    if (extended_alive(add.u) && extended_alive(add.v)) {
      plan.surviving_adds.push_back(i);
    }
  }

  // Old-edge survival and final numbering need endpoints — done by the
  // caller via this helper so both paths share the numbering logic.
  // (Filled in by finalize_edges below.)
  // Mark removal verdicts for edits referencing dead edges.
  for (const NetworkDelta::ProbEdit& e : delta.prob_edits) {
    if (edge_removed[static_cast<std::size_t>(e.edge)]) {
      throw std::invalid_argument("delta: probability edit on removed edge");
    }
  }
  for (const NetworkDelta::CapacityEdit& e : delta.capacity_edits) {
    if (edge_removed[static_cast<std::size_t>(e.edge)]) {
      throw std::invalid_argument("delta: capacity edit on removed edge");
    }
  }

  // Stash removal flags in edge_map as a sentinel for finalize_edges:
  // kInvalidEdge - 1 marks "explicitly removed".
  for (EdgeId e = 0; e < old_edges; ++e) {
    plan.edge_map[static_cast<std::size_t>(e)] =
        edge_removed[static_cast<std::size_t>(e)] ? kInvalidEdge - 1
                                                  : kInvalidEdge;
  }
  static_cast<void>(cap_edited);
  return plan;
}

/// Assigns final edge ids given per-old-edge endpoints; computes
/// touched_edges (capacity-edited survivors, new ids).
void finalize_edges(DeltaPlan& plan, const NetworkDelta& delta,
                    std::span<const NodeId> old_u,
                    std::span<const NodeId> old_v) {
  std::vector<bool> cap_edited(static_cast<std::size_t>(plan.old_edges),
                               false);
  for (const NetworkDelta::CapacityEdit& e : delta.capacity_edits) {
    cap_edited[static_cast<std::size_t>(e.edge)] = true;
  }
  EdgeId next = 0;
  for (EdgeId e = 0; e < plan.old_edges; ++e) {
    const auto i = static_cast<std::size_t>(e);
    if (plan.edge_map[i] == kInvalidEdge - 1) {  // explicitly removed
      plan.edge_map[i] = kInvalidEdge;
      continue;
    }
    const NodeId nu = plan.node_map[static_cast<std::size_t>(old_u[i])];
    const NodeId nv = plan.node_map[static_cast<std::size_t>(old_v[i])];
    if (nu == kInvalidNode || nv == kInvalidNode) {
      plan.edge_map[i] = kInvalidEdge;  // died with an endpoint
      continue;
    }
    plan.edge_map[i] = next++;
    if (cap_edited[i]) plan.touched_edges.push_back(plan.edge_map[i]);
  }
}

void journal_delta(const DeltaPlan& plan, const NetworkDelta& delta,
                   std::uint64_t structure_id, std::uint64_t parent_id) {
  DeltaRecord record;
  record.structure_id = structure_id;
  record.parent_structure_id = parent_id;
  record.delta_class = plan.cls;
  record.capacity_edits = static_cast<int>(delta.capacity_edits.size());
  record.edges_added = static_cast<int>(plan.surviving_adds.size());
  record.nodes_added = delta.nodes_added;
  record.nodes_removed = static_cast<int>(delta.node_removes.size());
  // edge_map carries final ids only after finalize_edges (topology
  // deltas); capacity-only deltas never remove edges.
  int removed = 0;
  if (plan.cls == DeltaClass::kTopology) {
    for (const EdgeId mapped : plan.edge_map) {
      if (mapped == kInvalidEdge) ++removed;
    }
  }
  record.edges_removed = removed;
  DeltaJournal::instance().record(record);
}

}  // namespace

DeltaApplication apply_delta(const FlowNetwork& net,
                             const NetworkDelta& delta) {
  std::vector<Capacity> caps;
  std::vector<double> probs;
  std::vector<NodeId> u;
  std::vector<NodeId> v;
  caps.reserve(static_cast<std::size_t>(net.num_edges()));
  probs.reserve(caps.capacity());
  u.reserve(caps.capacity());
  v.reserve(caps.capacity());
  for (const Edge& e : net.edges()) {
    caps.push_back(e.capacity);
    probs.push_back(e.failure_prob);
    u.push_back(e.u);
    v.push_back(e.v);
  }
  DeltaPlan plan =
      resolve(delta, net.num_nodes(), net.num_edges(), caps, probs);

  DeltaApplication out;
  out.applied = plan.cls;
  if (plan.cls != DeltaClass::kTopology) {
    // Identity maps; mutate a copy in place.
    out.net = net;
    for (const NetworkDelta::ProbEdit& e : delta.prob_edits) {
      out.net.set_failure_prob(e.edge, e.failure_prob);
    }
    for (const NetworkDelta::CapacityEdit& e : delta.capacity_edits) {
      out.net.set_capacity(e.edge, e.capacity);
    }
    out.node_map.resize(static_cast<std::size_t>(net.num_nodes()));
    out.edge_map.resize(static_cast<std::size_t>(net.num_edges()));
    for (NodeId n = 0; n < net.num_nodes(); ++n) {
      out.node_map[static_cast<std::size_t>(n)] = n;
    }
    for (EdgeId e = 0; e < net.num_edges(); ++e) {
      out.edge_map[static_cast<std::size_t>(e)] = e;
    }
    return out;
  }

  finalize_edges(plan, delta, u, v);
  FlowNetwork next(plan.new_nodes);
  for (EdgeId e = 0; e < plan.old_edges; ++e) {
    const auto i = static_cast<std::size_t>(e);
    if (plan.edge_map[i] == kInvalidEdge) continue;
    next.add_edge(plan.node_map[static_cast<std::size_t>(u[i])],
                  plan.node_map[static_cast<std::size_t>(v[i])],
                  plan.capacity[i], plan.prob[i], net.edge(e).kind);
  }
  for (const std::size_t i : plan.surviving_adds) {
    const NetworkDelta::EdgeAdd& add = delta.edge_adds[i];
    next.add_edge(plan.extended_node[static_cast<std::size_t>(add.u)],
                  plan.extended_node[static_cast<std::size_t>(add.v)],
                  add.capacity, add.failure_prob, add.kind);
  }
  out.net = std::move(next);
  out.node_map = std::move(plan.node_map);
  out.edge_map = std::move(plan.edge_map);
  return out;
}

DeltaApplication apply_delta_in_place(FlowNetwork& net,
                                      const NetworkDelta& delta) {
  DeltaApplication out = apply_delta(net, delta);
  net = out.net;
  return out;
}

CompiledDelta CompiledNetwork::apply_delta(const NetworkDelta& delta) const {
  TraceSpan span("apply_delta", "graph");
  const Topology& topo = topology();
  DeltaPlan plan = resolve(delta, topo.num_nodes,
                           static_cast<int>(topo.u.size()),
                           structure_->capacity, failure_prob_);
  span.arg("class", to_string(plan.cls));

  CompiledDelta out;
  out.applied = plan.cls;
  const int old_nodes = topo.num_nodes;
  const int old_edges = static_cast<int>(topo.u.size());
  out.node_map.resize(static_cast<std::size_t>(old_nodes));
  out.edge_map.resize(static_cast<std::size_t>(old_edges));

  const auto set_prob = [](CompiledNetwork& c, std::size_t i, double p) {
    c.failure_prob_[i] = p;
    c.log_failure_[i] =
        p > 0.0 ? std::log(p) : -std::numeric_limits<double>::infinity();
    c.log_survival_[i] = std::log1p(-p);
  };

  if (plan.cls == DeltaClass::kProbabilityOnly) {
    // Share the whole Structure: same structure id, caches survive.
    auto overlay = std::shared_ptr<CompiledNetwork>(new CompiledNetwork());
    overlay->structure_ = structure_;
    overlay->failure_prob_ = failure_prob_;
    overlay->log_failure_ = log_failure_;
    overlay->log_survival_ = log_survival_;
    for (const NetworkDelta::ProbEdit& e : delta.prob_edits) {
      set_prob(*overlay, static_cast<std::size_t>(e.edge), e.failure_prob);
    }
    for (NodeId n = 0; n < old_nodes; ++n) {
      out.node_map[static_cast<std::size_t>(n)] = n;
    }
    for (EdgeId e = 0; e < old_edges; ++e) {
      out.edge_map[static_cast<std::size_t>(e)] = e;
    }
    out.snapshot = std::move(overlay);
    return out;
  }

  if (plan.cls == DeltaClass::kCapacityOnly) {
    // Share the Topology block; copy only the capacity column (and the
    // probability columns, which ride in the outer CompiledNetwork).
    auto structure = std::make_shared<Structure>();
    structure->topology = structure_->topology;  // shared, never copied
    structure->capacity = std::move(plan.capacity);
    structure->id = next_structure_id();
    structure->parent_id = structure_->id;

    auto compiled = std::shared_ptr<CompiledNetwork>(new CompiledNetwork());
    compiled->structure_ = std::move(structure);
    compiled->failure_prob_ = failure_prob_;
    compiled->log_failure_ = log_failure_;
    compiled->log_survival_ = log_survival_;
    for (const NetworkDelta::ProbEdit& e : delta.prob_edits) {
      set_prob(*compiled, static_cast<std::size_t>(e.edge), e.failure_prob);
    }
    for (NodeId n = 0; n < old_nodes; ++n) {
      out.node_map[static_cast<std::size_t>(n)] = n;
    }
    for (EdgeId e = 0; e < old_edges; ++e) {
      out.edge_map[static_cast<std::size_t>(e)] = e;
    }
    for (const NetworkDelta::CapacityEdit& e : delta.capacity_edits) {
      out.touched_edges.push_back(e.edge);
    }
    std::sort(out.touched_edges.begin(), out.touched_edges.end());
    out.touched_edges.erase(
        std::unique(out.touched_edges.begin(), out.touched_edges.end()),
        out.touched_edges.end());
    journal_delta(plan, delta, compiled->structure_->id, structure_->id);
    out.snapshot = std::move(compiled);
    return out;
  }

  // Topology delta: CSR patch — compact the surviving rows in order,
  // append the additions, rebuild offsets/incident in one pass. The
  // result is array-identical to a from-scratch compile() of the edited
  // builder (surviving edges in old order, additions after).
  finalize_edges(plan, delta, topo.u, topo.v);
  auto topology = std::make_shared<Topology>();
  topology->num_nodes = plan.new_nodes;
  std::size_t new_edges = plan.surviving_adds.size();
  for (const EdgeId mapped : plan.edge_map) {
    if (mapped != kInvalidEdge) ++new_edges;
  }
  topology->u.reserve(new_edges);
  topology->v.reserve(new_edges);
  topology->kind.reserve(new_edges);

  auto structure = std::make_shared<Structure>();
  structure->capacity.reserve(new_edges);
  auto compiled = std::shared_ptr<CompiledNetwork>(new CompiledNetwork());
  compiled->failure_prob_.reserve(new_edges);
  compiled->log_failure_.reserve(new_edges);
  compiled->log_survival_.reserve(new_edges);

  const auto append_prob = [&](double p, bool copy_from,
                               std::size_t old_index) {
    if (copy_from) {
      // Untouched probability: copy the derived columns bit-for-bit
      // instead of re-deriving them (same bits either way; cheaper).
      compiled->failure_prob_.push_back(failure_prob_[old_index]);
      compiled->log_failure_.push_back(log_failure_[old_index]);
      compiled->log_survival_.push_back(log_survival_[old_index]);
    } else {
      compiled->failure_prob_.push_back(p);
      compiled->log_failure_.push_back(
          p > 0.0 ? std::log(p) : -std::numeric_limits<double>::infinity());
      compiled->log_survival_.push_back(std::log1p(-p));
    }
  };

  for (EdgeId e = 0; e < old_edges; ++e) {
    const auto i = static_cast<std::size_t>(e);
    if (plan.edge_map[i] == kInvalidEdge) continue;
    topology->u.push_back(plan.node_map[static_cast<std::size_t>(topo.u[i])]);
    topology->v.push_back(plan.node_map[static_cast<std::size_t>(topo.v[i])]);
    topology->kind.push_back(topo.kind[i]);
    structure->capacity.push_back(plan.capacity[i]);
    append_prob(plan.prob[i], !plan.prob_edited[i], i);
  }
  for (const std::size_t i : plan.surviving_adds) {
    const NetworkDelta::EdgeAdd& add = delta.edge_adds[i];
    topology->u.push_back(
        plan.extended_node[static_cast<std::size_t>(add.u)]);
    topology->v.push_back(
        plan.extended_node[static_cast<std::size_t>(add.v)]);
    topology->kind.push_back(add.kind);
    structure->capacity.push_back(add.capacity);
    append_prob(add.failure_prob, false, 0);
  }

  // CSR rebuild: edges ascending, pushed to both endpoints — the same
  // per-node order FlowNetwork::add_edge produces.
  const auto n_nodes = static_cast<std::size_t>(plan.new_nodes);
  std::vector<std::size_t> degree(n_nodes, 0);
  for (std::size_t e = 0; e < topology->u.size(); ++e) {
    ++degree[static_cast<std::size_t>(topology->u[e])];
    ++degree[static_cast<std::size_t>(topology->v[e])];
  }
  topology->offsets.resize(n_nodes + 1);
  topology->offsets[0] = 0;
  for (std::size_t n = 0; n < n_nodes; ++n) {
    topology->offsets[n + 1] = topology->offsets[n] + degree[n];
  }
  topology->incident.resize(topology->offsets[n_nodes]);
  std::vector<std::size_t> cursor(topology->offsets.begin(),
                                  topology->offsets.end() - 1);
  for (std::size_t e = 0; e < topology->u.size(); ++e) {
    topology->incident[cursor[static_cast<std::size_t>(topology->u[e])]++] =
        static_cast<EdgeId>(e);
    topology->incident[cursor[static_cast<std::size_t>(topology->v[e])]++] =
        static_cast<EdgeId>(e);
  }

  structure->topology = std::move(topology);
  structure->id = next_structure_id();
  structure->parent_id = structure_->id;
  compiled->structure_ = structure;

  // Journal before the maps move into the result: the record counts
  // removed edges by scanning plan.edge_map.
  journal_delta(plan, delta, structure->id, structure_->id);

  out.node_map = std::move(plan.node_map);
  out.edge_map = std::move(plan.edge_map);
  for (const NetworkDelta::CapacityEdit& e : delta.capacity_edits) {
    const EdgeId mapped = out.edge_map[static_cast<std::size_t>(e.edge)];
    if (mapped != kInvalidEdge) out.touched_edges.push_back(mapped);
  }
  std::sort(out.touched_edges.begin(), out.touched_edges.end());
  out.touched_edges.erase(
      std::unique(out.touched_edges.begin(), out.touched_edges.end()),
      out.touched_edges.end());
  out.snapshot = std::move(compiled);
  return out;
}

// --- DeltaJournal ----------------------------------------------------

struct DeltaJournal::Impl {
  static constexpr std::size_t kMaxRecords = 4096;
  mutable std::mutex mutex;
  std::unordered_map<std::uint64_t, DeltaRecord> records;
  std::deque<std::uint64_t> order;  ///< FIFO eviction
};

DeltaJournal& DeltaJournal::instance() {
  static DeltaJournal journal;
  return journal;
}

DeltaJournal::Impl& DeltaJournal::impl() const {
  static Impl storage;
  return storage;
}

void DeltaJournal::record(const DeltaRecord& record) {
  Impl& state = impl();
  const std::lock_guard<std::mutex> lock(state.mutex);
  const auto [it, inserted] =
      state.records.insert_or_assign(record.structure_id, record);
  static_cast<void>(it);
  if (inserted) {
    state.order.push_back(record.structure_id);
    while (state.order.size() > Impl::kMaxRecords) {
      state.records.erase(state.order.front());
      state.order.pop_front();
    }
  }
}

std::optional<DeltaRecord> DeltaJournal::lookup(
    std::uint64_t structure_id) const {
  Impl& state = impl();
  const std::lock_guard<std::mutex> lock(state.mutex);
  const auto it = state.records.find(structure_id);
  if (it == state.records.end()) return std::nullopt;
  return it->second;
}

std::vector<DeltaRecord> DeltaJournal::chain(
    std::uint64_t structure_id) const {
  Impl& state = impl();
  const std::lock_guard<std::mutex> lock(state.mutex);
  std::vector<DeltaRecord> out;
  std::uint64_t id = structure_id;
  while (id != 0 && out.size() < Impl::kMaxRecords) {
    const auto it = state.records.find(id);
    if (it == state.records.end()) break;
    out.push_back(it->second);
    id = it->second.parent_structure_id;
  }
  return out;
}

std::size_t DeltaJournal::size() const {
  Impl& state = impl();
  const std::lock_guard<std::mutex> lock(state.mutex);
  return state.records.size();
}

}  // namespace streamrel
