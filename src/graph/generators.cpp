#include "streamrel/graph/generators.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <utility>

#include "streamrel/graph/graph_algos.hpp"

namespace streamrel {

namespace {

Capacity draw_cap(Xoshiro256& rng, CapacityRange r) {
  if (r.lo > r.hi || r.lo < 0) throw std::invalid_argument("bad capacity range");
  return rng.uniform_int(r.lo, r.hi);
}

double draw_prob(Xoshiro256& rng, ProbRange r) {
  if (!(r.lo >= 0.0) || !(r.hi < 1.0) || r.lo > r.hi) {
    throw std::invalid_argument("bad probability range");
  }
  return rng.uniform_real(r.lo, r.hi);
}

// Adds a uniform random spanning tree over nodes [base, base+count) using
// a random permutation attachment (each new node links to a uniformly
// chosen earlier node) — not Wilson-uniform, but unbiased enough for
// workload synthesis and O(n).
void add_random_tree(FlowNetwork& net, Xoshiro256& rng, NodeId base, int count,
                     CapacityRange caps, ProbRange probs, EdgeKind kind) {
  std::vector<NodeId> order(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) order[static_cast<std::size_t>(i)] = base + i;
  for (int i = count - 1; i > 0; --i) {
    const auto j = static_cast<std::size_t>(rng.uniform_below(
        static_cast<std::uint64_t>(i) + 1));
    std::swap(order[static_cast<std::size_t>(i)], order[j]);
  }
  for (int i = 1; i < count; ++i) {
    const auto parent = order[static_cast<std::size_t>(
        rng.uniform_below(static_cast<std::uint64_t>(i)))];
    net.add_edge(parent, order[static_cast<std::size_t>(i)],
                 draw_cap(rng, caps), draw_prob(rng, probs), kind);
  }
}

// Adds `count` random links between distinct nodes of [base, base+size),
// avoiding duplicating an existing unordered pair when possible.
void add_random_extra_edges(FlowNetwork& net, Xoshiro256& rng, NodeId base,
                            int size, int count, CapacityRange caps,
                            ProbRange probs, EdgeKind kind) {
  std::set<std::pair<NodeId, NodeId>> used;
  for (EdgeId id = 0; id < net.num_edges(); ++id) {
    const Edge& e = net.edge(id);
    used.insert({std::min(e.u, e.v), std::max(e.u, e.v)});
  }
  const auto max_pairs = static_cast<std::size_t>(size) *
                         static_cast<std::size_t>(size - 1) / 2;
  for (int added = 0; added < count; ++added) {
    NodeId u = kInvalidNode, v = kInvalidNode;
    for (int attempt = 0; attempt < 64; ++attempt) {
      u = base + static_cast<NodeId>(
                     rng.uniform_below(static_cast<std::uint64_t>(size)));
      v = base + static_cast<NodeId>(
                     rng.uniform_below(static_cast<std::uint64_t>(size)));
      if (u == v) continue;
      if (used.size() >= max_pairs) break;  // saturated: allow parallels
      if (!used.count({std::min(u, v), std::max(u, v)})) break;
    }
    if (u == v) {
      v = base + (u - base + 1) % size;
    }
    used.insert({std::min(u, v), std::max(u, v)});
    net.add_edge(u, v, draw_cap(rng, caps), draw_prob(rng, probs), kind);
  }
}

}  // namespace

GeneratedNetwork path_network(int length, Capacity cap, double p,
                              EdgeKind kind) {
  if (length < 1) throw std::invalid_argument("path needs >= 1 edge");
  GeneratedNetwork g;
  g.net = FlowNetwork(length + 1);
  for (NodeId n = 0; n < length; ++n) g.net.add_edge(n, n + 1, cap, p, kind);
  g.source = 0;
  g.sink = length;
  return g;
}

GeneratedNetwork parallel_links(int count, Capacity cap, double p,
                                EdgeKind kind) {
  if (count < 1) throw std::invalid_argument("need >= 1 link");
  GeneratedNetwork g;
  g.net = FlowNetwork(2);
  for (int i = 0; i < count; ++i) g.net.add_edge(0, 1, cap, p, kind);
  g.source = 0;
  g.sink = 1;
  return g;
}

GeneratedNetwork ladder_network(int rungs, Capacity cap, double p,
                                EdgeKind kind) {
  if (rungs < 2) throw std::invalid_argument("ladder needs >= 2 rungs");
  GeneratedNetwork g;
  g.net = FlowNetwork(2 * rungs);
  // Node layout: top row 0..rungs-1, bottom row rungs..2*rungs-1.
  for (int i = 0; i < rungs; ++i) {
    g.net.add_edge(i, rungs + i, cap, p, kind);  // vertical rung
    if (i + 1 < rungs) {
      g.net.add_edge(i, i + 1, cap, p, kind);                  // top rail
      g.net.add_edge(rungs + i, rungs + i + 1, cap, p, kind);  // bottom rail
    }
  }
  g.source = 0;
  g.sink = 2 * rungs - 1;
  return g;
}

GeneratedNetwork grid_network(int width, int height, Capacity cap, double p,
                              EdgeKind kind) {
  if (width < 2 || height < 2) throw std::invalid_argument("grid too small");
  GeneratedNetwork g;
  g.net = FlowNetwork(width * height);
  auto at = [width](int x, int y) { return y * width + x; };
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      if (x + 1 < width) g.net.add_edge(at(x, y), at(x + 1, y), cap, p, kind);
      if (y + 1 < height) g.net.add_edge(at(x, y), at(x, y + 1), cap, p, kind);
    }
  }
  g.source = at(0, 0);
  g.sink = at(width - 1, height - 1);
  return g;
}

GeneratedNetwork random_connected(Xoshiro256& rng, int nodes, int extra_edges,
                                  CapacityRange caps, ProbRange probs,
                                  EdgeKind kind) {
  if (nodes < 2) throw std::invalid_argument("need >= 2 nodes");
  if (extra_edges < 0) throw std::invalid_argument("negative edge count");
  GeneratedNetwork g;
  g.net = FlowNetwork(nodes);
  add_random_tree(g.net, rng, 0, nodes, caps, probs, kind);
  add_random_extra_edges(g.net, rng, 0, nodes, extra_edges, caps, probs, kind);
  // Farthest-apart demand endpoints: BFS from node 0, then BFS from the
  // farthest node found (standard double sweep).
  const auto order_from = [&](NodeId start) {
    std::vector<int> dist(static_cast<std::size_t>(nodes), -1);
    std::vector<NodeId> queue{start};
    dist[static_cast<std::size_t>(start)] = 0;
    NodeId far = start;
    for (std::size_t h = 0; h < queue.size(); ++h) {
      const NodeId n = queue[h];
      for (EdgeId id : g.net.incident_edges(n)) {
        const NodeId nx = g.net.edge(id).other(n);
        if (dist[static_cast<std::size_t>(nx)] == -1) {
          dist[static_cast<std::size_t>(nx)] =
              dist[static_cast<std::size_t>(n)] + 1;
          if (dist[static_cast<std::size_t>(nx)] >
              dist[static_cast<std::size_t>(far)]) {
            far = nx;
          }
          queue.push_back(nx);
        }
      }
    }
    return far;
  };
  g.source = order_from(0);
  g.sink = order_from(g.source);
  if (g.sink == g.source) g.sink = (g.source + 1) % nodes;
  return g;
}

GeneratedNetwork clustered_bottleneck(Xoshiro256& rng,
                                      const ClusteredParams& params) {
  if (params.nodes_s < 2 || params.nodes_t < 2) {
    throw std::invalid_argument("each cluster needs >= 2 nodes");
  }
  if (params.bottleneck_links < 1) {
    throw std::invalid_argument("need >= 1 bottleneck link");
  }
  GeneratedNetwork g;
  g.net = FlowNetwork(params.nodes_s + params.nodes_t);
  const NodeId base_t = params.nodes_s;

  add_random_tree(g.net, rng, 0, params.nodes_s, params.cluster_caps,
                  params.cluster_probs, params.kind);
  add_random_tree(g.net, rng, base_t, params.nodes_t, params.cluster_caps,
                  params.cluster_probs, params.kind);
  add_random_extra_edges(g.net, rng, 0, params.nodes_s, params.extra_edges_s,
                         params.cluster_caps, params.cluster_probs,
                         params.kind);
  add_random_extra_edges(g.net, rng, base_t, params.nodes_t,
                         params.extra_edges_t, params.cluster_caps,
                         params.cluster_probs, params.kind);

  // Crossing links: endpoints drawn uniformly from each cluster; directed
  // crossings always point S -> T (the delivery direction).
  std::vector<NodeId> cross_s, cross_t;
  for (int i = 0; i < params.bottleneck_links; ++i) {
    const NodeId u = static_cast<NodeId>(
        rng.uniform_below(static_cast<std::uint64_t>(params.nodes_s)));
    const NodeId v =
        base_t + static_cast<NodeId>(rng.uniform_below(
                     static_cast<std::uint64_t>(params.nodes_t)));
    g.net.add_edge(u, v, draw_cap(rng, params.bottleneck_caps),
                   draw_prob(rng, params.bottleneck_probs), params.kind);
    cross_s.push_back(u);
    cross_t.push_back(v);
  }

  // Demand endpoints: prefer nodes not touching a crossing link so the
  // bottleneck is a genuine interior pinch.
  auto pick_away = [&](NodeId base, int count,
                       const std::vector<NodeId>& avoid) {
    for (int attempt = 0; attempt < 32; ++attempt) {
      const NodeId cand =
          base + static_cast<NodeId>(
                     rng.uniform_below(static_cast<std::uint64_t>(count)));
      if (std::find(avoid.begin(), avoid.end(), cand) == avoid.end()) {
        return cand;
      }
    }
    return base;
  };
  g.source = pick_away(0, params.nodes_s, cross_s);
  g.sink = pick_away(base_t, params.nodes_t, cross_t);

  g.side_s.assign(static_cast<std::size_t>(g.net.num_nodes()), false);
  for (NodeId n = 0; n < base_t; ++n) g.side_s[static_cast<std::size_t>(n)] = true;
  return g;
}

GeneratedNetwork small_world(Xoshiro256& rng, int nodes, int k, double beta,
                             CapacityRange caps, ProbRange probs) {
  if (nodes < 3) throw std::invalid_argument("need >= 3 nodes");
  if (k < 2 || k % 2 != 0 || k >= nodes) {
    throw std::invalid_argument("k must be even with 0 < k < nodes");
  }
  if (!(beta >= 0.0 && beta <= 1.0)) {
    throw std::invalid_argument("beta must lie in [0, 1]");
  }
  GeneratedNetwork g;
  g.net = FlowNetwork(nodes);
  std::set<std::pair<NodeId, NodeId>> used;
  auto key = [](NodeId a, NodeId b) {
    return std::pair{std::min(a, b), std::max(a, b)};
  };
  for (NodeId u = 0; u < nodes; ++u) {
    for (int j = 1; j <= k / 2; ++j) {
      NodeId v = static_cast<NodeId>((u + j) % nodes);
      if (rng.bernoulli(beta)) {
        // Rewire to a uniform non-self, non-duplicate target; keep the
        // lattice link when no free target is found quickly.
        for (int attempt = 0; attempt < 32; ++attempt) {
          const NodeId cand = static_cast<NodeId>(
              rng.uniform_below(static_cast<std::uint64_t>(nodes)));
          if (cand != u && !used.count(key(u, cand))) {
            v = cand;
            break;
          }
        }
      }
      if (used.count(key(u, v))) continue;
      used.insert(key(u, v));
      g.net.add_undirected_edge(u, v, draw_cap(rng, caps),
                                draw_prob(rng, probs));
    }
  }
  g.source = 0;
  g.sink = nodes / 2;  // diametrically opposite on the ring
  return g;
}

GeneratedNetwork preferential_attachment(Xoshiro256& rng, int nodes,
                                         int attach, CapacityRange caps,
                                         ProbRange probs) {
  if (attach < 1) throw std::invalid_argument("attach must be >= 1");
  if (nodes < attach + 1) {
    throw std::invalid_argument("need more nodes than attachment links");
  }
  GeneratedNetwork g;
  g.net = FlowNetwork(nodes);
  // Seed clique over the first attach+1 nodes.
  std::vector<NodeId> endpoint_pool;  // each node repeated per its degree
  for (NodeId u = 0; u <= attach; ++u) {
    for (NodeId v = u + 1; v <= attach; ++v) {
      g.net.add_undirected_edge(u, v, draw_cap(rng, caps),
                                draw_prob(rng, probs));
      endpoint_pool.push_back(u);
      endpoint_pool.push_back(v);
    }
  }
  for (NodeId u = attach + 1; u < nodes; ++u) {
    std::set<NodeId> targets;
    while (static_cast<int>(targets.size()) < attach) {
      targets.insert(endpoint_pool[static_cast<std::size_t>(rng.uniform_below(
          static_cast<std::uint64_t>(endpoint_pool.size())))]);
    }
    for (NodeId v : targets) {
      g.net.add_undirected_edge(u, v, draw_cap(rng, caps),
                                draw_prob(rng, probs));
      endpoint_pool.push_back(u);
      endpoint_pool.push_back(v);
    }
  }
  g.source = 0;           // oldest node: almost surely the biggest hub
  g.sink = nodes - 1;     // newest node: degree exactly `attach`
  return g;
}

GeneratedNetwork random_multigraph(Xoshiro256& rng, int nodes, int edges,
                                   CapacityRange caps, ProbRange probs,
                                   EdgeKind kind) {
  if (nodes < 2) throw std::invalid_argument("need >= 2 nodes");
  if (edges < 0) throw std::invalid_argument("negative edge count");
  GeneratedNetwork g;
  g.net = FlowNetwork(nodes);
  for (int i = 0; i < edges; ++i) {
    NodeId u = 0, v = 0;
    while (u == v) {
      u = static_cast<NodeId>(
          rng.uniform_below(static_cast<std::uint64_t>(nodes)));
      v = static_cast<NodeId>(
          rng.uniform_below(static_cast<std::uint64_t>(nodes)));
    }
    g.net.add_edge(u, v, draw_cap(rng, caps), draw_prob(rng, probs), kind);
  }
  g.source = 0;
  g.sink = nodes - 1;
  return g;
}

}  // namespace streamrel
