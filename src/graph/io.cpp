#include "streamrel/graph/io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace streamrel {

namespace {

[[noreturn]] void fail(int line_number, const std::string& message) {
  throw std::invalid_argument("network file, line " +
                              std::to_string(line_number) + ": " + message);
}

}  // namespace

NetworkFile read_network(std::istream& in) {
  NetworkFile file;
  bool saw_nodes = false;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream tokens(line);
    std::string directive;
    if (!(tokens >> directive)) continue;  // blank / comment-only line

    if (directive == "nodes") {
      int count = -1;
      if (!(tokens >> count) || count < 0) fail(line_number, "bad node count");
      if (saw_nodes) fail(line_number, "duplicate nodes directive");
      saw_nodes = true;
      file.net = FlowNetwork(count);
    } else if (directive == "edge") {
      if (!saw_nodes) fail(line_number, "edge before nodes directive");
      NodeId u, v;
      Capacity cap;
      double p;
      if (!(tokens >> u >> v >> cap >> p)) {
        fail(line_number, "expected: edge <u> <v> <capacity> <prob>");
      }
      std::string kind_word;
      EdgeKind kind = EdgeKind::kUndirected;
      if (tokens >> kind_word) {
        if (kind_word == "directed") {
          kind = EdgeKind::kDirected;
        } else if (kind_word == "undirected") {
          kind = EdgeKind::kUndirected;
        } else {
          fail(line_number, "unknown edge kind '" + kind_word + "'");
        }
      }
      try {
        file.net.add_edge(u, v, cap, p, kind);
      } catch (const std::invalid_argument& e) {
        fail(line_number, e.what());
      }
    } else if (directive == "demand") {
      if (file.demand) fail(line_number, "duplicate demand directive");
      FlowDemand demand;
      if (!(tokens >> demand.source >> demand.sink >> demand.rate)) {
        fail(line_number, "expected: demand <source> <sink> <rate>");
      }
      file.demand = demand;
    } else {
      fail(line_number, "unknown directive '" + directive + "'");
    }
  }
  if (!saw_nodes) {
    throw std::invalid_argument("network file: missing nodes directive");
  }
  if (file.demand) {
    try {
      file.net.check_demand(*file.demand);
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument(std::string("network file: bad demand: ") +
                                  e.what());
    }
  }
  return file;
}

NetworkFile read_network_from_string(const std::string& text) {
  std::istringstream in(text);
  return read_network(in);
}

NetworkFile read_network_from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::invalid_argument("cannot open network file: " + path);
  }
  return read_network(in);
}

void write_network(std::ostream& out, const FlowNetwork& net,
                   const std::optional<FlowDemand>& demand) {
  out << "nodes " << net.num_nodes() << "\n";
  out.precision(17);
  for (const Edge& e : net.edges()) {
    out << "edge " << e.u << " " << e.v << " " << e.capacity << " "
        << e.failure_prob;
    if (e.directed()) out << " directed";
    out << "\n";
  }
  if (demand) {
    out << "demand " << demand->source << " " << demand->sink << " "
        << demand->rate << "\n";
  }
}

std::string network_to_string(const FlowNetwork& net,
                              const std::optional<FlowDemand>& demand) {
  std::ostringstream out;
  write_network(out, net, demand);
  return out.str();
}

}  // namespace streamrel
