// E20 — frontier-DP connectivity oracle vs the flow-based exact methods
// for rate-1 demands: the frontier method's cost tracks the network's
// frontier WIDTH, not its size, so ladder-like overlays with hundreds of
// links stay exact while 2^|E| enumeration dies at ~21 links and even
// pruned factoring grows quickly.

#include <algorithm>
#include <iostream>

#include "bench_harness.hpp"
#include "streamrel/streamrel.hpp"
#include "streamrel/util/cli.hpp"
#include "streamrel/util/stopwatch.hpp"
#include "streamrel/util/table.hpp"

using namespace streamrel;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  bench::BenchReport record("frontier_scaling");
  const int max_rungs = static_cast<int>(args.get_int("max-rungs", 60));

  std::cout << "E20: frontier DP vs naive vs factoring on ladders (d = 1, "
               "p = 0.1)\n\n";
  TextTable table({"rungs", "|E|", "frontier_ms", "factoring_ms", "naive_ms",
                   "R", "agree"});
  for (int rungs = 4; rungs <= max_rungs; rungs *= 2) {
    const GeneratedNetwork g = ladder_network(rungs, 1, 0.1);
    const FlowDemand demand{g.source, g.sink, 1};

    Stopwatch sw;
    const double r_frontier =
        reliability_connectivity(g.net, demand).reliability;
    const double frontier_ms = sw.elapsed_ms();

    std::string factoring_ms = "-";
    std::string naive_ms = "-";
    bool agree = true;
    if (g.net.num_edges() <= 34) {
      sw.reset();
      const double r_f = reliability_factoring(g.net, demand).reliability;
      factoring_ms = format_double(sw.elapsed_ms(), 4);
      agree &= std::abs(r_f - r_frontier) < 1e-9;
    }
    if (g.net.num_edges() <= 19) {
      sw.reset();
      const double r_n = reliability_naive(g.net, demand).reliability;
      naive_ms = format_double(sw.elapsed_ms(), 4);
      agree &= std::abs(r_n - r_frontier) < 1e-9;
    }
    table.new_row()
        .add_cell(rungs)
        .add_cell(g.net.num_edges())
        .add_cell(frontier_ms, 4)
        .add_cell(factoring_ms)
        .add_cell(naive_ms)
        .add_cell(r_frontier, 8)
        .add_cell(agree ? "yes" : "NO");
    std::string prefix = "rungs";
    prefix += std::to_string(rungs);
    record.metric(bench::key(prefix, "links"), g.net.num_edges())
        .metric(bench::key(prefix, "frontier_ms"), frontier_ms)
        .metric(bench::key(prefix, "agree"), agree);
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: frontier time grows LINEARLY with ladder "
               "length (constant frontier width 3); the flow-based exact "
               "methods drop out at a few dozen links.\n";
  const bool json_ok = bench::write_if_requested(record, args);
  return json_ok ? 0 : 1;
}
