// E24/E28 — closing the loop between the paper's static snapshot model
// and actual churn dynamics.
//
// E24: run the discrete-event simulator with link up/down processes
// whose stationary unavailability equals each link's p(e), and compare
// the measured time-average availability with the analytic reliability.
// Also reports what ONLY the simulator can say: interruption rate and
// outage durations.
//
// E28: churn replay. Generate a timestamped join/leave/degrade event
// stream and evaluate the R(t) series twice — warm (one QuerySession
// absorbing NetworkDelta patches, cut-scoped invalidation keeping
// artifacts alive across events) and cold (recompile + solve from
// scratch per event). The two series must be bitwise identical; the
// headline metrics are the warm-vs-cold speedup and the artifact
// survival rate, both gated in CI via bench_compare --floor.

#include <cmath>
#include <iostream>

#include "bench_harness.hpp"
#include "streamrel/streamrel.hpp"
#include "streamrel/util/cli.hpp"
#include "streamrel/util/stopwatch.hpp"
#include "streamrel/util/table.hpp"

using namespace streamrel;

namespace {

void run_replay(const CliArgs& args, bench::BenchReport& record) {
  const int events = static_cast<int>(args.get_int("events", 48));
  std::cout << "\nE28: churn replay — warm QuerySession deltas vs cold "
               "recompile per event (" << events << " events)\n\n";

  Xoshiro256 rng(0xE28);
  ClusteredParams params;
  params.nodes_s = 9;
  params.extra_edges_s = 6;
  params.nodes_t = 8;
  params.extra_edges_t = 5;
  params.bottleneck_links = 3;
  params.bottleneck_caps = {1, 2};
  const GeneratedNetwork gen = clustered_bottleneck(rng, params);
  const FlowDemand demand{gen.source, gen.sink, 2};

  ChurnEventOptions churn;
  churn.events = events;
  churn.protect_node = gen.sink;
  const EventStream stream = random_churn_events(gen.net, gen.source, churn);

  ReplayOptions warm_options;
  Stopwatch sw;
  const ReplayReport warm = replay_churn(gen.net, demand, stream, warm_options);
  const double warm_ms = sw.elapsed_ms();

  ReplayOptions cold_options;
  cold_options.use_session = false;
  sw.reset();
  const ReplayReport cold = replay_churn(gen.net, demand, stream, cold_options);
  const double cold_ms = sw.elapsed_ms();

  bool identical = warm.series.size() == cold.series.size() &&
                   warm.initial_reliability == cold.initial_reliability;
  for (std::size_t i = 0; identical && i < warm.series.size(); ++i) {
    identical = warm.series[i].reliability == cold.series[i].reliability;
  }

  std::uint64_t full = 0;
  std::uint64_t partial = 0;
  std::uint64_t survived = 0;
  for (const ReplayEventOutcome& out : warm.series) {
    full += out.entries_full;
    partial += out.entries_partial;
    survived += out.entries_survived;
  }

  TextTable table({"series", "events", "R(0)", "R(end)", "worst event",
                   "total_ms", "ms/event"});
  const auto add_row = [&](const char* name, const ReplayReport& report,
                           double ms) {
    table.new_row()
        .add_cell(name)
        .add_cell(static_cast<std::int64_t>(report.series.size()))
        .add_cell(report.initial_reliability, 6)
        .add_cell(report.final_reliability, 6)
        .add_cell(report.worst_event)
        .add_cell(ms, 3)
        .add_cell(report.series.empty()
                      ? 0.0
                      : ms / static_cast<double>(report.series.size()),
                  4);
  };
  add_row("warm (deltas)", warm, warm_ms);
  add_row("cold (recompile)", cold, cold_ms);
  table.print(std::cout);

  const double speedup = warm_ms > 0.0 ? cold_ms / warm_ms : 0.0;
  std::cout << "\nidentical R(t): " << (identical ? "yes" : "NO")
            << "; speedup " << speedup << "x; artifact survival rate "
            << warm.artifact_survival_rate << " (full " << full
            << ", partial " << partial << ", survived " << survived
            << ")\n";

  record.metric("replay.events",
                static_cast<std::uint64_t>(warm.series.size()))
      .metric("replay.warm_ms", warm_ms)
      .metric("replay.cold_ms", cold_ms)
      .metric("replay.speedup_warm_vs_cold", speedup)
      .metric("replay.artifact_survival_rate", warm.artifact_survival_rate)
      .metric("replay.entries_full", full)
      .metric("replay.entries_partial", partial)
      .metric("replay.entries_survived", survived)
      .metric("replay.identical", identical);
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  bench::BenchReport record("dynamics_validation");
  const double duration = args.get_double("duration", 100'000.0);

  std::cout << "E24: analytic reliability vs simulated time-average "
               "availability (duration " << duration << ", repair time 5)\n\n";
  TextTable table({"topology", "|E|", "R analytic", "sim availability",
                   "|diff|", "interruptions", "mean outage", "sim_ms"});

  struct Case {
    const char* name;
    GeneratedNetwork g;
    Capacity d;
  };
  Xoshiro256 rng(2718);
  ClusteredParams cluster;
  cluster.bottleneck_links = 2;
  cluster.bottleneck_caps = {2, 2};
  std::vector<Case> cases;
  cases.push_back({"two-cluster", clustered_bottleneck(rng, cluster), 2});
  cases.push_back({"fig2 bridge", make_fig2_bridge_graph(0.1), 1});
  cases.push_back({"fig4", make_fig4_graph(0.15), 2});
  cases.push_back({"ladder-5", ladder_network(5, 1, 0.08), 1});

  for (Case& c : cases) {
    const FlowDemand demand{c.g.source, c.g.sink, c.d};
    const double analytic =
        compute_reliability(c.g.net, demand).result.reliability;
    SimulationOptions options;
    options.duration = duration;
    Stopwatch sw;
    const SimulationReport report = simulate_availability(
        c.g.net, demand, dynamics_from_probabilities(c.g.net), options);
    const double sim_ms = sw.elapsed_ms();
    table.new_row()
        .add_cell(c.name)
        .add_cell(c.g.net.num_edges())
        .add_cell(analytic, 5)
        .add_cell(report.availability, 5)
        .add_cell(std::abs(report.availability - analytic), 5)
        .add_cell(report.interruptions)
        .add_cell(report.mean_outage, 4)
        .add_cell(sim_ms, 4);
    const std::string prefix = c.name;
    record.metric(bench::key(prefix, "analytic"), analytic)
        .metric(bench::key(prefix, "simulated"), report.availability)
        .metric(bench::key(prefix, "abs_error"),
                std::abs(report.availability - analytic))
        .metric(bench::key(prefix, "sim_ms"), sim_ms);
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: simulated availability converges to the "
               "analytic reliability (validating the snapshot model); the "
               "interruption rate and outage lengths are the extra insight "
               "only dynamics provide.\n";

  run_replay(args, record);

  const bool json_ok = bench::write_if_requested(record, args);
  return json_ok ? 0 : 1;
}
