// E24 — closing the loop between the paper's static snapshot model and
// actual churn dynamics: run the discrete-event simulator with link
// up/down processes whose stationary unavailability equals each link's
// p(e), and compare the measured time-average availability with the
// analytic reliability. Also reports what ONLY the simulator can say:
// interruption rate and outage durations.

#include <cmath>
#include <iostream>

#include "bench_harness.hpp"
#include "streamrel/streamrel.hpp"
#include "streamrel/util/cli.hpp"
#include "streamrel/util/stopwatch.hpp"
#include "streamrel/util/table.hpp"

using namespace streamrel;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  bench::BenchReport record("dynamics_validation");
  const double duration = args.get_double("duration", 100'000.0);

  std::cout << "E24: analytic reliability vs simulated time-average "
               "availability (duration " << duration << ", repair time 5)\n\n";
  TextTable table({"topology", "|E|", "R analytic", "sim availability",
                   "|diff|", "interruptions", "mean outage", "sim_ms"});

  struct Case {
    const char* name;
    GeneratedNetwork g;
    Capacity d;
  };
  Xoshiro256 rng(2718);
  ClusteredParams cluster;
  cluster.bottleneck_links = 2;
  cluster.bottleneck_caps = {2, 2};
  std::vector<Case> cases;
  cases.push_back({"two-cluster", clustered_bottleneck(rng, cluster), 2});
  cases.push_back({"fig2 bridge", make_fig2_bridge_graph(0.1), 1});
  cases.push_back({"fig4", make_fig4_graph(0.15), 2});
  cases.push_back({"ladder-5", ladder_network(5, 1, 0.08), 1});

  for (Case& c : cases) {
    const FlowDemand demand{c.g.source, c.g.sink, c.d};
    const double analytic =
        compute_reliability(c.g.net, demand).result.reliability;
    SimulationOptions options;
    options.duration = duration;
    Stopwatch sw;
    const SimulationReport report = simulate_availability(
        c.g.net, demand, dynamics_from_probabilities(c.g.net), options);
    const double sim_ms = sw.elapsed_ms();
    table.new_row()
        .add_cell(c.name)
        .add_cell(c.g.net.num_edges())
        .add_cell(analytic, 5)
        .add_cell(report.availability, 5)
        .add_cell(std::abs(report.availability - analytic), 5)
        .add_cell(report.interruptions)
        .add_cell(report.mean_outage, 4)
        .add_cell(sim_ms, 4);
    const std::string prefix = c.name;
    record.metric(bench::key(prefix, "analytic"), analytic)
        .metric(bench::key(prefix, "simulated"), report.availability)
        .metric(bench::key(prefix, "abs_error"),
                std::abs(report.availability - analytic))
        .metric(bench::key(prefix, "sim_ms"), sim_ms);
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: simulated availability converges to the "
               "analytic reliability (validating the snapshot model); the "
               "interruption rate and outage lengths are the extra insight "
               "only dynamics provide.\n";
  const bool json_ok = bench::write_if_requested(record, args);
  return json_ok ? 0 : 1;
}
