// E25 — reliability-aware upgrade planning: greedy exact-oracle link
// selection vs adding random candidate links, on a bridged overlay where
// the right first move (backing up the bridge) dominates everything
// else. Reports the reliability trajectory per added link.

#include <iostream>

#include "bench_harness.hpp"
#include "streamrel/streamrel.hpp"
#include "streamrel/util/cli.hpp"
#include "streamrel/util/table.hpp"

using namespace streamrel;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const int budget = static_cast<int>(args.get_int("budget", 4));

  const GeneratedNetwork g = make_fig2_bridge_graph(0.12);
  const FlowDemand demand{g.source, g.sink, 1};
  const auto candidates = all_missing_links(g.net, 1, 0.12);

  std::cout << "E25: upgrade planning on the bridged overlay ("
            << candidates.size() << " candidate links, budget " << budget
            << ")\n\n";

  const UpgradePlan greedy =
      plan_overlay_upgrade(g.net, demand, candidates, budget);

  // Random baseline: average trajectory over several shuffles.
  const int reps = 20;
  std::vector<double> random_mean(static_cast<std::size_t>(budget), 0.0);
  Xoshiro256 rng(99);
  for (int rep = 0; rep < reps; ++rep) {
    auto pool = candidates;
    GeneratedNetwork current = g;
    for (int i = 0; i < budget && !pool.empty(); ++i) {
      const auto pick = static_cast<std::size_t>(
          rng.uniform_below(pool.size()));
      const UpgradeCandidate c = pool[pick];
      pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
      current.net.add_edge(c.u, c.v, c.capacity, c.failure_prob, c.kind);
      random_mean[static_cast<std::size_t>(i)] +=
          reliability_naive(current.net, demand).reliability /
          static_cast<double>(reps);
    }
  }

  bench::BenchReport record("upgrade_planning", reps);
  record.metric("budget", budget)
      .metric("reliability_before", greedy.reliability_before)
      .metric("greedy_final", greedy.trajectory.empty()
                                  ? greedy.reliability_before
                                  : greedy.trajectory.back())
      .metric("random_mean_final",
              random_mean.empty() ? 0.0 : random_mean.back());
  TextTable table({"links added", "greedy R", "random-mean R", "greedy pick"});
  table.new_row()
      .add_cell(0)
      .add_cell(greedy.reliability_before, 6)
      .add_cell(greedy.reliability_before, 6)
      .add_cell("-");
  for (std::size_t i = 0; i < greedy.trajectory.size(); ++i) {
    std::string pick = std::to_string(greedy.chosen[i].u);
    pick += "--";
    pick += std::to_string(greedy.chosen[i].v);
    table.new_row()
        .add_cell(static_cast<std::int64_t>(i + 1))
        .add_cell(greedy.trajectory[i], 6)
        .add_cell(i < random_mean.size() ? random_mean[i] : 0.0, 6)
        .add_cell(pick);
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: greedy immediately neutralizes the "
               "dominant cut (a direct source-sink link bypassing the "
               "bridge) and jumps far above the random-mean trajectory; "
               "later picks show diminishing returns.\n";
  const bool json_ok = bench::write_if_requested(record, args);
  return json_ok ? 0 : 1;
}
