// E26 — side-array construction strategies (the dominant cost of the
// bottleneck decomposition): the paper's from-scratch sweep vs the
// Gray-code incremental sweep vs Gray + monotone pruning, for both
// feasibility engines. Reports wall time, max-flow solver calls, and the
// incremental bookkeeping counters; verifies the arrays are bitwise
// identical and the end-to-end reliabilities agree to 1e-12. With
// --json=FILE the results are also written as a schema-versioned
// bench_harness record for CI trend tracking.

#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "bench_harness.hpp"

#include "streamrel/streamrel.hpp"
#include "streamrel/util/cli.hpp"
#include "streamrel/util/stopwatch.hpp"
#include "streamrel/util/table.hpp"
#include "streamrel/util/trace.hpp"

using namespace streamrel;

namespace {

std::uint64_t count_occurrences(const std::string& haystack,
                                const std::string& needle) {
  std::uint64_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

struct Row {
  std::string engine;
  double scratch_ms = 0.0;
  double gray_ms = 0.0;
  double pruned_ms = 0.0;
  std::uint64_t scratch_calls = 0;
  std::uint64_t gray_calls = 0;
  std::uint64_t pruned_calls = 0;
  std::uint64_t pruned_decisions = 0;
  bool identical = false;
};

SideArrayOptions strategy_options(FeasibilityMethod f, SideSweepStrategy s,
                                  bool pruning) {
  SideArrayOptions o;
  o.feasibility = f;
  o.parallel = false;  // isolate the algorithmic effect from threading
  o.sweep = s;
  o.monotone_pruning = pruning;
  return o;
}

Row run_engine(const std::string& name, FeasibilityMethod method,
               const SideProblem& side, const AssignmentSet& assignments,
               Capacity d) {
  Row row;
  row.engine = name;
  Stopwatch sw;

  SideArrayStats scratch_stats;
  const auto scratch = build_side_array(
      side, assignments, d,
      strategy_options(method, SideSweepStrategy::kScratch, false),
      &scratch_stats);
  row.scratch_ms = sw.elapsed_ms();
  row.scratch_calls = scratch_stats.maxflow_calls();

  sw.reset();
  SideArrayStats gray_stats;
  const auto gray = build_side_array(
      side, assignments, d,
      strategy_options(method, SideSweepStrategy::kGrayIncremental, false),
      &gray_stats);
  row.gray_ms = sw.elapsed_ms();
  row.gray_calls = gray_stats.maxflow_calls();

  sw.reset();
  SideArrayStats pruned_stats;
  const auto pruned = build_side_array(
      side, assignments, d,
      strategy_options(method, SideSweepStrategy::kGrayIncremental, true),
      &pruned_stats);
  row.pruned_ms = sw.elapsed_ms();
  row.pruned_calls = pruned_stats.maxflow_calls();
  row.pruned_decisions = pruned_stats.pruned_decisions();

  row.identical = scratch == gray && scratch == pruned;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const int side_links = static_cast<int>(args.get_int("side-links", 18));
  const int bottleneck = static_cast<int>(args.get_int("bottleneck", 2));
  const Capacity d = args.get_int("demand", 2);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 17));

  // A clustered instance whose SOURCE side carries `side_links` internal
  // links: nodes_s - 1 spanning-tree links plus the remainder as extras.
  Xoshiro256 rng(seed);
  ClusteredParams params;
  params.nodes_s = side_links / 2 + 1;
  params.extra_edges_s = side_links - (params.nodes_s - 1);
  params.nodes_t = 4;
  params.extra_edges_t = 1;
  params.bottleneck_links = bottleneck;
  params.bottleneck_caps = {1, 3};
  const GeneratedNetwork g = clustered_bottleneck(rng, params);
  const BottleneckPartition partition =
      partition_from_sides(g.net, g.source, g.sink, g.side_s);
  const FlowDemand demand{g.source, g.sink, d};
  const AssignmentSet forward =
      enumerate_assignments(g.net, partition, d, {AssignmentMode::kForwardOnly});
  const SideProblem side = make_side_problem(g.net, demand, partition, true);

  std::cout << "E26: side-array sweep strategies, |E_side|="
            << side.view.num_edges() << " (2^" << side.view.num_edges()
            << " configurations), |D|=" << forward.size() << ", d=" << d
            << ", k=" << bottleneck << "\n\n";

  std::vector<Row> rows;
  rows.push_back(run_engine("per_assignment", FeasibilityMethod::kPerAssignment,
                            side, forward, d));
  rows.push_back(run_engine("polymatroid", FeasibilityMethod::kPolymatroid,
                            side, forward, d));

  TextTable table({"engine", "scratch_ms", "gray_ms", "gray+prune_ms",
                   "speedup", "scratch_calls", "prune_calls",
                   "call_reduction", "identical"});
  for (const Row& r : rows) {
    table.new_row()
        .add_cell(r.engine)
        .add_cell(r.scratch_ms, 2)
        .add_cell(r.gray_ms, 2)
        .add_cell(r.pruned_ms, 2)
        .add_cell(r.scratch_ms / r.pruned_ms, 2)
        .add_cell(r.scratch_calls)
        .add_cell(r.pruned_calls)
        .add_cell(static_cast<double>(r.scratch_calls) /
                      static_cast<double>(r.pruned_calls),
                  2)
        .add_cell(r.identical ? "yes" : "NO");
  }
  table.print(std::cout);

  // End-to-end cross-check: the full decomposition must produce the same
  // reliability whichever sweep built the side arrays.
  BottleneckOptions scratch_opts;
  scratch_opts.side =
      strategy_options(FeasibilityMethod::kAuto, SideSweepStrategy::kScratch,
                       false);
  BottleneckOptions gray_opts;
  gray_opts.side = strategy_options(
      FeasibilityMethod::kAuto, SideSweepStrategy::kGrayIncremental, true);
  const double r_scratch =
      reliability_bottleneck(g.net, demand, partition, scratch_opts)
          .reliability;
  const double r_gray =
      reliability_bottleneck(g.net, demand, partition, gray_opts).reliability;
  const double delta = std::abs(r_scratch - r_gray);
  std::cout << "\nreliability scratch=" << r_scratch << " gray=" << r_gray
            << " |delta|=" << delta << (delta < 1e-12 ? " (ok)" : " (DRIFT)")
            << "\n";

  // Zero-copy regression guard: trace one decomposition run and count the
  // span markers. The side views must come from NetworkView construction
  // ("network_view" spans), never from a copied FlowNetwork
  // ("induced_subgraph" spans) — CI diffs these counts via bench_compare.
  Tracer::set_enabled(true);
  Tracer::clear();
  reliability_bottleneck(g.net, demand, partition, gray_opts);
  const std::string trace = Tracer::export_chrome_json();
  Tracer::set_enabled(false);
  const std::uint64_t subgraph_copies =
      count_occurrences(trace, "{\"name\": \"induced_subgraph\"");
  const std::uint64_t view_builds =
      count_occurrences(trace, "{\"name\": \"network_view\"");
  const bool zero_copy = subgraph_copies == 0 && view_builds > 0;
  std::cout << "decomposition side views: " << view_builds
            << " zero-copy builds, " << subgraph_copies
            << " FlowNetwork copies" << (zero_copy ? " (ok)" : " (COPYING)")
            << "\n";

  bench::BenchReport report("side_array_sweep");
  report.metric("side_links", static_cast<std::int64_t>(side.view.num_edges()))
      .metric("assignments", static_cast<std::uint64_t>(forward.size()))
      .metric("demand", static_cast<std::int64_t>(d))
      .metric("seed", seed)
      .metric("reliability_delta", delta)
      .metric("trace.subgraph_copies", subgraph_copies)
      .metric("trace.view_builds", view_builds);
  for (const Row& r : rows) {
    report.metric(r.engine + ".scratch_ms", r.scratch_ms)
        .metric(r.engine + ".gray_ms", r.gray_ms)
        .metric(r.engine + ".gray_pruned_ms", r.pruned_ms)
        .metric(r.engine + ".scratch_calls", r.scratch_calls)
        .metric(r.engine + ".gray_calls", r.gray_calls)
        .metric(r.engine + ".gray_pruned_calls", r.pruned_calls)
        .metric(r.engine + ".pruned_decisions", r.pruned_decisions)
        .metric(r.engine + ".speedup", r.scratch_ms / r.pruned_ms)
        .metric(r.engine + ".call_reduction",
                static_cast<double>(r.scratch_calls) /
                    static_cast<double>(r.pruned_calls))
        .metric(r.engine + ".identical", r.identical);
  }
  const bool json_ok = bench::write_if_requested(report, args);

  bool ok = json_ok && delta < 1e-12 && zero_copy;
  for (const Row& r : rows) ok = ok && r.identical;
  return ok ? 0 : 1;
}
