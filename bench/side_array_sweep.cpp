// E26 — side-array construction strategies (the dominant cost of the
// bottleneck decomposition): the paper's from-scratch sweep vs the
// Gray-code incremental sweep vs Gray + monotone pruning vs the
// bit-parallel slab sweep, for both feasibility engines. Reports wall
// time, max-flow solver calls, the incremental bookkeeping counters,
// and the slab sweep's word-wide coverage; verifies the arrays are
// bitwise identical and the end-to-end reliabilities agree to 1e-12.
// With --json=FILE the results are also written as a schema-versioned
// bench_harness record for CI trend tracking.
//
// --threads N applies ONE thread policy to every strategy: N=1 (the
// default) runs all sweeps serially, N=0 lets the library pick, any
// other N caps the OpenMP pool — so the per-strategy comparison is
// always like for like.

#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "bench_harness.hpp"

#include "streamrel/streamrel.hpp"
#include "streamrel/util/cli.hpp"
#include "streamrel/util/stopwatch.hpp"
#include "streamrel/util/table.hpp"
#include "streamrel/util/trace.hpp"

using namespace streamrel;

namespace {

std::uint64_t count_occurrences(const std::string& haystack,
                                const std::string& needle) {
  std::uint64_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

struct Row {
  std::string engine;
  double scratch_ms = 0.0;
  double gray_ms = 0.0;
  double pruned_ms = 0.0;
  double bit_ms = 0.0;
  std::uint64_t scratch_calls = 0;
  std::uint64_t gray_calls = 0;
  std::uint64_t pruned_calls = 0;
  std::uint64_t bit_calls = 0;
  std::uint64_t pruned_decisions = 0;
  std::uint64_t lanes_wordwise = 0;
  std::uint64_t scalar_residue = 0;
  bool identical = false;

  /// Fraction of per-lane decisions the slab kernels made without a
  /// scalar engine. 0 when the strategy delegated (polymatroid).
  double wordwise_coverage() const {
    const double total =
        static_cast<double>(lanes_wordwise + scalar_residue);
    return total > 0.0 ? static_cast<double>(lanes_wordwise) / total : 0.0;
  }
};

struct ThreadPolicy {
  bool parallel = false;
  ExecContext ctx;

  const ExecContext* context() const { return parallel ? &ctx : nullptr; }
};

SideArrayOptions strategy_options(FeasibilityMethod f, SideSweepStrategy s,
                                  bool pruning, const ThreadPolicy& policy) {
  SideArrayOptions o;
  o.feasibility = f;
  o.parallel = policy.parallel;
  o.sweep = s;
  o.monotone_pruning = pruning;
  return o;
}

Row run_engine(const std::string& name, FeasibilityMethod method,
               const SideProblem& side, const AssignmentSet& assignments,
               Capacity d, const ThreadPolicy& policy) {
  Row row;
  row.engine = name;
  Stopwatch sw;

  SideArrayStats scratch_stats;
  const auto scratch = build_side_array(
      side, assignments, d,
      strategy_options(method, SideSweepStrategy::kScratch, false, policy),
      &scratch_stats, policy.context());
  row.scratch_ms = sw.elapsed_ms();
  row.scratch_calls = scratch_stats.maxflow_calls();

  sw.reset();
  SideArrayStats gray_stats;
  const auto gray = build_side_array(
      side, assignments, d,
      strategy_options(method, SideSweepStrategy::kGrayIncremental, false,
                       policy),
      &gray_stats, policy.context());
  row.gray_ms = sw.elapsed_ms();
  row.gray_calls = gray_stats.maxflow_calls();

  sw.reset();
  SideArrayStats pruned_stats;
  const auto pruned = build_side_array(
      side, assignments, d,
      strategy_options(method, SideSweepStrategy::kGrayIncremental, true,
                       policy),
      &pruned_stats, policy.context());
  row.pruned_ms = sw.elapsed_ms();
  row.pruned_calls = pruned_stats.maxflow_calls();
  row.pruned_decisions = pruned_stats.pruned_decisions();

  sw.reset();
  SideArrayStats bit_stats;
  const auto bit_parallel = build_side_array(
      side, assignments, d,
      strategy_options(method, SideSweepStrategy::kBitParallel, false, policy),
      &bit_stats, policy.context());
  row.bit_ms = sw.elapsed_ms();
  row.bit_calls = bit_stats.maxflow_calls();
  row.lanes_wordwise = bit_stats.lanes_decided_wordwise();
  row.scalar_residue = bit_stats.scalar_residue();

  row.identical =
      scratch == gray && scratch == pruned && scratch == bit_parallel;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const int side_links = static_cast<int>(args.get_int("side-links", 18));
  const int bottleneck = static_cast<int>(args.get_int("bottleneck", 2));
  const Capacity d = args.get_int("demand", 2);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 17));
  const int threads = static_cast<int>(args.get_int("threads", 1));

  ThreadPolicy policy;
  policy.parallel = threads != 1;
  policy.ctx.max_threads = threads > 1 ? threads : 0;

  // A clustered instance whose SOURCE side carries `side_links` internal
  // links: nodes_s - 1 spanning-tree links plus the remainder as extras.
  Xoshiro256 rng(seed);
  ClusteredParams params;
  params.nodes_s = side_links / 2 + 1;
  params.extra_edges_s = side_links - (params.nodes_s - 1);
  params.nodes_t = 4;
  params.extra_edges_t = 1;
  params.bottleneck_links = bottleneck;
  params.bottleneck_caps = {1, 3};
  const GeneratedNetwork g = clustered_bottleneck(rng, params);
  const BottleneckPartition partition =
      partition_from_sides(g.net, g.source, g.sink, g.side_s);
  const FlowDemand demand{g.source, g.sink, d};
  const AssignmentSet forward =
      enumerate_assignments(g.net, partition, d, {AssignmentMode::kForwardOnly});
  const SideProblem side = make_side_problem(g.net, demand, partition, true);

  std::cout << "E26: side-array sweep strategies, |E_side|="
            << side.view.num_edges() << " (2^" << side.view.num_edges()
            << " configurations), |D|=" << forward.size() << ", d=" << d
            << ", k=" << bottleneck << ", threads="
            << (threads == 1 ? "serial" : std::to_string(threads)) << "\n\n";

  std::vector<Row> rows;
  rows.push_back(run_engine("per_assignment", FeasibilityMethod::kPerAssignment,
                            side, forward, d, policy));
  rows.push_back(run_engine("polymatroid", FeasibilityMethod::kPolymatroid,
                            side, forward, d, policy));

  TextTable table({"engine", "scratch_ms", "gray_ms", "gray+prune_ms",
                   "bit_ms", "bit_x_prune", "scratch_calls", "bit_calls",
                   "coverage", "identical"});
  for (const Row& r : rows) {
    table.new_row()
        .add_cell(r.engine)
        .add_cell(r.scratch_ms, 2)
        .add_cell(r.gray_ms, 2)
        .add_cell(r.pruned_ms, 2)
        .add_cell(r.bit_ms, 2)
        .add_cell(r.pruned_ms / r.bit_ms, 2)
        .add_cell(r.scratch_calls)
        .add_cell(r.bit_calls)
        .add_cell(r.wordwise_coverage(), 4)
        .add_cell(r.identical ? "yes" : "NO");
  }
  table.print(std::cout);

  // End-to-end cross-check: the full decomposition must produce the same
  // reliability whichever sweep built the side arrays.
  BottleneckOptions scratch_opts;
  scratch_opts.side = strategy_options(FeasibilityMethod::kAuto,
                                       SideSweepStrategy::kScratch, false,
                                       policy);
  BottleneckOptions gray_opts;
  gray_opts.side =
      strategy_options(FeasibilityMethod::kAuto,
                       SideSweepStrategy::kGrayIncremental, true, policy);
  BottleneckOptions bit_opts;
  bit_opts.side = strategy_options(FeasibilityMethod::kAuto,
                                   SideSweepStrategy::kBitParallel, false,
                                   policy);
  const double r_scratch =
      reliability_bottleneck(g.net, demand, partition, scratch_opts)
          .reliability;
  const double r_gray =
      reliability_bottleneck(g.net, demand, partition, gray_opts).reliability;
  const double r_bit =
      reliability_bottleneck(g.net, demand, partition, bit_opts).reliability;
  const double delta = std::max(std::abs(r_scratch - r_gray),
                                std::abs(r_scratch - r_bit));
  std::cout << "\nreliability scratch=" << r_scratch << " gray=" << r_gray
            << " bit=" << r_bit << " |delta|=" << delta
            << (delta < 1e-12 ? " (ok)" : " (DRIFT)") << "\n";

  // Zero-copy regression guard: trace one decomposition run and count the
  // span markers. The side views must come from NetworkView construction
  // ("network_view" spans), never from a copied FlowNetwork
  // ("induced_subgraph" spans) — CI diffs these counts via bench_compare.
  Tracer::set_enabled(true);
  Tracer::clear();
  reliability_bottleneck(g.net, demand, partition, gray_opts);
  const std::string trace = Tracer::export_chrome_json();
  Tracer::set_enabled(false);
  const std::uint64_t subgraph_copies =
      count_occurrences(trace, "{\"name\": \"induced_subgraph\"");
  const std::uint64_t view_builds =
      count_occurrences(trace, "{\"name\": \"network_view\"");
  const bool zero_copy = subgraph_copies == 0 && view_builds > 0;
  std::cout << "decomposition side views: " << view_builds
            << " zero-copy builds, " << subgraph_copies
            << " FlowNetwork copies" << (zero_copy ? " (ok)" : " (COPYING)")
            << "\n";

  bench::BenchReport report("side_array_sweep");
  report.metric("side_links", static_cast<std::int64_t>(side.view.num_edges()))
      .metric("assignments", static_cast<std::uint64_t>(forward.size()))
      .metric("demand", static_cast<std::int64_t>(d))
      .metric("seed", seed)
      .metric("threads", static_cast<std::int64_t>(threads))
      .metric("avx2_lane_kernel", lane_kernel_avx2_active())
      .metric("reliability_delta", delta)
      .metric("trace.subgraph_copies", subgraph_copies)
      .metric("trace.view_builds", view_builds);
  for (const Row& r : rows) {
    report.metric(r.engine + ".scratch_ms", r.scratch_ms)
        .metric(r.engine + ".gray_ms", r.gray_ms)
        .metric(r.engine + ".gray_pruned_ms", r.pruned_ms)
        .metric(r.engine + ".bit_ms", r.bit_ms)
        .metric(r.engine + ".scratch_calls", r.scratch_calls)
        .metric(r.engine + ".gray_calls", r.gray_calls)
        .metric(r.engine + ".gray_pruned_calls", r.pruned_calls)
        .metric(r.engine + ".bit_calls", r.bit_calls)
        .metric(r.engine + ".pruned_decisions", r.pruned_decisions)
        .metric(r.engine + ".lanes_decided_wordwise", r.lanes_wordwise)
        .metric(r.engine + ".scalar_residue", r.scalar_residue)
        .metric(r.engine + ".speedup", r.scratch_ms / r.pruned_ms)
        .metric(r.engine + ".bit_speedup_vs_gray", r.pruned_ms / r.bit_ms)
        .metric(r.engine + ".wordwise_coverage", r.wordwise_coverage())
        .metric(r.engine + ".call_reduction",
                static_cast<double>(r.scratch_calls) /
                    static_cast<double>(r.pruned_calls))
        .metric(r.engine + ".identical", r.identical);
  }
  const bool json_ok = bench::write_if_requested(report, args);

  bool ok = json_ok && delta < 1e-12 && zero_copy;
  for (const Row& r : rows) ok = ok && r.identical;
  return ok ? 0 : 1;
}
