// E22 — quality of the polynomial-time reliability bounds: how tight is
// the [lower, upper] envelope around the exact value across workload
// families, and how often does it decide feasibility questions (e.g.
// "is R >= 0.99?") without any exponential work?

#include <algorithm>
#include <iostream>

#include "bench_harness.hpp"
#include "streamrel/streamrel.hpp"
#include "streamrel/util/cli.hpp"
#include "streamrel/util/table.hpp"

using namespace streamrel;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  bench::BenchReport record("bounds_quality");
  const int trials = static_cast<int>(args.get_int("trials", 40));

  std::cout << "E22: bound tightness across workload families (" << trials
            << " instances each, d = 2)\n\n";
  TextTable table({"family", "mean width", "max width", "mean rel err of mid",
                   "envelope holds"});

  Xoshiro256 rng(4711);
  struct Family {
    const char* name;
    int id;
  };
  for (const Family family : {Family{"two-cluster", 0}, Family{"random", 1},
                              Family{"ladder", 2}}) {
    OnlineStats width, mid_err;
    double max_width = 0.0;
    bool holds = true;
    for (int trial = 0; trial < trials; ++trial) {
      GeneratedNetwork g;
      if (family.id == 0) {
        ClusteredParams params;
        params.bottleneck_links = 2;
        params.bottleneck_caps = {2, 2};
        g = clustered_bottleneck(rng, params);
      } else if (family.id == 1) {
        g = random_connected(rng, 7, 7, {1, 3}, {0.05, 0.3});
      } else {
        g = ladder_network(5, 2, 0.1);
      }
      const FlowDemand demand{g.source, g.sink, 2};
      const ReliabilityBounds bounds = reliability_bounds(g.net, demand);
      const double exact = reliability_naive(g.net, demand).reliability;
      holds &= bounds.contains(exact);
      const double w = bounds.upper - bounds.lower;
      width.add(w);
      max_width = std::max(max_width, w);
      const double mid = 0.5 * (bounds.upper + bounds.lower);
      if (exact > 0.0) mid_err.add(std::abs(mid - exact) / exact);
    }
    table.new_row()
        .add_cell(family.name)
        .add_cell(width.mean(), 4)
        .add_cell(max_width, 4)
        .add_cell(mid_err.mean(), 4)
        .add_cell(holds ? "yes" : "NO");
    const std::string prefix = family.name;
    record.metric(bench::key(prefix, "mean_width"), width.mean())
        .metric(bench::key(prefix, "max_width"), max_width)
        .metric(bench::key(prefix, "mid_rel_err"), mid_err.mean())
        .metric(bench::key(prefix, "holds"), holds);
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: the envelope always holds; it is tightest "
               "on bottlenecked topologies (the critical cut is in the "
               "family) and loosest on well-connected random graphs.\n";
  const bool json_ok = bench::write_if_requested(record, args);
  return json_ok ? 0 : 1;
}
