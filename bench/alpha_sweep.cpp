// E11 — dependence on alpha (§III): the decomposition's cost is driven by
// 2^max(|E_s|, |E_t|), so at fixed |E| a balanced partition (alpha ~ 1/2)
// is exponentially cheaper than a skewed one (alpha -> 1). Sweep the
// side split of an 18-link network from 14|2 down to 8|8.

#include <algorithm>
#include <iostream>

#include "bench_harness.hpp"
#include "streamrel/streamrel.hpp"
#include "streamrel/util/cli.hpp"
#include "streamrel/util/stopwatch.hpp"
#include "streamrel/util/table.hpp"

using namespace streamrel;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  bench::BenchReport record("alpha_sweep");
  const int total_side_edges =
      static_cast<int>(args.get_int("side-edges", 16));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 5));

  std::cout << "E11: runtime vs alpha at fixed |E| = " << total_side_edges + 2
            << " (k = 2, d = 2)\n\n";
  TextTable table({"|E_s|", "|E_t|", "alpha", "bottleneck_ms", "naive_ms",
                   "agree"});
  for (int left = total_side_edges / 2; left <= total_side_edges - 2;
       left += 2) {
    const int right = total_side_edges - left;
    ClusteredParams params;
    // Sides are a tree plus extras; node counts sized so both splits fit.
    params.nodes_s = std::max(2, std::min(5, left));
    params.nodes_t = std::max(2, std::min(5, right));
    params.extra_edges_s = left - (params.nodes_s - 1);
    params.extra_edges_t = right - (params.nodes_t - 1);
    params.bottleneck_links = 2;
    params.bottleneck_caps = {2, 2};
    params.cluster_caps = {1, 2};
    params.cluster_probs = {0.05, 0.3};
    params.bottleneck_probs = {0.05, 0.3};
    Xoshiro256 rng(mix_seed(seed, static_cast<std::uint64_t>(left)));
    const GeneratedNetwork g = clustered_bottleneck(rng, params);
    const FlowDemand demand{g.source, g.sink, 2};
    const BottleneckPartition partition =
        partition_from_sides(g.net, g.source, g.sink, g.side_s);
    const PartitionStats stats =
        analyze_partition(g.net, g.source, g.sink, partition);

    Stopwatch sw;
    const double r_b =
        reliability_bottleneck(g.net, demand, partition).reliability;
    const double b_ms = sw.elapsed_ms();
    sw.reset();
    const double r_n = reliability_naive(g.net, demand).reliability;
    const double n_ms = sw.elapsed_ms();

    table.new_row()
        .add_cell(stats.edges_s)
        .add_cell(stats.edges_t)
        .add_cell(stats.alpha, 3)
        .add_cell(b_ms, 4)
        .add_cell(n_ms, 4)
        .add_cell(std::abs(r_b - r_n) < 1e-9 ? "yes" : "NO");
    std::string prefix = "es";
    prefix += std::to_string(stats.edges_s);
    record.metric(bench::key(prefix, "alpha"), stats.alpha)
        .metric(bench::key(prefix, "bottleneck_ms"), b_ms)
        .metric(bench::key(prefix, "naive_ms"), n_ms)
        .metric(bench::key(prefix, "agree"), std::abs(r_b - r_n) < 1e-9);
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: bottleneck_ms grows with alpha (the larger "
               "side dominates); naive_ms stays flat (fixed |E|).\n";
  const bool json_ok = bench::write_if_requested(record, args);
  return json_ok ? 0 : 1;
}
