// Regenerates every worked example, table, and figure of the paper
// (experiment rows E1-E8 in DESIGN.md / EXPERIMENTS.md). Run without
// arguments to print everything, or pass --e1 ... --e8 for one artifact.

#include <iostream>
#include <string>

#include "bench_harness.hpp"
#include "streamrel/streamrel.hpp"
#include "streamrel/util/cli.hpp"
#include "streamrel/util/table.hpp"

namespace streamrel {
namespace {

std::string usage_string(const Assignment& a) {
  std::string out = "(";
  for (std::size_t i = 0; i < a.usage.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(a.usage[i]);
  }
  return out + ")";
}

std::string mask_to_assignments(Mask m, const AssignmentSet& set) {
  std::string out = "{";
  bool first = true;
  for (int j = 0; j < set.size(); ++j) {
    if (!test_bit(m, j)) continue;
    if (!first) out += ", ";
    first = false;
    out += usage_string(set.assignments[static_cast<std::size_t>(j)]);
  }
  return out + "}";
}

void e1_naive_method() {
  std::cout << "=== E1 (Fig. 1): naive calculation of the reliability ===\n";
  const GeneratedNetwork g = make_fig4_graph(0.2);
  const FlowDemand demand{g.source, g.sink, 2};
  const auto result = reliability_naive(g.net, demand);
  std::cout << "graph: " << g.net.summary() << ", demand d = 2\n"
            << "failure configurations examined: " << result.configurations()
            << " (= 2^|E|)\nmax-flow computations: " << result.maxflow_calls()
            << "\nreliability = " << format_double(result.reliability, 12)
            << "\n\n";
}

void e2_bridge() {
  std::cout << "=== E2 (Fig. 2, Eq. 1): graph with bridge e9 ===\n";
  const GeneratedNetwork g = make_fig2_bridge_graph(0.1);
  const FlowDemand demand{g.source, g.sink, 1};
  const double eq1 = reliability_bridge_formula(g.net, demand, 8);
  const double naive = reliability_naive(g.net, demand).reliability;
  const BottleneckPartition partition =
      partition_from_sides(g.net, g.source, g.sink, g.side_s);
  const double decomposed =
      reliability_bottleneck(g.net, demand, partition).reliability;
  TextTable t({"method", "reliability"});
  t.new_row().add_cell("Equation (1): r(Gs)(1-p(e*))r(Gt)").add_cell(eq1, 12);
  t.new_row().add_cell("bottleneck decomposition (k=1)").add_cell(decomposed,
                                                                  12);
  t.new_row().add_cell("naive 2^|E| enumeration").add_cell(naive, 12);
  t.print(std::cout);
  std::cout << "\n";
}

void e3_example1() {
  std::cout << "=== E3 (Example 1): assignments for d=5, c=(3,3,3) ===\n";
  FlowNetwork net(2);
  for (int i = 0; i < 3; ++i) net.add_undirected_edge(0, 1, 3, 0.1);
  const BottleneckPartition partition =
      partition_from_sides(net, 0, 1, {true, false});
  const AssignmentSet set = enumerate_assignments(
      net, partition, 5, {AssignmentMode::kForwardOnly});
  std::cout << "|D| = " << set.size() << "\nD = { ";
  for (int j = 0; j < set.size(); ++j) {
    if (j > 0) std::cout << ", ";
    std::cout << usage_string(set.assignments[static_cast<std::size_t>(j)]);
  }
  std::cout << " }\n\n";
}

void e4_side_array() {
  std::cout << "=== E4 (Fig. 3 / Example 2): the side-array data structure "
               "===\n";
  const GeneratedNetwork g = make_fig4_graph(0.1);
  const FlowDemand demand{g.source, g.sink, 2};
  const BottleneckPartition partition =
      partition_from_sides(g.net, g.source, g.sink, g.side_s);
  const AssignmentSet set = enumerate_assignments(g.net, partition, 2, {});
  const SideProblem side = make_side_problem(g.net, demand, partition, true);
  const auto array = build_side_array(side, set, 2);
  std::cout << "source side G_s: " << side.view.num_nodes() << " nodes, "
            << side.view.num_edges() << " edges, array of 2^"
            << side.view.num_edges() << " = " << array.size()
            << " elements, each a |D| = " << set.size() << "-bit value\n";
  TextTable t({"config (alive mask)", "bits", "realized assignments"});
  for (Mask config : {Mask{0b11111}, Mask{0b01101}, Mask{0b00101},
                      Mask{0b00011}, Mask{0}}) {
    std::string bits;
    for (int j = set.size() - 1; j >= 0; --j) {
      bits += test_bit(array[static_cast<std::size_t>(config)], j) ? '1' : '0';
    }
    t.new_row()
        .add_cell(std::to_string(config))
        .add_cell(bits)
        .add_cell(mask_to_assignments(array[static_cast<std::size_t>(config)],
                                      set));
  }
  t.print(std::cout);
  std::cout << "\n";
}

void e5_fig4() {
  std::cout << "=== E5 (Fig. 4 / Example 3): the two-bottleneck graph ===\n";
  const GeneratedNetwork g = make_fig4_graph(0.2);
  const FlowDemand demand{g.source, g.sink, 2};
  const BottleneckPartition partition =
      partition_from_sides(g.net, g.source, g.sink, g.side_s);
  const AssignmentSet set = enumerate_assignments(g.net, partition, 2, {});
  std::cout << "graph: " << g.net.summary()
            << "; bottleneck links e1 = edge 7, e2 = edge 8 (capacity 2 "
               "each)\n"
            << "admits d = 2: "
            << (max_flow(g.net, g.source, g.sink) >= 2 ? "yes" : "no")
            << "\nD = " << mask_to_assignments(full_mask(set.size()), set)
            << "\n";
  const double decomposed =
      reliability_bottleneck(g.net, demand, partition).reliability;
  const double naive = reliability_naive(g.net, demand).reliability;
  std::cout << "decomposition = " << format_double(decomposed, 12)
            << ", naive = " << format_double(naive, 12) << "\n\n";
}

void e6_fig5() {
  std::cout << "=== E6 (Fig. 5): three failure configurations of G_s ===\n";
  const GeneratedNetwork g = make_fig4_graph(0.1);
  const FlowDemand demand{g.source, g.sink, 2};
  const BottleneckPartition partition =
      partition_from_sides(g.net, g.source, g.sink, g.side_s);
  const AssignmentSet set = enumerate_assignments(g.net, partition, 2, {});
  const SideProblem side = make_side_problem(g.net, demand, partition, true);
  const auto array = build_side_array(side, set, 2);
  const Fig5Configs configs = fig5_source_side_configs();
  TextTable t({"configuration", "alive side links", "realized assignments"});
  const char* names[] = {"(a)", "(b)", "(c)"};
  const Mask masks[] = {configs.a, configs.b, configs.c};
  for (int i = 0; i < 3; ++i) {
    std::string alive;
    for (int b : bits_of(masks[i])) {
      alive += 'e';
      alive += std::to_string(b);
      alive += ' ';
    }
    t.new_row()
        .add_cell(names[i])
        .add_cell(alive)
        .add_cell(mask_to_assignments(
            array[static_cast<std::size_t>(masks[i])], set));
  }
  t.print(std::cout);
  std::cout << "\n";
}

void e7_example5() {
  std::cout << "=== E7 (Def. 1, Examples 4-5): supporting subsets ===\n";
  AssignmentSet set;
  set.assignments = {Assignment{{1, 2, 0}}, Assignment{{2, 1, 0}},
                     Assignment{{1, 1, 1}}, Assignment{{0, 2, 1}},
                     Assignment{{2, 0, 1}}};
  TextTable t({"alive bottleneck subset", "supported assignments D_E''"});
  for (Mask alive = 0; alive < 8; ++alive) {
    std::string subset = "{";
    for (int b : bits_of(alive)) {
      if (subset.size() > 1) subset += ",";
      subset += 'e';
      subset += std::to_string(b + 1);
    }
    subset += "}";
    t.new_row().add_cell(subset).add_cell(
        mask_to_assignments(set.supported_by(alive), set));
  }
  t.print(std::cout);
  std::cout << "\n";
}

void e8_example6() {
  std::cout << "=== E8 (Example 6 / Table I): inclusion-exclusion "
               "accumulation ===\n";
  // Table I assignment realizations with concrete probabilities.
  const double pc[8] = {0.1, 0.2, 0.3, 0.4, 0.15, 0.25, 0.35, 0.25};
  MaskDistribution gs;
  gs.buckets = {{mask_of({0}), pc[0]},
                {mask_of({1}), pc[1] + pc[3]},
                {mask_of({0, 1}), pc[2]}};
  gs.total = 1.0;
  MaskDistribution gt;
  gt.buckets = {{mask_of({0, 1}), pc[4]},
                {mask_of({1}), pc[5]},
                {mask_of({0}), pc[6]},
                {0, pc[7]}};
  gt.total = 1.0;
  const double p_b1 = (pc[0] + pc[2]) * (pc[4] + pc[6]);
  const double p_b2 = (pc[1] + pc[2] + pc[3]) * (pc[4] + pc[5]);
  const double p_b1b2 = pc[2] * pc[4];
  std::cout << "p_{b1}      = (p(c1)+p(c3))(p(c5)+p(c7)) = "
            << format_double(p_b1, 12) << "\n"
            << "p_{b2}      = (p(c2)+p(c3)+p(c4))(p(c5)+p(c6)) = "
            << format_double(p_b2, 12) << "\n"
            << "p_{b1,b2}   = p(c3)p(c5) = " << format_double(p_b1b2, 12)
            << "\n"
            << "r_{E''}     = p_{b1}+p_{b2}-p_{b1,b2} = "
            << format_double(p_b1 + p_b2 - p_b1b2, 12) << "\n";
  TextTable t({"strategy", "r_{E''}"});
  t.new_row()
      .add_cell("paper inclusion-exclusion")
      .add_cell(joint_success_probability(
                    gs, gt, mask_of({0, 1}),
                    AccumulationStrategy::kPaperInclusionExclusion),
                12);
  t.new_row().add_cell("zeta transform")
      .add_cell(joint_success_probability(gs, gt, mask_of({0, 1}),
                                          AccumulationStrategy::kZetaTransform),
                12);
  t.new_row().add_cell("bucket product")
      .add_cell(joint_success_probability(gs, gt, mask_of({0, 1}),
                                          AccumulationStrategy::kBucketProduct),
                12);
  t.print(std::cout);
  std::cout << "\n";
}

}  // namespace
}  // namespace streamrel

int main(int argc, char** argv) {
  using namespace streamrel;
  const CliArgs args(argc, argv);
  const bool all = !args.has("e1") && !args.has("e2") && !args.has("e3") &&
                   !args.has("e4") && !args.has("e5") && !args.has("e6") &&
                   !args.has("e7") && !args.has("e8");
  if (all || args.has("e1")) e1_naive_method();
  if (all || args.has("e2")) e2_bridge();
  if (all || args.has("e3")) e3_example1();
  if (all || args.has("e4")) e4_side_array();
  if (all || args.has("e5")) e5_fig4();
  if (all || args.has("e6")) e6_fig5();
  if (all || args.has("e7")) e7_example5();
  if (all || args.has("e8")) e8_example6();
  bench::BenchReport record("paper_artifacts");
  record.metric("e1", all || args.has("e1"))
      .metric("e2", all || args.has("e2"))
      .metric("e3", all || args.has("e3"))
      .metric("e4", all || args.has("e4"))
      .metric("e5", all || args.has("e5"))
      .metric("e6", all || args.has("e6"))
      .metric("e7", all || args.has("e7"))
      .metric("e8", all || args.has("e8"));
  const bool json_ok = bench::write_if_requested(record, args);
  return json_ok ? 0 : 1;
}
