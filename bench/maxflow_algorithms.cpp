// E16a — max-flow substrate comparison: Dinic vs Edmonds-Karp vs FIFO
// push-relabel on the generator families the reliability sweeps solve
// (many small instances). Argument = node count of the family.

#include <benchmark/benchmark.h>

#include <vector>

#include "streamrel/graph/generators.hpp"
#include "streamrel/maxflow/config_residual.hpp"
#include "streamrel/maxflow/maxflow.hpp"
#include "streamrel/util/prng.hpp"

namespace streamrel {
namespace {

void run_family(benchmark::State& state, MaxFlowAlgorithm algorithm,
                bool grid) {
  const int n = static_cast<int>(state.range(0));
  Xoshiro256 rng(31 + static_cast<std::uint64_t>(n));
  const GeneratedNetwork g =
      grid ? grid_network(n, n, 3, 0.1)
           : random_connected(rng, n * n, 2 * n * n, {1, 5}, {0.05, 0.3});
  ConfigResidual residual(g.net);
  auto solver = make_solver(algorithm);
  const std::vector<bool> all(static_cast<std::size_t>(g.net.num_edges()),
                              true);
  Capacity sink = 0;
  for (auto _ : state) {
    residual.reset_with(all);
    sink += solver->solve(residual.graph(), g.source, g.sink);
  }
  benchmark::DoNotOptimize(sink);
  state.counters["edges"] = g.net.num_edges();
}

void BM_Dinic_Grid(benchmark::State& state) {
  run_family(state, MaxFlowAlgorithm::kDinic, true);
}
void BM_EdmondsKarp_Grid(benchmark::State& state) {
  run_family(state, MaxFlowAlgorithm::kEdmondsKarp, true);
}
void BM_PushRelabel_Grid(benchmark::State& state) {
  run_family(state, MaxFlowAlgorithm::kPushRelabel, true);
}
void BM_Dinic_Random(benchmark::State& state) {
  run_family(state, MaxFlowAlgorithm::kDinic, false);
}
void BM_EdmondsKarp_Random(benchmark::State& state) {
  run_family(state, MaxFlowAlgorithm::kEdmondsKarp, false);
}
void BM_PushRelabel_Random(benchmark::State& state) {
  run_family(state, MaxFlowAlgorithm::kPushRelabel, false);
}

BENCHMARK(BM_Dinic_Grid)->DenseRange(3, 5, 1);
BENCHMARK(BM_EdmondsKarp_Grid)->DenseRange(3, 5, 1);
BENCHMARK(BM_PushRelabel_Grid)->DenseRange(3, 5, 1);
BENCHMARK(BM_Dinic_Random)->DenseRange(3, 5, 1);
BENCHMARK(BM_EdmondsKarp_Random)->DenseRange(3, 5, 1);
BENCHMARK(BM_PushRelabel_Random)->DenseRange(3, 5, 1);

}  // namespace
}  // namespace streamrel
