// E15 — side-array feasibility engines (§III-C): one bounded max-flow per
// (configuration, assignment) pair — the paper's procedure — vs the
// polymatroid fast path (2^k max-flows per configuration plus arithmetic,
// via the Gale condition). The argument is the demand d; larger d means
// more assignments, which is exactly where the polymatroid path wins.

#include <benchmark/benchmark.h>

#include "streamrel/core/side_array.hpp"
#include "streamrel/graph/generators.hpp"
#include "streamrel/util/prng.hpp"

namespace streamrel {
namespace {

struct Instance {
  GeneratedNetwork g;
  BottleneckPartition partition;
  AssignmentSet assignments;
  SideProblem side;
  Capacity d;
};

Instance make_instance(Capacity d) {
  Xoshiro256 rng(4242 + static_cast<std::uint64_t>(d));
  ClusteredParams params;
  params.nodes_s = 5;
  params.nodes_t = 5;
  params.extra_edges_s = 6;
  params.extra_edges_t = 6;
  params.bottleneck_links = 3;
  params.cluster_caps = {1, d};
  params.bottleneck_caps = {d, d};
  Instance inst{clustered_bottleneck(rng, params), {}, {}, {}, d};
  inst.partition = partition_from_sides(inst.g.net, inst.g.source,
                                        inst.g.sink, inst.g.side_s);
  AssignmentOptions opts;
  opts.mode = AssignmentMode::kForwardOnly;
  inst.assignments =
      enumerate_assignments(inst.g.net, inst.partition, d, opts);
  inst.side = make_side_problem(inst.g.net, {inst.g.source, inst.g.sink, d},
                                inst.partition, /*source_side=*/true);
  return inst;
}

void run(benchmark::State& state, FeasibilityMethod method) {
  const Instance inst = make_instance(state.range(0));
  SideArrayOptions options;
  options.feasibility = method;
  options.parallel = false;
  std::uint64_t calls = 0;
  for (auto _ : state) {
    auto array = build_side_array(inst.side, inst.assignments, inst.d,
                                  options, &calls);
    benchmark::DoNotOptimize(array);
  }
  state.SetLabel("|D| = " + std::to_string(inst.assignments.size()));
  state.counters["maxflow_calls_per_iter"] =
      static_cast<double>(calls) / static_cast<double>(state.iterations());
}

void BM_PerAssignment(benchmark::State& state) {
  run(state, FeasibilityMethod::kPerAssignment);
}
void BM_Polymatroid(benchmark::State& state) {
  run(state, FeasibilityMethod::kPolymatroid);
}

BENCHMARK(BM_PerAssignment)->DenseRange(1, 5, 1);
BENCHMARK(BM_Polymatroid)->DenseRange(1, 5, 1);

}  // namespace
}  // namespace streamrel
