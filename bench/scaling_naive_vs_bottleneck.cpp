// E10 — the paper's headline claim (§I, §V): the bottleneck decomposition
// computes the reliability in O(2^{alpha|E|} |V||E|) versus the naive
// O(2^{|E|} |V||E|). This harness measures both (plus the factoring
// baseline) on clustered networks with k = 2 bottleneck links and
// balanced sides (alpha ~ 1/2), growing |E|, then fits the empirical
// exponents: the naive slope should sit near 1 bit per added link and
// the decomposition near alpha ~ 0.5.

#include <cmath>
#include <iostream>
#include <vector>

#include "bench_harness.hpp"
#include "streamrel/streamrel.hpp"
#include "streamrel/util/cli.hpp"
#include "streamrel/util/stats.hpp"
#include "streamrel/util/stopwatch.hpp"
#include "streamrel/util/table.hpp"

using namespace streamrel;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const int max_edges = static_cast<int>(args.get_int("max-edges", 21));
  const Capacity d = args.get_int("d", 2);
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 11));

  std::cout << "E10: naive vs bottleneck decomposition, k = 2, alpha ~ 0.5, "
            << "d = " << d << "\n\n";
  TextTable table({"|E|", "side", "alpha", "naive_ms", "factoring_ms",
                   "bottleneck_ms", "speedup", "|R_naive - R_btl|"});

  std::vector<double> xs, naive_log, bottleneck_log;
  for (int m = 13; m <= max_edges; m += 2) {
    // Build sides with (m - 2) / 2 links each: 5-node cluster trees (4
    // links) plus extras.
    const int side_edges = (m - 2) / 2;
    ClusteredParams params;
    params.nodes_s = 5;
    params.nodes_t = 5;
    params.extra_edges_s = side_edges - 4;
    params.extra_edges_t = (m - 2) - side_edges - 4;
    params.bottleneck_links = 2;
    params.cluster_caps = {1, 2};
    params.bottleneck_caps = {d, d};
    params.cluster_probs = {0.05, 0.25};
    params.bottleneck_probs = {0.05, 0.25};
    Xoshiro256 rng(mix_seed(seed, static_cast<std::uint64_t>(m)));
    const GeneratedNetwork g = clustered_bottleneck(rng, params);
    const FlowDemand demand{g.source, g.sink, d};
    const BottleneckPartition partition =
        partition_from_sides(g.net, g.source, g.sink, g.side_s);
    const PartitionStats stats =
        analyze_partition(g.net, g.source, g.sink, partition);

    Stopwatch sw;
    const double r_naive = reliability_naive(g.net, demand).reliability;
    const double naive_ms = sw.elapsed_ms();

    sw.reset();
    const double r_factoring =
        reliability_factoring(g.net, demand).reliability;
    const double factoring_ms = sw.elapsed_ms();
    (void)r_factoring;

    sw.reset();
    const double r_bottleneck =
        reliability_bottleneck(g.net, demand, partition).reliability;
    const double bottleneck_ms = sw.elapsed_ms();

    table.new_row()
        .add_cell(m)
        .add_cell(std::max(stats.edges_s, stats.edges_t))
        .add_cell(stats.alpha, 3)
        .add_cell(naive_ms, 4)
        .add_cell(factoring_ms, 4)
        .add_cell(bottleneck_ms, 4)
        .add_cell(naive_ms / bottleneck_ms, 4)
        .add_cell(std::abs(r_naive - r_bottleneck), 3);

    xs.push_back(m);
    naive_log.push_back(std::log2(naive_ms));
    bottleneck_log.push_back(std::log2(bottleneck_ms));
  }
  table.print(std::cout);

  const LineFit naive_fit = fit_line(xs, naive_log);
  const LineFit bottleneck_fit = fit_line(xs, bottleneck_log);
  bench::BenchReport record("scaling_naive_vs_bottleneck");
  record.metric("rows", static_cast<std::uint64_t>(xs.size()))
      .metric("naive_slope", naive_fit.slope)
      .metric("naive_r2", naive_fit.r_squared)
      .metric("bottleneck_slope", bottleneck_fit.slope)
      .metric("bottleneck_r2", bottleneck_fit.r_squared);
  std::cout << "\nempirical exponents (log2 ms per added link):\n"
            << "  naive:         " << format_double(naive_fit.slope, 3)
            << "  (paper predicts ~1.0, R^2 = "
            << format_double(naive_fit.r_squared, 3) << ")\n"
            << "  decomposition: " << format_double(bottleneck_fit.slope, 3)
            << "  (paper predicts ~alpha = 0.5, R^2 = "
            << format_double(bottleneck_fit.r_squared, 3) << ")\n";
  const bool json_ok = bench::write_if_requested(record, args);
  return json_ok ? 0 : 1;
}
