// E17 — Monte Carlo estimator quality against the exact oracle: estimate,
// error, and confidence-interval behaviour as the sample count grows.

#include <algorithm>
#include <iostream>

#include "bench_harness.hpp"
#include "streamrel/streamrel.hpp"
#include "streamrel/util/cli.hpp"
#include "streamrel/util/stopwatch.hpp"
#include "streamrel/util/table.hpp"

using namespace streamrel;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  bench::BenchReport record("montecarlo_convergence");
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 23));

  Xoshiro256 rng(seed);
  ClusteredParams params;
  params.nodes_s = 5;
  params.nodes_t = 5;
  params.extra_edges_s = 4;
  params.extra_edges_t = 4;
  params.bottleneck_links = 2;
  params.bottleneck_caps = {2, 2};
  params.cluster_probs = {0.05, 0.3};
  params.bottleneck_probs = {0.05, 0.3};
  const GeneratedNetwork g = clustered_bottleneck(rng, params);
  const FlowDemand demand{g.source, g.sink, 2};
  const double exact = reliability_factoring(g.net, demand).reliability;

  std::cout << "E17: Monte Carlo convergence on a " << g.net.num_edges()
            << "-link two-cluster network; exact R = "
            << format_double(exact, 10) << "\n\n";
  TextTable table({"samples", "estimate", "|error|", "ci95_halfwidth",
                   "covered", "ms"});
  for (std::uint64_t samples : {100ULL, 1000ULL, 10'000ULL, 100'000ULL,
                                1'000'000ULL}) {
    MonteCarloOptions options;
    options.samples = samples;
    options.seed = mix_seed(seed, samples);
    Stopwatch sw;
    const MonteCarloResult mc = reliability_monte_carlo(g.net, demand, options);
    const double ms = sw.elapsed_ms();
    table.new_row()
        .add_cell(samples)
        .add_cell(mc.estimate, 6)
        .add_cell(std::abs(mc.estimate - exact), 6)
        .add_cell(mc.ci95_halfwidth, 6)
        .add_cell(mc.wilson95.contains(exact) ? "yes" : "no")
        .add_cell(ms, 4);
    std::string prefix = "s";
    prefix += std::to_string(samples);
    record.metric(bench::key(prefix, "error"), std::abs(mc.estimate - exact))
        .metric(bench::key(prefix, "ci95_halfwidth"), mc.ci95_halfwidth)
        .metric(bench::key(prefix, "covered"), mc.wilson95.contains(exact))
        .metric(bench::key(prefix, "ms"), ms);
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: error and CI half-width shrink as "
               "1/sqrt(samples); the Wilson interval covers the exact value "
               "~95% of the time.\n";
  const bool json_ok = bench::write_if_requested(record, args);
  return json_ok ? 0 : 1;
}
