#pragma once
// Shared bench-output harness. Every table-generator bench serialises
// its headline metrics as ONE schema-versioned JSON record so the
// perf-trajectory tooling can diff runs across commits instead of
// scraping ad-hoc per-bench formats:
//
//   {"schema_version": 1, "bench": "side_array_sweep",
//    "git": "v1.1.0-12-gabc1234", "timestamp": "2026-08-06T12:34:56Z",
//    "repetitions": 1, "metrics": {...flat key -> number/string/bool...}}
//
// Usage at the end of a bench's main():
//
//   bench::BenchReport report("side_array_sweep");
//   report.metric("scratch_ms", ms).metric("identical", true);
//   const bool json_ok = bench::write_if_requested(report, args);
//   return ok && json_ok ? 0 : 1;
//
// write_if_requested() honours the conventional --json=FILE flag (the CI
// jobs pass BENCH_<name>.json); without the flag nothing is written and
// the bench keeps its human-readable stdout. Metrics are a FLAT ordered
// map — benches with per-engine rows use dotted keys
// ("per_assignment.scratch_ms") so downstream tooling never needs to
// descend a bench-specific tree. The Google-Benchmark micro-benches are
// not covered here; they already emit structured JSON via
// --benchmark_out.
//
// STREAMREL_GIT_DESCRIBE is injected by bench/CMakeLists.txt from
// `git describe`; "unknown" outside a git checkout (tarball builds).

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "streamrel/util/cli.hpp"

#ifndef STREAMREL_GIT_DESCRIBE
#define STREAMREL_GIT_DESCRIBE "unknown"
#endif

namespace streamrel::bench {

inline constexpr int kBenchSchemaVersion = 1;

/// "prefix.suffix" for the dotted per-row metric keys. append-based on
/// purpose: GCC 12's -Wrestrict false-positives on chained std::string
/// operator+ under -O2, and benches build with -Werror.
inline std::string key(std::string_view prefix, std::string_view suffix) {
  std::string out;
  out.reserve(prefix.size() + suffix.size() + 1);
  out.append(prefix);
  out += '.';
  out.append(suffix);
  return out;
}

class BenchReport {
 public:
  explicit BenchReport(std::string name, int repetitions = 1)
      : name_(std::move(name)), repetitions_(repetitions) {}

  BenchReport& metric(std::string_view key, double value) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    return raw(key, buf);
  }
  BenchReport& metric(std::string_view key, std::uint64_t value) {
    return raw(key, std::to_string(value));
  }
  BenchReport& metric(std::string_view key, std::int64_t value) {
    return raw(key, std::to_string(value));
  }
  BenchReport& metric(std::string_view key, int value) {
    return raw(key, std::to_string(value));
  }
  BenchReport& metric(std::string_view key, bool value) {
    return raw(key, value ? "true" : "false");
  }
  BenchReport& metric(std::string_view key, std::string_view value) {
    return raw(key, quoted(value));
  }
  BenchReport& metric(std::string_view key, const char* value) {
    return raw(key, quoted(value));
  }

  std::string to_json() const {
    std::string out = "{\n  \"schema_version\": ";
    out += std::to_string(kBenchSchemaVersion);
    out += ",\n  \"bench\": " + quoted(name_);
    out += ",\n  \"git\": " + quoted(STREAMREL_GIT_DESCRIBE);
    out += ",\n  \"timestamp\": " + quoted(utc_timestamp());
    out += ",\n  \"repetitions\": " + std::to_string(repetitions_);
    out += ",\n  \"metrics\": {";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      out += i ? ",\n    " : "\n    ";
      out += quoted(metrics_[i].first) + ": " + metrics_[i].second;
    }
    out += metrics_.empty() ? "}" : "\n  }";
    out += "\n}\n";
    return out;
  }

  bool write(const std::string& path) const {
    std::ofstream out(path);
    out << to_json();
    return static_cast<bool>(out);
  }

 private:
  BenchReport& raw(std::string_view key, std::string rendered) {
    metrics_.emplace_back(std::string(key), std::move(rendered));
    return *this;
  }

  static std::string quoted(std::string_view s) {
    std::string out = "\"";
    for (const char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += '"';
    return out;
  }

  static std::string utc_timestamp() {
    const std::time_t now = std::chrono::system_clock::to_time_t(
        std::chrono::system_clock::now());
    std::tm utc{};
#if defined(_WIN32)
    gmtime_s(&utc, &now);
#else
    gmtime_r(&now, &utc);
#endif
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &utc);
    return buf;
  }

  std::string name_;
  int repetitions_ = 1;
  std::vector<std::pair<std::string, std::string>> metrics_;
};

/// Writes the record when --json=FILE was passed. Returns false only on
/// a failed write (benches fold it into their exit code so CI notices a
/// missing artifact).
inline bool write_if_requested(const BenchReport& report,
                               const CliArgs& args) {
  const std::string path = args.get("json", "");
  if (path.empty()) return true;
  if (!report.write(path)) {
    std::cerr << "error: could not write " << path << "\n";
    return false;
  }
  std::cout << "wrote " << path << "\n";
  return true;
}

}  // namespace streamrel::bench
