// E16b — execution strategies for the naive 2^|E| enumeration (Fig. 1):
// from-scratch evaluation vs the Gray-code walk with incremental flow
// repair (one edge toggles per configuration) vs the OpenMP parallel
// sweep. All three compute the identical value; this harness compares
// their cost as |E| grows.

#include <algorithm>
#include <iostream>

#include "bench_harness.hpp"
#include "streamrel/streamrel.hpp"
#include "streamrel/util/cli.hpp"
#include "streamrel/util/stopwatch.hpp"
#include "streamrel/util/table.hpp"

using namespace streamrel;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  bench::BenchReport record("incremental_enumeration");
  const int max_edges = static_cast<int>(args.get_int("max-edges", 20));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 17));

  std::cout << "E16b: naive-enumeration strategies (from-scratch vs "
               "Gray-code incremental vs parallel)\n\n";
  TextTable table({"|E|", "scratch_ms", "gray_ms", "parallel_ms",
                   "gray_speedup", "agree"});
  for (int m = 12; m <= max_edges; m += 2) {
    Xoshiro256 rng(mix_seed(seed, static_cast<std::uint64_t>(m)));
    const GeneratedNetwork g =
        random_connected(rng, std::max(4, m / 2), m - std::max(4, m / 2) + 1,
                         {1, 3}, {0.05, 0.3});
    const FlowDemand demand{g.source, g.sink, 2};

    NaiveOptions scratch;
    scratch.strategy = NaiveStrategy::kFromScratch;
    NaiveOptions gray;
    gray.strategy = NaiveStrategy::kGrayIncremental;
    NaiveOptions parallel;
    parallel.strategy = NaiveStrategy::kParallel;

    Stopwatch sw;
    const double r_scratch =
        reliability_naive(g.net, demand, scratch).reliability;
    const double scratch_ms = sw.elapsed_ms();
    sw.reset();
    const double r_gray = reliability_naive(g.net, demand, gray).reliability;
    const double gray_ms = sw.elapsed_ms();
    sw.reset();
    const double r_par =
        reliability_naive(g.net, demand, parallel).reliability;
    const double par_ms = sw.elapsed_ms();

    const bool agree = std::abs(r_scratch - r_gray) < 1e-9 &&
                       std::abs(r_scratch - r_par) < 1e-9;
    table.new_row()
        .add_cell(g.net.num_edges())
        .add_cell(scratch_ms, 4)
        .add_cell(gray_ms, 4)
        .add_cell(par_ms, 4)
        .add_cell(scratch_ms / gray_ms, 3)
        .add_cell(agree ? "yes" : "NO");
    std::string prefix = "m";
    prefix += std::to_string(g.net.num_edges());
    record.metric(bench::key(prefix, "scratch_ms"), scratch_ms)
        .metric(bench::key(prefix, "gray_ms"), gray_ms)
        .metric(bench::key(prefix, "parallel_ms"), par_ms)
        .metric(bench::key(prefix, "gray_speedup"), scratch_ms / gray_ms)
        .metric(bench::key(prefix, "agree"), agree);
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: the Gray-code walk amortizes one flow "
               "repair per configuration and wins over from-scratch; the "
               "parallel sweep scales with available cores.\n";
  const bool json_ok = bench::write_if_requested(record, args);
  return json_ok ? 0 : 1;
}
