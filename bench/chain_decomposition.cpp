// E18 — chain decomposition (the paper's future-work direction): a
// SEQUENCE of bottleneck cuts composed transfer-matrix style. Compares
// runtime and values against naive enumeration on growing chains of
// small clusters; the chain's cost is exponential only in the largest
// layer, so it extends far past the naive limit.

#include <algorithm>
#include <iostream>

#include "bench_harness.hpp"
#include "streamrel/streamrel.hpp"
#include "streamrel/util/cli.hpp"
#include "streamrel/util/stopwatch.hpp"
#include "streamrel/util/table.hpp"

using namespace streamrel;

namespace {

// A chain of `layers` triangle clusters, consecutive clusters joined by
// two unit links.
struct ChainInstance {
  FlowNetwork net;
  std::vector<int> layer;
  FlowDemand demand;
};

ChainInstance make_chain(int layers, Xoshiro256& rng) {
  ChainInstance inst;
  inst.net = FlowNetwork(3 * layers);
  inst.layer.resize(static_cast<std::size_t>(3 * layers));
  for (int l = 0; l < layers; ++l) {
    const NodeId base = 3 * l;
    inst.net.add_undirected_edge(base, base + 1, 2,
                                 rng.uniform_real(0.05, 0.3));
    inst.net.add_undirected_edge(base + 1, base + 2, 2,
                                 rng.uniform_real(0.05, 0.3));
    inst.net.add_undirected_edge(base, base + 2, 2,
                                 rng.uniform_real(0.05, 0.3));
    for (int i = 0; i < 3; ++i) {
      inst.layer[static_cast<std::size_t>(base + i)] = l;
    }
    if (l > 0) {
      inst.net.add_undirected_edge(base - 2, base, 1,
                                   rng.uniform_real(0.05, 0.3));
      inst.net.add_undirected_edge(base - 1, base + 1, 1,
                                   rng.uniform_real(0.05, 0.3));
    }
  }
  inst.demand = FlowDemand{0, 3 * layers - 1, 2};
  return inst;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  bench::BenchReport record("chain_decomposition");
  const int max_layers = static_cast<int>(args.get_int("max-layers", 8));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 29));

  std::cout << "E18: chain decomposition over growing cluster chains "
               "(3 links per cluster, 2-link boundaries, d = 2; layers "
               "discovered automatically by find_chain_plan)\n\n";
  TextTable table({"layers", "|E|", "chain_ms", "naive_ms", "R_chain",
                   "agree"});
  Xoshiro256 rng(seed);
  for (int layers = 2; layers <= max_layers; ++layers) {
    const ChainInstance inst = make_chain(layers, rng);

    // The search must rediscover the planted layering (or a compatible
    // refinement) on its own.
    ChainSearchOptions search;
    search.max_cut_size = 2;
    search.min_layers = 2;
    const auto plan =
        find_chain_plan(inst.net, inst.demand.source, inst.demand.sink,
                        search);
    const std::vector<int>& layering = plan ? plan->layer : inst.layer;

    Stopwatch sw;
    const double r_chain =
        reliability_chain(inst.net, inst.demand, layering).reliability;
    const double chain_ms = sw.elapsed_ms();

    std::string naive_ms = "-";
    std::string agree = "-";
    if (inst.net.num_edges() <= 21) {
      sw.reset();
      const double r_naive =
          reliability_naive(inst.net, inst.demand).reliability;
      naive_ms = format_double(sw.elapsed_ms(), 4);
      agree = std::abs(r_chain - r_naive) < 1e-9 ? "yes" : "NO";
    }
    table.new_row()
        .add_cell(layers)
        .add_cell(inst.net.num_edges())
        .add_cell(chain_ms, 4)
        .add_cell(naive_ms)
        .add_cell(r_chain, 8)
        .add_cell(agree);
    std::string prefix = "layers";
    prefix += std::to_string(layers);
    record.metric(bench::key(prefix, "links"), inst.net.num_edges())
        .metric(bench::key(prefix, "chain_ms"), chain_ms)
        .metric(bench::key(prefix, "agree"), agree);
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: chain runtime grows LINEARLY in the number "
               "of layers (constant per-layer work); naive enumeration "
               "doubles per added link and drops out after ~21 links.\n";
  const bool json_ok = bench::write_if_requested(record, args);
  return json_ok ? 0 : 1;
}
