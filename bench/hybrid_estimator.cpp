// E21 — the hybrid bottleneck/Monte-Carlo estimator: bottleneck links
// handled exactly, sides sampled. Compares against plain network-wide
// Monte Carlo at EQUAL sample budgets, on an instance whose bottleneck
// links dominate the unreliability — the regime where conditioning the
// bottleneck exactly pays off.

#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_harness.hpp"
#include "streamrel/streamrel.hpp"
#include "streamrel/util/cli.hpp"
#include "streamrel/util/stats.hpp"
#include "streamrel/util/table.hpp"

using namespace streamrel;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  bench::BenchReport record("hybrid_estimator");
  const int reps = static_cast<int>(args.get_int("reps", 30));

  // Reliable clusters, flaky peering: most uncertainty sits on the cut.
  TwoIspParams params;
  params.peers_per_isp = 6;
  params.peering_links = 2;
  params.internal_failure = 0.02;
  params.peering_failure = 0.3;
  params.seed = 77;
  const GeneratedNetwork g = make_two_isp_scenario(params);
  const FlowDemand demand{g.source, g.sink, 2};
  const BottleneckPartition partition =
      partition_from_sides(g.net, g.source, g.sink, g.side_s);
  const double exact =
      reliability_bottleneck(g.net, demand, partition).reliability;

  std::cout << "E21: hybrid estimator vs plain Monte Carlo ("
            << g.net.num_edges() << "-link two-ISP network, exact R = "
            << format_double(exact, 8) << ", " << reps
            << " repetitions per row)\n\n";
  TextTable table({"samples", "plain MC rmse", "hybrid rmse",
                   "variance ratio"});
  for (std::uint64_t samples : {500ULL, 2000ULL, 8000ULL, 32000ULL}) {
    OnlineStats plain_err, hybrid_err;
    for (int rep = 0; rep < reps; ++rep) {
      MonteCarloOptions mc;
      mc.samples = samples;
      mc.seed = mix_seed(samples, static_cast<std::uint64_t>(rep));
      const double plain =
          reliability_monte_carlo(g.net, demand, mc).estimate;
      plain_err.add((plain - exact) * (plain - exact));

      HybridMonteCarloOptions hy;
      hy.samples_per_side = samples / 2;  // equal total sampling budget
      hy.seed = mix_seed(samples * 31, static_cast<std::uint64_t>(rep));
      const double hybrid =
          reliability_bottleneck_hybrid(g.net, demand, partition, hy)
              .estimate;
      hybrid_err.add((hybrid - exact) * (hybrid - exact));
    }
    const double plain_rmse = std::sqrt(plain_err.mean());
    const double hybrid_rmse = std::sqrt(hybrid_err.mean());
    table.new_row()
        .add_cell(samples)
        .add_cell(plain_rmse, 5)
        .add_cell(hybrid_rmse, 5)
        .add_cell(plain_err.mean() / hybrid_err.mean(), 3);
    std::string prefix = "s";
    prefix += std::to_string(samples);
    record.metric(bench::key(prefix, "plain_rmse"), plain_rmse)
        .metric(bench::key(prefix, "hybrid_rmse"), hybrid_rmse)
        .metric(bench::key(prefix, "variance_ratio"),
                plain_err.mean() / hybrid_err.mean());
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: both RMSEs fall as 1/sqrt(samples); the "
               "hybrid estimator's is consistently smaller because the "
               "flaky bottleneck links contribute no sampling noise.\n";
  const bool json_ok = bench::write_if_requested(record, args);
  return json_ok ? 0 : 1;
}
