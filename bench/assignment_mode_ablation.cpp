// E14 — forward-only (the paper's model) vs signed assignments (our
// exactness extension). On undirected networks the forward-only model is
// a lower bound that is occasionally strict (backward bottleneck
// crossings can be required); signed mode always matches the naive
// oracle. This harness quantifies the gap frequency, its magnitude, and
// the runtime cost of the larger signed assignment sets.

#include <algorithm>
#include <iostream>

#include "bench_harness.hpp"
#include "streamrel/streamrel.hpp"
#include "streamrel/util/cli.hpp"
#include "streamrel/util/stopwatch.hpp"
#include "streamrel/util/table.hpp"

using namespace streamrel;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const int trials = static_cast<int>(args.get_int("trials", 60));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 42));

  std::cout << "E14: forward-only vs signed assignments on undirected "
               "3-bottleneck graphs (d = 2, " << trials << " trials)\n\n";
  Xoshiro256 rng(seed);
  int gaps = 0;
  double worst_gap = 0.0;
  double fwd_ms_total = 0.0, signed_ms_total = 0.0;
  int fwd_assignments_total = 0, signed_assignments_total = 0;
  int evaluated = 0;

  for (int trial = 0; trial < trials; ++trial) {
    ClusteredParams params;
    params.nodes_s = static_cast<int>(rng.uniform_int(3, 5));
    params.nodes_t = static_cast<int>(rng.uniform_int(3, 5));
    params.extra_edges_s = static_cast<int>(rng.uniform_int(1, 3));
    params.extra_edges_t = static_cast<int>(rng.uniform_int(1, 3));
    params.bottleneck_links = 3;
    params.cluster_caps = {1, 3};
    params.bottleneck_caps = {1, 3};
    params.cluster_probs = {0.05, 0.45};
    params.bottleneck_probs = {0.05, 0.45};
    const GeneratedNetwork g = clustered_bottleneck(rng, params);
    const FlowDemand demand{g.source, g.sink, 2};
    const BottleneckPartition partition =
        partition_from_sides(g.net, g.source, g.sink, g.side_s);

    BottleneckOptions fwd;
    fwd.assignments.mode = AssignmentMode::kForwardOnly;
    BottleneckOptions sgn;
    sgn.assignments.mode = AssignmentMode::kSigned;

    Stopwatch sw;
    const BottleneckResult r_fwd =
        reliability_bottleneck(g.net, demand, partition, fwd);
    fwd_ms_total += sw.elapsed_ms();
    sw.reset();
    const BottleneckResult r_sgn =
        reliability_bottleneck(g.net, demand, partition, sgn);
    signed_ms_total += sw.elapsed_ms();

    const double naive = reliability_naive(g.net, demand).reliability;
    if (std::abs(r_sgn.reliability - naive) > 1e-9) {
      std::cout << "ERROR: signed mode diverged from naive on trial " << trial
                << "\n";
      return 1;
    }
    const double gap = naive - r_fwd.reliability;
    if (gap > 1e-9) {
      ++gaps;
      worst_gap = std::max(worst_gap, gap);
    }
    fwd_assignments_total += r_fwd.num_assignments;
    signed_assignments_total += r_sgn.num_assignments;
    ++evaluated;
  }

  bench::BenchReport record("assignment_mode_ablation", evaluated);
  record.metric("trials", evaluated)
      .metric("undercount_trials", gaps)
      .metric("worst_gap", worst_gap)
      .metric("mean_assignments_forward",
              static_cast<double>(fwd_assignments_total) / evaluated)
      .metric("mean_assignments_signed",
              static_cast<double>(signed_assignments_total) / evaluated)
      .metric("mean_ms_forward", fwd_ms_total / evaluated)
      .metric("mean_ms_signed", signed_ms_total / evaluated);
  TextTable table({"metric", "forward-only (paper)", "signed (ours)"});
  table.new_row()
      .add_cell("exact on all trials")
      .add_cell(gaps == 0 ? "yes" : "NO")
      .add_cell("yes");
  table.new_row()
      .add_cell("trials with under-count")
      .add_cell(gaps)
      .add_cell(0);
  table.new_row()
      .add_cell("worst reliability gap")
      .add_cell(worst_gap, 6)
      .add_cell(0.0, 6);
  table.new_row()
      .add_cell("mean |D|")
      .add_cell(static_cast<double>(fwd_assignments_total) / evaluated, 4)
      .add_cell(static_cast<double>(signed_assignments_total) / evaluated, 4);
  table.new_row()
      .add_cell("mean runtime (ms)")
      .add_cell(fwd_ms_total / evaluated, 4)
      .add_cell(signed_ms_total / evaluated, 4);
  table.print(std::cout);
  std::cout << "\nExpected shape: forward-only under-counts on a small "
               "fraction of instances; signed costs more assignments but "
               "is exact everywhere.\n";
  const bool json_ok = bench::write_if_requested(record, args);
  return json_ok ? 0 : 1;
}
