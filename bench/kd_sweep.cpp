// E12 — dependence on the bottleneck cardinality k and the sub-stream
// count d (§III-B): |D| <= (d+1)^k assignments, constant when both are
// constant. Measures |D| and the decomposition runtime over the (k, d)
// grid; the naive baseline is insensitive to both.

#include <algorithm>
#include <iostream>

#include "bench_harness.hpp"
#include "streamrel/streamrel.hpp"
#include "streamrel/util/cli.hpp"
#include "streamrel/util/stopwatch.hpp"
#include "streamrel/util/table.hpp"

using namespace streamrel;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  bench::BenchReport record("kd_sweep");
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 3));
  const int max_k = static_cast<int>(args.get_int("max-k", 4));
  const Capacity max_d = args.get_int("max-d", 4);

  std::cout << "E12: assignment-set size and runtime vs (k, d); clustered "
               "graphs with 7-link sides\n\n";
  TextTable table({"k", "d", "|D| fwd", "|D| signed", "bottleneck_ms",
                   "naive_ms", "agree"});
  for (int k = 1; k <= max_k; ++k) {
    for (Capacity d = 1; d <= max_d; ++d) {
      ClusteredParams params;
      params.nodes_s = 4;
      params.nodes_t = 4;
      params.extra_edges_s = 4;
      params.extra_edges_t = 4;
      params.bottleneck_links = k;
      params.cluster_caps = {1, d};
      params.bottleneck_caps = {1, d};
      params.cluster_probs = {0.05, 0.3};
      params.bottleneck_probs = {0.05, 0.3};
      Xoshiro256 rng(mix_seed(seed, static_cast<std::uint64_t>(16 * k) +
                                        static_cast<std::uint64_t>(d)));
      const GeneratedNetwork g = clustered_bottleneck(rng, params);
      const FlowDemand demand{g.source, g.sink, d};
      const BottleneckPartition partition =
          partition_from_sides(g.net, g.source, g.sink, g.side_s);

      AssignmentOptions fwd;
      fwd.mode = AssignmentMode::kForwardOnly;
      const int fwd_count =
          enumerate_assignments(g.net, partition, d, fwd).size();
      int signed_count = -1;
      try {
        AssignmentOptions sgn;
        sgn.mode = AssignmentMode::kSigned;
        signed_count = enumerate_assignments(g.net, partition, d, sgn).size();
      } catch (const std::invalid_argument&) {
        // > 63 assignments: report as saturated.
      }

      Stopwatch sw;
      double r_b = -1;
      double b_ms = -1;
      try {
        r_b = reliability_bottleneck(g.net, demand, partition).reliability;
        b_ms = sw.elapsed_ms();
      } catch (const std::invalid_argument&) {
      }
      sw.reset();
      const double r_n = reliability_naive(g.net, demand).reliability;
      const double n_ms = sw.elapsed_ms();

      table.new_row()
          .add_cell(k)
          .add_cell(static_cast<std::int64_t>(d))
          .add_cell(fwd_count)
          .add_cell(signed_count < 0 ? std::string(">63")
                                     : std::to_string(signed_count))
          .add_cell(b_ms < 0 ? std::string("n/a") : format_double(b_ms, 4))
          .add_cell(n_ms, 4)
          .add_cell(b_ms < 0 ? "-" : (std::abs(r_b - r_n) < 1e-9 ? "yes" : "NO"));
      std::string prefix = "k";
      prefix += std::to_string(k);
      prefix += "_d";
      prefix += std::to_string(static_cast<long long>(d));
      record.metric(bench::key(prefix, "assignments_forward"), fwd_count)
          .metric(bench::key(prefix, "assignments_signed"), signed_count)
          .metric(bench::key(prefix, "bottleneck_ms"), b_ms)
          .metric(bench::key(prefix, "naive_ms"), n_ms);
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: |D| grows polynomially in d with degree "
               "k-1; runtime tracks |D| while naive stays flat.\n";
  const bool json_ok = bench::write_if_requested(record, args);
  return json_ok ? 0 : 1;
}
