// E29 — daemon serving throughput: four tenants hammering a worker-pool
// ReliabilityService through the wire path, then a deliberate overload
// of a one-worker pool to measure structured shedding.
//
// Normal phase: every tenant pipelines interactive solves (generous
// deadlines) and bulk batches through handle_line; the lane latency
// percentiles come from the scheduler's own histograms via the stats
// verb. Also cross-checks that a warm batch renders byte-identically to
// its cold predecessor (the QuerySession guarantee, now through the
// service). Overload phase: a single worker is pinned by a bulk sweep
// while interactive requests arrive with deadlines the queue alone
// blows — every one of them must still get an "ok": true response, with
// "shed": true and bounds attached, never a refusal or a throw.
//
// E30 — durable restore: the same tenant is rebuilt twice, once cold
// (parse + compile + replay every delta through apply_delta) and once
// warm (boot a second service from a checkpointed --state-dir and let
// restore_all adopt the snapshot bitwise). Reports server.restore_ms,
// server.cold_rebuild_ms and their ratio, and cross-checks that the
// restored session solves byte-identically to the cold twin.
//
// Exits non-zero when a response goes missing, the warm/cold cross-check
// fails, overload shedding never engages, or the restored session
// diverges from its cold rebuild. With --json=FILE a bench_harness
// record (BENCH_server.json in CI) is written; the CI gates hold
// server.responses_rate at 1, server.overload_shed_rate and
// server.restore_speedup above their floors, and server.restore_ms
// under its ceiling.

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <filesystem>
#include <iostream>
#include <mutex>
#include <string>
#include <vector>

#include "bench_harness.hpp"
#include "streamrel/streamrel.hpp"
#include "streamrel/util/cli.hpp"
#include "streamrel/util/prng.hpp"
#include "streamrel/util/stopwatch.hpp"
#include "streamrel/util/table.hpp"

using namespace streamrel;

namespace {

GeneratedNetwork tenant_instance(std::uint64_t seed, int side_links) {
  Xoshiro256 rng(seed);
  ClusteredParams params;
  params.nodes_s = side_links / 2 + 1;
  params.extra_edges_s = side_links - (params.nodes_s - 1);
  params.nodes_t = 4;
  params.extra_edges_t = 1;
  params.bottleneck_links = 2;
  params.bottleneck_caps = {1, 3};
  return clustered_bottleneck(rng, params);
}

WireRequest register_request(const GeneratedNetwork& g,
                             const std::string& tenant) {
  WireRequest reg;
  reg.verb = WireVerb::kRegisterNetwork;
  reg.tenant = tenant;
  reg.network_text = network_to_string(g.net);
  reg.query.source = g.source;
  reg.query.sink = g.sink;
  reg.query.rate = 2;
  return reg;
}

WireRequest batch_request(const std::string& tenant, int queries,
                          Xoshiro256& rng, int num_edges) {
  WireRequest req;
  req.verb = WireVerb::kBatch;
  req.lane = WireLane::kBulk;
  req.tenant = tenant;
  req.queries.resize(static_cast<std::size_t>(queries));
  for (WireQuery& q : req.queries) {
    q.overrides.push_back(ProbOverride{
        static_cast<EdgeId>(
            rng.uniform_below(static_cast<std::uint64_t>(num_edges))),
        0.05 + 0.9 * rng.uniform01()});
  }
  return req;
}

/// Extracts the rendered value of `key` from a flat JSON object string
/// (up to the next ',' or '}') — pins the reliability member bitwise
/// without dragging in timing fields that legitimately differ per run.
std::string json_member(const std::string& object_json,
                        const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const std::size_t at = object_json.find(needle);
  if (at == std::string::npos) return {};
  const std::size_t start = at + needle.size();
  const std::size_t end = object_json.find_first_of(",}", start);
  return object_json.substr(start, end - start);
}

/// Deterministic churn edit i for the restore phase — regenerated
/// identically on the cold and warm sides so both lineages match.
WireRequest scripted_delta_request(int i, int num_edges) {
  WireRequest req;
  req.verb = WireVerb::kApplyDelta;
  req.tenant = "tenant0";
  req.delta.set_failure_prob(
      static_cast<EdgeId>(i % num_edges),
      0.05 + 0.9 * static_cast<double>((i * 37) % 100) / 100.0);
  return req;
}

double lane_metric(const JsonValue& stats, const char* lane,
                   const char* field) {
  const JsonValue* lanes = stats.find("lanes");
  if (!lanes) return 0.0;
  const JsonValue* snap = lanes->find(lane);
  if (!snap) return 0.0;
  const JsonValue* v = snap->find(field);
  return v ? v->as_number() : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const bool smoke = args.get_bool("smoke");
  const int tenants = static_cast<int>(args.get_int("tenants", 4));
  const int side_links =
      static_cast<int>(args.get_int("side-links", smoke ? 8 : 14));
  const int solves_per_tenant =
      static_cast<int>(args.get_int("solves", smoke ? 16 : 64));
  const int batches_per_tenant =
      static_cast<int>(args.get_int("batches", smoke ? 2 : 8));
  const int batch_queries =
      static_cast<int>(args.get_int("batch-queries", smoke ? 4 : 16));
  const int workers = static_cast<int>(args.get_int("workers", 4));
  const int overload_requests =
      static_cast<int>(args.get_int("overload-requests", 32));

  bool ok = true;
  std::uint64_t requests = 0;
  std::atomic<std::uint64_t> responded{0};
  std::mutex mu;

  // --- normal phase: multi-tenant pipelined serving -------------------
  ServiceOptions options;
  options.start_workers = true;
  options.scheduler.workers = workers;
  ReliabilityService service(options);

  std::vector<GeneratedNetwork> nets;
  Xoshiro256 rng(29);
  for (int t = 0; t < tenants; ++t) {
    nets.push_back(
        tenant_instance(static_cast<std::uint64_t>(100 + t), side_links));
    const std::string tenant = "tenant" + std::to_string(t);
    if (!service.execute(register_request(nets.back(), tenant)).ok) {
      std::cerr << "register failed for " << tenant << "\n";
      return 1;
    }
  }

  auto count_response = [&](WireResponse resp) {
    responded.fetch_add(1);
    if (!resp.ok) {
      const std::lock_guard<std::mutex> lock(mu);
      std::cerr << "unexpected error response: " << resp.error_code << ": "
                << resp.error_message << "\n";
    }
  };

  // Prometheus scrapes happen WHILE the pool is busy: a scrape that
  // blocks on solver locks would stall the whole exporter. Sample the
  // exposition mid-phase and keep the worst render time.
  double scrape_ms_max = 0.0;
  std::uint64_t scrapes = 0;
  const int scrape_every = std::max(1, solves_per_tenant / 8);

  Stopwatch phase_sw;
  for (int round = 0; round < solves_per_tenant; ++round) {
    if (round % scrape_every == 0) {
      Stopwatch scrape_sw;
      const std::string text = service.metrics_text();
      scrape_ms_max = std::max(scrape_ms_max, scrape_sw.elapsed_ms());
      ++scrapes;
      if (text.empty()) {
        std::cerr << "FAIL: empty metrics exposition under load\n";
        ok = false;
      }
    }
    for (int t = 0; t < tenants; ++t) {
      const std::string tenant = "tenant" + std::to_string(t);
      WireRequest solve;
      solve.verb = WireVerb::kSolve;
      solve.tenant = tenant;
      solve.deadline_ms = 10'000.0;
      solve.query.overrides.push_back(ProbOverride{
          static_cast<EdgeId>(rng.uniform_below(static_cast<std::uint64_t>(
              nets[static_cast<std::size_t>(t)].net.num_edges()))),
          0.5});
      service.handle_line(serialize_wire_request(solve), count_response);
      ++requests;
      if (round < batches_per_tenant) {
        service.handle_line(
            serialize_wire_request(batch_request(
                tenant, batch_queries, rng,
                nets[static_cast<std::size_t>(t)].net.num_edges())),
            count_response);
        ++requests;
      }
    }
  }
  service.drain();
  const double serve_ms = phase_sw.elapsed_ms();

  // One more scrape with every series populated — this is the
  // steady-state cardinality the exporter pays per poll.
  {
    Stopwatch scrape_sw;
    const std::string text = service.metrics_text();
    scrape_ms_max = std::max(scrape_ms_max, scrape_sw.elapsed_ms());
    ++scrapes;
    static_cast<void>(text);
  }
  const std::size_t series_count = service.metrics().series_count();

  const JsonValue stats = parse_json(service.stats_json());
  const double interactive_p50 =
      lane_metric(stats, "interactive", "service_p50_ms");
  const double interactive_p95 =
      lane_metric(stats, "interactive", "service_p95_ms");
  const double interactive_p99 =
      lane_metric(stats, "interactive", "service_p99_ms");
  const double bulk_p50 = lane_metric(stats, "bulk", "service_p50_ms");
  const double bulk_p95 = lane_metric(stats, "bulk", "service_p95_ms");
  const double bulk_p99 = lane_metric(stats, "bulk", "service_p99_ms");

  // Warm-equals-cold through the service: the same batch twice must
  // render byte-identical per-query lines.
  Xoshiro256 check_rng(7);
  const WireRequest check = batch_request("tenant0", batch_queries, check_rng,
                                          nets[0].net.num_edges());
  const WireResponse cold = service.execute(check);
  const WireResponse warm = service.execute(check);
  const bool warm_equal_cold =
      cold.ok && warm.ok && cold.legacy_lines == warm.legacy_lines;
  if (!warm_equal_cold) {
    std::cerr << "FAIL: warm batch diverged from cold through the service\n";
    ok = false;
  }

  if (responded.load() != requests) {
    std::cerr << "FAIL: " << requests << " requests but " << responded.load()
              << " responses\n";
    ok = false;
  }
  const double responses_rate =
      requests == 0 ? 1.0
                    : static_cast<double>(responded.load()) /
                          static_cast<double>(requests);

  // --- overload phase: one worker, deadlines the queue blows ----------
  ServiceOptions tight;
  tight.start_workers = true;
  tight.scheduler.workers = 1;
  ReliabilityService small(tight);
  if (!small.execute(register_request(nets[0], "tenant0")).ok) {
    std::cerr << "overload register failed\n";
    return 1;
  }
  std::atomic<std::uint64_t> overload_responses{0};
  std::atomic<std::uint64_t> overload_errors{0};
  std::atomic<std::uint64_t> shed{0};
  auto overload_done = [&](WireResponse resp) {
    overload_responses.fetch_add(1);
    if (!resp.ok) {
      overload_errors.fetch_add(1);
    } else if (resp.result_json.find("\"shed\": true") != std::string::npos) {
      shed.fetch_add(1);
    }
  };
  // Pin the worker with a bulk sweep, then pile on interactive requests
  // whose deadlines cannot survive the queue.
  Xoshiro256 overload_rng(11);
  service.drain();
  small.handle_line(
      serialize_wire_request(batch_request("tenant0", batch_queries * 4,
                                           overload_rng,
                                           nets[0].net.num_edges())),
      overload_done);
  for (int i = 0; i < overload_requests; ++i) {
    WireRequest solve;
    solve.verb = WireVerb::kSolve;
    solve.tenant = "tenant0";
    solve.deadline_ms = 0.001;
    small.handle_line(serialize_wire_request(solve), overload_done);
  }
  small.drain();

  const std::uint64_t overload_total =
      static_cast<std::uint64_t>(overload_requests) + 1;
  if (overload_responses.load() != overload_total ||
      overload_errors.load() != 0) {
    std::cerr << "FAIL: overload phase lost responses ("
              << overload_responses.load() << "/" << overload_total
              << ", errors " << overload_errors.load() << ")\n";
    ok = false;
  }
  const double shed_rate = static_cast<double>(shed.load()) /
                           static_cast<double>(overload_requests);
  if (shed.load() == 0) {
    std::cerr << "FAIL: overload never shed a request\n";
    ok = false;
  }

  // --- E30: warm restore from --state-dir vs cold rebuild -------------
  // Cold side: parse + compile + replay every delta through apply_delta.
  // Warm side: checkpoint the same lineage (persist verb folds the WAL
  // into the snapshot) and time a second service booting from the state
  // dir; the restored session must then solve byte-identically.
  const int restore_deltas =
      static_cast<int>(args.get_int("restore-deltas", smoke ? 192 : 512));
  namespace fs = std::filesystem;
  const fs::path state_root =
      fs::temp_directory_path() /
      ("streamrel_bench_state_" + std::to_string(::getpid()));
  fs::remove_all(state_root);

  WireRequest restore_solve;
  restore_solve.verb = WireVerb::kSolve;
  restore_solve.tenant = "tenant0";

  double cold_rebuild_ms = 0.0;
  std::string cold_result;
  {
    Stopwatch sw;
    ReliabilityService cold_service{ServiceOptions{}};
    bool built = cold_service.execute(register_request(nets[0], "tenant0")).ok;
    for (int i = 0; built && i < restore_deltas; ++i) {
      built = cold_service
                  .execute(scripted_delta_request(i, nets[0].net.num_edges()))
                  .ok;
    }
    cold_rebuild_ms = sw.elapsed_ms();
    const WireResponse solve = cold_service.execute(restore_solve);
    if (!built || !solve.ok) {
      std::cerr << "FAIL: cold rebuild for the restore phase failed\n";
      ok = false;
    }
    cold_result = json_member(solve.result_json, "reliability");
  }

  ServiceOptions durable;
  durable.state_dir = state_root.string();
  durable.state_fsync = false;  // scratch dir; durability is tested elsewhere
  {
    ReliabilityService seed_service(durable);
    bool built = seed_service.execute(register_request(nets[0], "tenant0")).ok;
    for (int i = 0; built && i < restore_deltas; ++i) {
      built = seed_service
                  .execute(scripted_delta_request(i, nets[0].net.num_edges()))
                  .ok;
    }
    WireRequest persist;
    persist.verb = WireVerb::kPersist;
    persist.tenant = "tenant0";
    if (!built || !seed_service.execute(persist).ok) {
      std::cerr << "FAIL: seeding the durable state dir failed\n";
      ok = false;
    }
  }

  Stopwatch restore_sw;
  ReliabilityService warm_service(durable);
  const double restore_ms = restore_sw.elapsed_ms();
  bool restore_identical = false;
  if (warm_service.boot_restore().restored != 1) {
    std::cerr << "FAIL: boot restore adopted "
              << warm_service.boot_restore().restored
              << " session(s), expected 1\n";
    ok = false;
  } else {
    const WireResponse solve = warm_service.execute(restore_solve);
    restore_identical =
        solve.ok && !cold_result.empty() &&
        json_member(solve.result_json, "reliability") == cold_result;
    if (!restore_identical) {
      std::cerr << "FAIL: restored session diverged from its cold rebuild\n";
      ok = false;
    }
  }
  const double restore_speedup =
      cold_rebuild_ms / std::max(restore_ms, 1e-6);
  fs::remove_all(state_root);

  std::cout << "server_throughput: " << tenants << " tenants, " << requests
            << " requests in " << format_double(serve_ms, 2) << " ms ("
            << workers << " workers)\n"
            << "  interactive p50/p95/p99 ms: "
            << format_double(interactive_p50, 4) << " / "
            << format_double(interactive_p95, 4) << " / "
            << format_double(interactive_p99, 4) << "\n"
            << "  bulk        p50/p95/p99 ms: " << format_double(bulk_p50, 4)
            << " / " << format_double(bulk_p95, 4) << " / "
            << format_double(bulk_p99, 4) << "\n"
            << "  warm == cold: " << (warm_equal_cold ? "yes" : "NO")
            << ", responses " << responded.load() << "/" << requests << "\n"
            << "  metrics: " << series_count << " series, worst scrape "
            << format_double(scrape_ms_max, 4) << " ms over " << scrapes
            << " scrapes\n"
            << "  overload: " << shed.load() << "/" << overload_requests
            << " shed (rate " << format_double(shed_rate, 4) << "), "
            << overload_responses.load() << "/" << overload_total
            << " responded\n"
            << "  restore: warm " << format_double(restore_ms, 4)
            << " ms vs cold rebuild " << format_double(cold_rebuild_ms, 4)
            << " ms (" << restore_deltas << " deltas, speedup "
            << format_double(restore_speedup, 2) << "x), identical: "
            << (restore_identical ? "yes" : "NO") << "\n";

  bench::BenchReport report("server_throughput");
  report.metric("tenants", static_cast<std::int64_t>(tenants))
      .metric("workers", static_cast<std::int64_t>(workers))
      .metric("requests", static_cast<std::int64_t>(requests))
      .metric("serve_ms", serve_ms)
      .metric("server.interactive_p50_ms", interactive_p50)
      .metric("server.interactive_p95_ms", interactive_p95)
      .metric("server.interactive_p99_ms", interactive_p99)
      .metric("server.bulk_p50_ms", bulk_p50)
      .metric("server.bulk_p95_ms", bulk_p95)
      .metric("server.bulk_p99_ms", bulk_p99)
      .metric("server.responses_rate", responses_rate)
      .metric("server.overload_shed_rate", shed_rate)
      .metric("server.warm_equal_cold", warm_equal_cold)
      .metric("server.scrape_ms", scrape_ms_max)
      .metric("server.metrics_series_count",
              static_cast<std::int64_t>(series_count))
      .metric("server.restore_deltas",
              static_cast<std::int64_t>(restore_deltas))
      .metric("server.restore_ms", restore_ms)
      .metric("server.cold_rebuild_ms", cold_rebuild_ms)
      .metric("server.restore_speedup", restore_speedup)
      .metric("server.restore_identical", restore_identical);
  const bool json_ok = bench::write_if_requested(report, args);
  return ok && json_ok ? 0 : 1;
}
