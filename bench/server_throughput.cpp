// E29 — daemon serving throughput: four tenants hammering a worker-pool
// ReliabilityService through the wire path, then a deliberate overload
// of a one-worker pool to measure structured shedding.
//
// Normal phase: every tenant pipelines interactive solves (generous
// deadlines) and bulk batches through handle_line; the lane latency
// percentiles come from the scheduler's own histograms via the stats
// verb. Also cross-checks that a warm batch renders byte-identically to
// its cold predecessor (the QuerySession guarantee, now through the
// service). Overload phase: a single worker is pinned by a bulk sweep
// while interactive requests arrive with deadlines the queue alone
// blows — every one of them must still get an "ok": true response, with
// "shed": true and bounds attached, never a refusal or a throw.
//
// Exits non-zero when a response goes missing, the warm/cold cross-check
// fails, or overload shedding never engages. With --json=FILE a
// bench_harness record (BENCH_server.json in CI) is written; the CI
// floor gate holds server.responses_rate at 1 and
// server.overload_shed_rate above its floor.

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <iostream>
#include <mutex>
#include <string>
#include <vector>

#include "bench_harness.hpp"
#include "streamrel/streamrel.hpp"
#include "streamrel/util/cli.hpp"
#include "streamrel/util/prng.hpp"
#include "streamrel/util/stopwatch.hpp"
#include "streamrel/util/table.hpp"

using namespace streamrel;

namespace {

GeneratedNetwork tenant_instance(std::uint64_t seed, int side_links) {
  Xoshiro256 rng(seed);
  ClusteredParams params;
  params.nodes_s = side_links / 2 + 1;
  params.extra_edges_s = side_links - (params.nodes_s - 1);
  params.nodes_t = 4;
  params.extra_edges_t = 1;
  params.bottleneck_links = 2;
  params.bottleneck_caps = {1, 3};
  return clustered_bottleneck(rng, params);
}

WireRequest register_request(const GeneratedNetwork& g,
                             const std::string& tenant) {
  WireRequest reg;
  reg.verb = WireVerb::kRegisterNetwork;
  reg.tenant = tenant;
  reg.network_text = network_to_string(g.net);
  reg.query.source = g.source;
  reg.query.sink = g.sink;
  reg.query.rate = 2;
  return reg;
}

WireRequest batch_request(const std::string& tenant, int queries,
                          Xoshiro256& rng, int num_edges) {
  WireRequest req;
  req.verb = WireVerb::kBatch;
  req.lane = WireLane::kBulk;
  req.tenant = tenant;
  req.queries.resize(static_cast<std::size_t>(queries));
  for (WireQuery& q : req.queries) {
    q.overrides.push_back(ProbOverride{
        static_cast<EdgeId>(
            rng.uniform_below(static_cast<std::uint64_t>(num_edges))),
        0.05 + 0.9 * rng.uniform01()});
  }
  return req;
}

double lane_metric(const JsonValue& stats, const char* lane,
                   const char* field) {
  const JsonValue* lanes = stats.find("lanes");
  if (!lanes) return 0.0;
  const JsonValue* snap = lanes->find(lane);
  if (!snap) return 0.0;
  const JsonValue* v = snap->find(field);
  return v ? v->as_number() : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const bool smoke = args.get_bool("smoke");
  const int tenants = static_cast<int>(args.get_int("tenants", 4));
  const int side_links =
      static_cast<int>(args.get_int("side-links", smoke ? 8 : 14));
  const int solves_per_tenant =
      static_cast<int>(args.get_int("solves", smoke ? 16 : 64));
  const int batches_per_tenant =
      static_cast<int>(args.get_int("batches", smoke ? 2 : 8));
  const int batch_queries =
      static_cast<int>(args.get_int("batch-queries", smoke ? 4 : 16));
  const int workers = static_cast<int>(args.get_int("workers", 4));
  const int overload_requests =
      static_cast<int>(args.get_int("overload-requests", 32));

  bool ok = true;
  std::uint64_t requests = 0;
  std::atomic<std::uint64_t> responded{0};
  std::mutex mu;

  // --- normal phase: multi-tenant pipelined serving -------------------
  ServiceOptions options;
  options.start_workers = true;
  options.scheduler.workers = workers;
  ReliabilityService service(options);

  std::vector<GeneratedNetwork> nets;
  Xoshiro256 rng(29);
  for (int t = 0; t < tenants; ++t) {
    nets.push_back(
        tenant_instance(static_cast<std::uint64_t>(100 + t), side_links));
    const std::string tenant = "tenant" + std::to_string(t);
    if (!service.execute(register_request(nets.back(), tenant)).ok) {
      std::cerr << "register failed for " << tenant << "\n";
      return 1;
    }
  }

  auto count_response = [&](WireResponse resp) {
    responded.fetch_add(1);
    if (!resp.ok) {
      const std::lock_guard<std::mutex> lock(mu);
      std::cerr << "unexpected error response: " << resp.error_code << ": "
                << resp.error_message << "\n";
    }
  };

  // Prometheus scrapes happen WHILE the pool is busy: a scrape that
  // blocks on solver locks would stall the whole exporter. Sample the
  // exposition mid-phase and keep the worst render time.
  double scrape_ms_max = 0.0;
  std::uint64_t scrapes = 0;
  const int scrape_every = std::max(1, solves_per_tenant / 8);

  Stopwatch phase_sw;
  for (int round = 0; round < solves_per_tenant; ++round) {
    if (round % scrape_every == 0) {
      Stopwatch scrape_sw;
      const std::string text = service.metrics_text();
      scrape_ms_max = std::max(scrape_ms_max, scrape_sw.elapsed_ms());
      ++scrapes;
      if (text.empty()) {
        std::cerr << "FAIL: empty metrics exposition under load\n";
        ok = false;
      }
    }
    for (int t = 0; t < tenants; ++t) {
      const std::string tenant = "tenant" + std::to_string(t);
      WireRequest solve;
      solve.verb = WireVerb::kSolve;
      solve.tenant = tenant;
      solve.deadline_ms = 10'000.0;
      solve.query.overrides.push_back(ProbOverride{
          static_cast<EdgeId>(rng.uniform_below(static_cast<std::uint64_t>(
              nets[static_cast<std::size_t>(t)].net.num_edges()))),
          0.5});
      service.handle_line(serialize_wire_request(solve), count_response);
      ++requests;
      if (round < batches_per_tenant) {
        service.handle_line(
            serialize_wire_request(batch_request(
                tenant, batch_queries, rng,
                nets[static_cast<std::size_t>(t)].net.num_edges())),
            count_response);
        ++requests;
      }
    }
  }
  service.drain();
  const double serve_ms = phase_sw.elapsed_ms();

  // One more scrape with every series populated — this is the
  // steady-state cardinality the exporter pays per poll.
  {
    Stopwatch scrape_sw;
    const std::string text = service.metrics_text();
    scrape_ms_max = std::max(scrape_ms_max, scrape_sw.elapsed_ms());
    ++scrapes;
    static_cast<void>(text);
  }
  const std::size_t series_count = service.metrics().series_count();

  const JsonValue stats = parse_json(service.stats_json());
  const double interactive_p50 =
      lane_metric(stats, "interactive", "service_p50_ms");
  const double interactive_p95 =
      lane_metric(stats, "interactive", "service_p95_ms");
  const double interactive_p99 =
      lane_metric(stats, "interactive", "service_p99_ms");
  const double bulk_p50 = lane_metric(stats, "bulk", "service_p50_ms");
  const double bulk_p95 = lane_metric(stats, "bulk", "service_p95_ms");
  const double bulk_p99 = lane_metric(stats, "bulk", "service_p99_ms");

  // Warm-equals-cold through the service: the same batch twice must
  // render byte-identical per-query lines.
  Xoshiro256 check_rng(7);
  const WireRequest check = batch_request("tenant0", batch_queries, check_rng,
                                          nets[0].net.num_edges());
  const WireResponse cold = service.execute(check);
  const WireResponse warm = service.execute(check);
  const bool warm_equal_cold =
      cold.ok && warm.ok && cold.legacy_lines == warm.legacy_lines;
  if (!warm_equal_cold) {
    std::cerr << "FAIL: warm batch diverged from cold through the service\n";
    ok = false;
  }

  if (responded.load() != requests) {
    std::cerr << "FAIL: " << requests << " requests but " << responded.load()
              << " responses\n";
    ok = false;
  }
  const double responses_rate =
      requests == 0 ? 1.0
                    : static_cast<double>(responded.load()) /
                          static_cast<double>(requests);

  // --- overload phase: one worker, deadlines the queue blows ----------
  ServiceOptions tight;
  tight.start_workers = true;
  tight.scheduler.workers = 1;
  ReliabilityService small(tight);
  if (!small.execute(register_request(nets[0], "tenant0")).ok) {
    std::cerr << "overload register failed\n";
    return 1;
  }
  std::atomic<std::uint64_t> overload_responses{0};
  std::atomic<std::uint64_t> overload_errors{0};
  std::atomic<std::uint64_t> shed{0};
  auto overload_done = [&](WireResponse resp) {
    overload_responses.fetch_add(1);
    if (!resp.ok) {
      overload_errors.fetch_add(1);
    } else if (resp.result_json.find("\"shed\": true") != std::string::npos) {
      shed.fetch_add(1);
    }
  };
  // Pin the worker with a bulk sweep, then pile on interactive requests
  // whose deadlines cannot survive the queue.
  Xoshiro256 overload_rng(11);
  service.drain();
  small.handle_line(
      serialize_wire_request(batch_request("tenant0", batch_queries * 4,
                                           overload_rng,
                                           nets[0].net.num_edges())),
      overload_done);
  for (int i = 0; i < overload_requests; ++i) {
    WireRequest solve;
    solve.verb = WireVerb::kSolve;
    solve.tenant = "tenant0";
    solve.deadline_ms = 0.001;
    small.handle_line(serialize_wire_request(solve), overload_done);
  }
  small.drain();

  const std::uint64_t overload_total =
      static_cast<std::uint64_t>(overload_requests) + 1;
  if (overload_responses.load() != overload_total ||
      overload_errors.load() != 0) {
    std::cerr << "FAIL: overload phase lost responses ("
              << overload_responses.load() << "/" << overload_total
              << ", errors " << overload_errors.load() << ")\n";
    ok = false;
  }
  const double shed_rate = static_cast<double>(shed.load()) /
                           static_cast<double>(overload_requests);
  if (shed.load() == 0) {
    std::cerr << "FAIL: overload never shed a request\n";
    ok = false;
  }

  std::cout << "server_throughput: " << tenants << " tenants, " << requests
            << " requests in " << format_double(serve_ms, 2) << " ms ("
            << workers << " workers)\n"
            << "  interactive p50/p95/p99 ms: "
            << format_double(interactive_p50, 4) << " / "
            << format_double(interactive_p95, 4) << " / "
            << format_double(interactive_p99, 4) << "\n"
            << "  bulk        p50/p95/p99 ms: " << format_double(bulk_p50, 4)
            << " / " << format_double(bulk_p95, 4) << " / "
            << format_double(bulk_p99, 4) << "\n"
            << "  warm == cold: " << (warm_equal_cold ? "yes" : "NO")
            << ", responses " << responded.load() << "/" << requests << "\n"
            << "  metrics: " << series_count << " series, worst scrape "
            << format_double(scrape_ms_max, 4) << " ms over " << scrapes
            << " scrapes\n"
            << "  overload: " << shed.load() << "/" << overload_requests
            << " shed (rate " << format_double(shed_rate, 4) << "), "
            << overload_responses.load() << "/" << overload_total
            << " responded\n";

  bench::BenchReport report("server_throughput");
  report.metric("tenants", static_cast<std::int64_t>(tenants))
      .metric("workers", static_cast<std::int64_t>(workers))
      .metric("requests", static_cast<std::int64_t>(requests))
      .metric("serve_ms", serve_ms)
      .metric("server.interactive_p50_ms", interactive_p50)
      .metric("server.interactive_p95_ms", interactive_p95)
      .metric("server.interactive_p99_ms", interactive_p99)
      .metric("server.bulk_p50_ms", bulk_p50)
      .metric("server.bulk_p95_ms", bulk_p95)
      .metric("server.bulk_p99_ms", bulk_p99)
      .metric("server.responses_rate", responses_rate)
      .metric("server.overload_shed_rate", shed_rate)
      .metric("server.warm_equal_cold", warm_equal_cold)
      .metric("server.scrape_ms", scrape_ms_max)
      .metric("server.metrics_series_count",
              static_cast<std::int64_t>(series_count));
  const bool json_ok = bench::write_if_requested(report, args);
  return ok && json_ok ? 0 : 1;
}
