// E13 — accumulation strategy ablation (§IV): the paper's literal
// inclusion-exclusion over assignment subsets (2^|D| terms) vs the
// zeta-transform complement method vs the direct bucket product.
// Parameterized by |D| (the argument): distributions are synthesized
// with a realistic number of distinct realized-assignment masks.

#include <benchmark/benchmark.h>

#include <vector>

#include "streamrel/core/accumulate.hpp"
#include "streamrel/util/prng.hpp"

namespace streamrel {
namespace {

MaskDistribution synth_distribution(Xoshiro256& rng, int num_assignments,
                                    int buckets) {
  MaskDistribution dist;
  double remaining = 1.0;
  for (int i = 0; i < buckets; ++i) {
    const double p = (i + 1 == buckets)
                         ? remaining
                         : remaining * rng.uniform_real(0.1, 0.9);
    remaining -= p;
    dist.buckets.emplace_back(rng.uniform_below(Mask{1} << num_assignments),
                              p);
    dist.total += p;
  }
  return dist;
}

void run(benchmark::State& state, AccumulationStrategy strategy) {
  const int num_assignments = static_cast<int>(state.range(0));
  Xoshiro256 rng(777 + static_cast<std::uint64_t>(num_assignments));
  const MaskDistribution a = synth_distribution(rng, num_assignments, 24);
  const MaskDistribution b = synth_distribution(rng, num_assignments, 24);
  const Mask allowed = full_mask(num_assignments);
  double sink = 0.0;
  for (auto _ : state) {
    sink += joint_success_probability(a, b, allowed, strategy);
  }
  benchmark::DoNotOptimize(sink);
  state.SetLabel("|D| = " + std::to_string(num_assignments));
}

void BM_PaperInclusionExclusion(benchmark::State& state) {
  run(state, AccumulationStrategy::kPaperInclusionExclusion);
}
void BM_ZetaTransform(benchmark::State& state) {
  run(state, AccumulationStrategy::kZetaTransform);
}
void BM_BucketProduct(benchmark::State& state) {
  run(state, AccumulationStrategy::kBucketProduct);
}

BENCHMARK(BM_PaperInclusionExclusion)->DenseRange(2, 20, 3);
BENCHMARK(BM_ZetaTransform)->DenseRange(2, 20, 3);
BENCHMARK(BM_BucketProduct)->DenseRange(2, 20, 3);

}  // namespace
}  // namespace streamrel
