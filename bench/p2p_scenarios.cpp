// E19 — application studies on P2P streaming overlays (the systems the
// paper's introduction motivates):
//   (a) single tree vs SplitStream-style striped trees: full-rate and
//       degraded-rate reliability vs the sub-stream count d;
//   (b) two-ISP topology: reliability vs the number of peering
//       (bottleneck) links k;
//   (c) churn: reliability vs mean peer session time.

#include <iostream>

#include "bench_harness.hpp"
#include "streamrel/streamrel.hpp"
#include "streamrel/util/cli.hpp"
#include "streamrel/util/table.hpp"

using namespace streamrel;

namespace {

void study_trees() {
  std::cout << "--- (a) tree overlays: 8 peers, link failure 0.1, deepest "
               "subscriber (plus an all-peers multicast quorum view) ---\n";
  TextTable table({"overlay", "d", "R(full rate)", "R(>= 1 sub-stream)",
                   "R(>= 6 of 8 peers served)"});
  for (int stripes : {1, 2, 3}) {
    Overlay overlay(8);
    if (stripes == 1) {
      SingleTreeOptions opts;
      opts.stream_rate = 3;
      add_single_tree(overlay, opts);
    } else {
      StripedTreesOptions opts;
      opts.stripes = stripes;
      add_striped_trees(overlay, opts);
    }
    const NodeId subscriber = overlay.peer(7);
    const Capacity full = stripes == 1 ? 1 : stripes;
    const double r_full =
        reliability_naive(overlay.net(), overlay.demand_to(subscriber, full))
            .reliability;
    const double r_any =
        reliability_naive(overlay.net(), overlay.demand_to(subscriber, 1))
            .reliability;
    MulticastDemand everyone{overlay.server(), {}, 1};
    for (int i = 0; i < 8; ++i) {
      everyone.subscribers.push_back(overlay.peer(i));
    }
    const double r_quorum =
        quorum_reliability(overlay.net(), everyone, 6).reliability;
    table.new_row()
        .add_cell(stripes == 1 ? "single tree"
                               : std::to_string(stripes) + " striped trees")
        .add_cell(static_cast<std::int64_t>(full))
        .add_cell(r_full, 6)
        .add_cell(r_any, 6)
        .add_cell(r_quorum, 6);
  }
  table.print(std::cout);
  std::cout << "Expected shape: striping trades full-rate reliability for "
               "much better graceful degradation, both per subscriber and "
               "for the 6-of-8 audience quorum.\n\n";
}

void study_isp() {
  std::cout << "--- (b) two-ISP topology: reliability vs peering links k "
               "(d = 2) ---\n";
  TextTable table({"k", "|E|", "method", "R"});
  for (int k = 1; k <= 4; ++k) {
    TwoIspParams params;
    params.peers_per_isp = 5;
    params.peering_links = k;
    params.peering_failure = 0.15;
    params.seed = 100 + static_cast<std::uint64_t>(k);
    const GeneratedNetwork g = make_two_isp_scenario(params);
    const SolveReport report =
        compute_reliability(g.net, {g.source, g.sink, 2});
    table.new_row()
        .add_cell(k)
        .add_cell(g.net.num_edges())
        .add_cell(report.method_used == Method::kBottleneck ? "bottleneck"
                  : report.method_used == Method::kNaive    ? "naive"
                                                            : "factoring")
        .add_cell(report.result.reliability, 6);
  }
  table.print(std::cout);
  std::cout << "Expected shape: each extra peering link raises reliability "
               "with diminishing returns; the solver picks the bottleneck "
               "decomposition whenever the peering cut is exploitable.\n\n";
}

void study_churn() {
  std::cout << "--- (c) churn: reliability vs mean peer session length "
               "(5-minute window, striped overlay, d = 2) ---\n";
  TextTable table({"mean session (min)", "link failure p", "R(full rate)"});
  for (double session : {15.0, 30.0, 60.0, 120.0, 240.0}) {
    Overlay overlay(6);
    StripedTreesOptions opts;
    opts.stripes = 2;
    add_striped_trees(overlay, opts);
    ChurnModel model;
    model.mean_session_minutes = session;
    model.window_minutes = 5.0;
    model.base_link_loss = 0.01;
    apply_delta_in_place(overlay.net(),
                        churn_delta(overlay.net(), overlay.server(), model));
    const double r =
        reliability_naive(overlay.net(),
                          overlay.demand_to(overlay.peer(5), 2))
            .reliability;
    table.new_row()
        .add_cell(session, 4)
        .add_cell(link_failure_prob(model), 4)
        .add_cell(r, 6);
  }
  table.print(std::cout);
  std::cout << "Expected shape: reliability rises steeply with session "
               "length as per-link churn probability decays.\n";
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  bench::BenchReport record("p2p_scenarios");
  record.metric("studies_run", 3);
  std::cout << "E19: P2P streaming scenario studies\n\n";
  study_trees();
  study_isp();
  study_churn();
  const bool json_ok = bench::write_if_requested(record, args);
  return json_ok ? 0 : 1;
}
