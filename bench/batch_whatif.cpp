// E27 — serving many what-if queries: one QuerySession + BatchEvaluator
// versus independent compute_reliability calls, on an E26-style
// clustered-bottleneck instance.
//
// Each query perturbs a handful of link failure probabilities (a churn
// re-estimate) and re-asks the same (s, t, d) question. The session pays
// the exponential structural work (assignment enumeration + side-array
// sweeps) once and answers every subsequent query with the
// probability-only Gray-order fold; the baseline re-runs the whole
// decomposition per query. Verifies the two answer streams are BITWISE
// identical and that the cache actually served hits; exits non-zero when
// the batch path is slower than the target speedup (relaxed under
// --smoke). With --json=FILE a schema-versioned bench_harness record is
// written for CI trend tracking.

#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "bench_harness.hpp"
#include "streamrel/streamrel.hpp"
#include "streamrel/util/cli.hpp"
#include "streamrel/util/stopwatch.hpp"

using namespace streamrel;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const bool smoke = args.get_bool("smoke");
  const int side_links =
      static_cast<int>(args.get_int("side-links", smoke ? 10 : 16));
  const int bottleneck = static_cast<int>(args.get_int("bottleneck", 2));
  const Capacity d = args.get_int("demand", 2);
  const int num_queries = static_cast<int>(args.get_int("queries", 64));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 27));
  const double target_speedup = args.get_double("target-speedup",
                                                smoke ? 1.0 : 5.0);

  Xoshiro256 rng(seed);
  ClusteredParams params;
  params.nodes_s = side_links / 2 + 1;
  params.extra_edges_s = side_links - (params.nodes_s - 1);
  params.nodes_t = 4;
  params.extra_edges_t = 1;
  params.bottleneck_links = bottleneck;
  params.bottleneck_caps = {1, 3};
  const GeneratedNetwork g = clustered_bottleneck(rng, params);
  const FlowDemand demand{g.source, g.sink, d};

  // The what-if stream: every query re-estimates three link failure
  // probabilities (same demand, same topology).
  std::vector<WhatIfQuery> queries(static_cast<std::size_t>(num_queries));
  for (WhatIfQuery& q : queries) {
    q.demand = demand;
    for (int j = 0; j < 3; ++j) {
      q.prob_overrides.push_back(ProbOverride{
          static_cast<EdgeId>(rng.uniform_below(
              static_cast<std::uint64_t>(g.net.num_edges()))),
          rng.uniform_real(0.01, 0.4)});
    }
  }

  std::cout << "E27: batched what-if queries, " << g.net.summary() << ", d="
            << d << ", k=" << bottleneck << ", queries=" << num_queries
            << "\n";

  // Baseline: each query edits a private copy of the network and runs the
  // full facade solve — the pre-QuerySession serving pattern.
  Stopwatch sw;
  std::vector<double> baseline;
  baseline.reserve(queries.size());
  for (const WhatIfQuery& q : queries) {
    FlowNetwork net = g.net;
    for (const ProbOverride& o : q.prob_overrides) {
      net.set_failure_prob(o.edge, o.failure_prob);
    }
    baseline.push_back(compute_reliability(net, q.demand).result.reliability);
  }
  const double baseline_ms = sw.elapsed_ms();

  // Batch: one session, structural work shared across the stream.
  sw.reset();
  QuerySession session(g.net);
  BatchEvaluator evaluator(session);
  const BatchReport batch = evaluator.evaluate(queries);
  const double batch_ms = sw.elapsed_ms();

  int mismatches = 0;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    // Bitwise comparison, deliberately: the session must reuse the exact
    // facade arithmetic, not approximate it.
    if (batch.reports[i].result.reliability != baseline[i]) ++mismatches;
  }
  const double speedup = batch_ms > 0.0 ? baseline_ms / batch_ms : 0.0;

  std::cout << "baseline " << baseline_ms << " ms, batch " << batch_ms
            << " ms, speedup " << speedup << "x\n"
            << "cache: " << session.cache_hits() << " hits, "
            << session.cache_misses() << " misses, "
            << session.cache_evictions() << " evictions\n"
            << "exact " << batch.exact_count << "/" << num_queries
            << ", mismatches " << mismatches << "\n";

  const bool hits_ok = session.cache_hits() > 0;
  const bool speed_ok = speedup >= target_speedup;
  const bool exact_ok = batch.exact_count == num_queries;

  bench::BenchReport record("batch_whatif", num_queries);
  record.metric("queries", num_queries)
      .metric("side_links", side_links)
      .metric("bottleneck", bottleneck)
      .metric("demand", static_cast<std::int64_t>(d))
      .metric("seed", seed)
      .metric("baseline_ms", baseline_ms)
      .metric("batch_ms", batch_ms)
      .metric("speedup", speedup)
      .metric("cache_hits", session.cache_hits())
      .metric("cache_misses", session.cache_misses())
      .metric("cache_evictions", session.cache_evictions())
      .metric("exact", batch.exact_count)
      .metric("mismatches", mismatches)
      .metric("bitwise_identical", mismatches == 0);
  const bool json_ok = bench::write_if_requested(record, args);

  if (mismatches != 0) std::cerr << "FAIL: answers diverge from facade\n";
  if (!hits_ok) std::cerr << "FAIL: cache served no hits\n";
  if (!exact_ok) std::cerr << "FAIL: non-exact answers\n";
  if (!speed_ok) {
    std::cerr << "FAIL: speedup " << speedup << "x below target "
              << target_speedup << "x\n";
  }
  return (mismatches == 0 && hits_ok && exact_ok && speed_ok && json_ok) ? 0
                                                                         : 1;
}
