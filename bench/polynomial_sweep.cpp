// E23 — reliability polynomial via the decomposition: answering R(p) for
// MANY uniform failure probabilities. Compares one polynomial build +
// cheap evaluations against re-running the exact solver per p, and
// against the naive polynomial (2^|E| enumeration) where feasible.

#include <algorithm>
#include <iostream>

#include "bench_harness.hpp"
#include "streamrel/streamrel.hpp"
#include "streamrel/util/cli.hpp"
#include "streamrel/util/stopwatch.hpp"
#include "streamrel/util/table.hpp"

using namespace streamrel;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  bench::BenchReport record("polynomial_sweep");
  const int sweep_points = static_cast<int>(args.get_int("points", 50));

  Xoshiro256 rng(4096);
  ClusteredParams params;
  params.nodes_s = 6;
  params.nodes_t = 6;
  params.extra_edges_s = 5;
  params.extra_edges_t = 5;
  params.bottleneck_links = 2;
  params.bottleneck_caps = {2, 2};
  GeneratedNetwork g = clustered_bottleneck(rng, params);
  const FlowDemand demand{g.source, g.sink, 2};
  const BottleneckPartition partition =
      partition_from_sides(g.net, g.source, g.sink, g.side_s);

  std::cout << "E23: R(p) sweep over " << sweep_points << " points on a "
            << g.net.num_edges() << "-link two-cluster network (d = 2)\n\n";

  Stopwatch sw;
  const auto poly = polynomial_bottleneck(g.net, demand, partition);
  const double build_ms = sw.elapsed_ms();
  sw.reset();
  double sink = 0.0;
  for (int i = 0; i < sweep_points; ++i) {
    sink += poly.evaluate(0.9 * (i + 1) / (sweep_points + 1));
  }
  const double eval_ms = sw.elapsed_ms();

  sw.reset();
  for (int i = 0; i < sweep_points; ++i) {
    const double p = 0.9 * (i + 1) / (sweep_points + 1);
    for (EdgeId id = 0; id < g.net.num_edges(); ++id) {
      g.net.set_failure_prob(id, p);
    }
    sink += reliability_bottleneck(g.net, demand, partition).reliability;
  }
  const double rerun_ms = sw.elapsed_ms();

  sw.reset();
  const auto naive_poly = reliability_polynomial(g.net, demand);
  const double naive_build_ms = sw.elapsed_ms();
  (void)naive_poly;
  if (sink < 0) std::cout << sink;  // keep the work observable

  TextTable table({"approach", "one-time build (ms)", "sweep (ms)",
                   "total (ms)"});
  table.new_row()
      .add_cell("polynomial via decomposition")
      .add_cell(build_ms, 4)
      .add_cell(eval_ms, 4)
      .add_cell(build_ms + eval_ms, 4);
  table.new_row()
      .add_cell("re-run decomposition per p")
      .add_cell(0.0, 4)
      .add_cell(rerun_ms, 4)
      .add_cell(rerun_ms, 4);
  table.new_row()
      .add_cell("naive polynomial (2^|E|)")
      .add_cell(naive_build_ms, 4)
      .add_cell(eval_ms, 4)
      .add_cell(naive_build_ms + eval_ms, 4);
  table.print(std::cout);

  record.metric("decomposition_build_ms", build_ms)
      .metric("decomposition_sweep_ms", eval_ms)
      .metric("rerun_ms", rerun_ms)
      .metric("naive_build_ms", naive_build_ms);
  std::cout << "\nSample of the curve:\n";
  TextTable curve({"p", "R(p)"});
  for (double p : {0.02, 0.1, 0.2, 0.35, 0.5, 0.7}) {
    curve.new_row().add_cell(p, 3).add_cell(poly.evaluate(p), 8);
  }
  curve.print(std::cout);
  std::cout << "\nExpected shape: the decomposition-built polynomial costs "
               "one decomposition, then answers every p for microseconds; "
               "re-running scales with sweep size; the naive build pays "
               "2^|E|.\n";
  const bool json_ok = bench::write_if_requested(record, args);
  return json_ok ? 0 : 1;
}
