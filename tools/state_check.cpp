// state_check — offline validator for a --state-dir durable state root
// (docs/PERSISTENCE.md). Walks every tenant/network store under the
// root and loads it read-only (no tail repair, no fd kept open):
// snapshot magic + version + per-section checksums, journal header and
// per-record checksums, sequence continuity and delta replayability are
// all exercised by the same persist::SessionStore::load path the daemon
// boots through — what passes here restores there.
//
//   state_check STATE_DIR [--min-sessions N] [--verbose]
//
// Exit status: 0 when every enumerated store loads cleanly AND at least
// --min-sessions (default 0) stores were found; 1 on any corrupt or
// unreadable store, a missing root, or too few sessions. A torn journal
// tail is CORRUPT here (exit 1): the daemon repairs it on open, but an
// offline check must not mutate the state dir, and CI wants to know the
// last append was incomplete.

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "streamrel/persist/store.hpp"
#include "streamrel/util/cli.hpp"

using namespace streamrel;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (args.positional().empty()) {
    std::cerr << "usage: state_check STATE_DIR [--min-sessions N] "
                 "[--verbose]\n";
    return 1;
  }
  const std::string root = args.positional().front();
  const std::size_t min_sessions =
      static_cast<std::size_t>(args.get_int("min-sessions", 0));
  const bool verbose = args.get_bool("verbose");

  const StateDir state(root);
  const std::vector<StateDir::Entry> entries = state.enumerate();
  std::size_t ok = 0;
  std::size_t bad = 0;
  std::uint64_t wal_records = 0;
  std::uint64_t replayed = 0;

  for (const StateDir::Entry& entry : entries) {
    StoreOptions options;
    options.fsync = false;
    options.repair = false;  // read-only: never truncate a torn tail
    SessionStore store(entry.path, options);
    RestoredSession restored;
    std::string error;
    const StoreStatus status = store.load(restored, &error);
    const std::string key = entry.tenant + "/" + entry.network_id;
    if (status == StoreStatus::kOk && restored.torn_bytes == 0) {
      ++ok;
      wal_records += store.stats().wal_records;
      replayed += restored.replayed_deltas;
      if (verbose) {
        std::cout << "ok      " << key << ": " << restored.net.num_nodes()
                  << " nodes, " << restored.net.num_edges() << " edges, "
                  << store.stats().wal_records << " journal record(s), "
                  << restored.replayed_deltas << " replayed\n";
      }
    } else if (status == StoreStatus::kOk) {
      ++bad;
      std::cout << "corrupt " << key << ": torn journal tail ("
                << restored.torn_bytes << " trailing byte(s) incomplete)\n";
    } else {
      ++bad;
      std::cout << "corrupt " << key << ": "
                << (error.empty() ? std::string(to_string(status)) : error)
                << "\n";
    }
  }

  std::cout << "state_check: " << ok << " ok, " << bad << " corrupt, "
            << wal_records << " journal record(s), " << replayed
            << " replayed delta(s) under '" << root << "'\n";
  if (bad > 0) return 1;
  if (ok < min_sessions) {
    std::cerr << "error: found " << ok << " valid session(s), need at least "
              << min_sessions << "\n";
    return 1;
  }
  return 0;
}
