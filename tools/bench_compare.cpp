// Diffs two schema-versioned bench records (bench_harness.hpp) and fails
// when the new run regressed. CI's perf gate runs a bench twice — once on
// the base commit, once on the head — and pipes both BENCH_*.json files
// through this tool:
//
//   bench_compare BENCH_old.json BENCH_new.json [--threshold=0.30]
//                 [--floor=key:value,key:value,...]
//                 [--ceil=key:value,key:value,...]
//
// Comparison rules, applied per metric key present in BOTH records:
//   * keys ending in "_ms" (wall times): fail when new > old * (1 + t),
//     where t is --threshold (default 0.30 — benches share CI machines,
//     so small ratios just measure noise);
//   * boolean metrics: fail on any true -> false flip (these encode
//     invariants like "identical": bitwise-equal side arrays);
//   * keys under "trace." (span counters guarding the zero-copy side
//     views): fail on any increase of a "*copies" counter above zero;
//   * keys ending in "_coverage" (fractions of work answered by a fast
//     path, e.g. the slab sweep's word-wide decisions) and keys ending
//     in "_survival_rate" (fraction of cached artifacts a churn replay
//     kept alive across deltas): fail when new < old * (1 - t) — a drop
//     silently shifts work onto the slow path and shows up as a perf
//     regression one commit later;
//   * keys ending in "_series_count" (metric-registry cardinality): fail
//     when new > old * 2 — a label accidentally carrying an unbounded
//     value (request id, timestamp) doubles the series set long before
//     it takes down a Prometheus server;
//   * everything else (call counts, sizes, seeds) is informational.
// Metrics present in only one record are reported but never fatal —
// benches grow columns across commits.
//
// --floor adds absolute gates on the NEW record, independent of the old
// run: "replay.artifact_survival_rate:0.5" fails when the metric is
// missing, non-numeric, or below 0.5. Use it for invariants with a
// physical meaning (a minimum speedup, a survival rate) where "no worse
// than the base commit" is too weak a promise. --ceil is the mirror
// image — an absolute upper bound on the NEW record
// ("server.scrape_ms:5" fails when the metric is missing, non-numeric,
// or above 5) for latencies with a hard budget.

#include <fstream>
#include <limits>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "streamrel/util/cli.hpp"
#include "streamrel/util/json.hpp"

using namespace streamrel;

namespace {

struct BenchRecord {
  std::string bench;
  std::string git;
  JsonValue metrics;
};

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

struct Gate {
  std::string key;
  double value = 0.0;
};

/// Parses "key:value,key:value" from --floor / --ceil. Keys contain
/// dots, so the split is on the LAST ':' of each comma-separated
/// element. `flag` only labels the parse error.
std::vector<Gate> parse_gates(const std::string& spec,
                              const std::string& flag) {
  std::vector<Gate> gates;
  std::size_t start = 0;
  while (start < spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(start, end - start);
    const std::size_t colon = item.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= item.size()) {
      throw std::runtime_error("bad " + flag + " element '" + item +
                               "' (want key:value)");
    }
    Gate gate;
    gate.key = item.substr(0, colon);
    gate.value = std::stod(item.substr(colon + 1));
    gates.push_back(std::move(gate));
    start = end + 1;
  }
  return gates;
}

BenchRecord load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const JsonValue doc = parse_json(buf.str());

  const JsonValue* schema = doc.find("schema_version");
  if (schema == nullptr || !schema->is_number()) {
    throw std::runtime_error(path + ": not a bench_harness record "
                                    "(missing schema_version)");
  }
  if (schema->as_number() != 1.0) {
    throw std::runtime_error(path + ": unsupported schema_version " +
                             std::to_string(schema->as_number()));
  }
  const JsonValue* bench = doc.find("bench");
  const JsonValue* metrics = doc.find("metrics");
  if (bench == nullptr || !bench->is_string() || metrics == nullptr ||
      !metrics->is_object()) {
    throw std::runtime_error(path + ": malformed record");
  }
  BenchRecord record;
  record.bench = bench->as_string();
  const JsonValue* git = doc.find("git");
  record.git = (git != nullptr && git->is_string()) ? git->as_string() : "?";
  record.metrics = *metrics;
  return record;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (args.positional().size() != 2) {
    std::cerr << "usage: bench_compare OLD.json NEW.json [--threshold=0.30] "
                 "[--floor=key:value,...] [--ceil=key:value,...]\n";
    return 2;
  }
  const double threshold = args.get_double("threshold", 0.30);

  BenchRecord old_run;
  BenchRecord new_run;
  std::vector<Gate> floors;
  std::vector<Gate> ceils;
  try {
    old_run = load(args.positional()[0]);
    new_run = load(args.positional()[1]);
    floors = parse_gates(args.get("floor", ""), "--floor");
    ceils = parse_gates(args.get("ceil", ""), "--ceil");
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  if (old_run.bench != new_run.bench) {
    std::cerr << "error: comparing different benches ('" << old_run.bench
              << "' vs '" << new_run.bench << "')\n";
    return 2;
  }

  std::cout << "bench " << old_run.bench << ": " << old_run.git << " -> "
            << new_run.git << " (threshold +" << threshold * 100.0 << "%)\n";

  int regressions = 0;
  for (const auto& [key, old_value] : old_run.metrics.as_object()) {
    const JsonValue* new_value = new_run.metrics.find(key);
    if (new_value == nullptr) {
      std::cout << "  ~ " << key << ": dropped in new run\n";
      continue;
    }

    if (old_value.is_bool() && new_value->is_bool()) {
      if (old_value.as_bool() && !new_value->as_bool()) {
        std::cout << "  ! " << key << ": true -> false (invariant broken)\n";
        ++regressions;
      }
      continue;
    }
    if (!old_value.is_number() || !new_value->is_number()) continue;
    const double before = old_value.as_number();
    const double after = new_value->as_number();

    if (ends_with(key, "_ms")) {
      if (after > before * (1.0 + threshold)) {
        std::cout << "  ! " << key << ": " << before << " -> " << after
                  << " ms (+"
                  << (before > 0.0 ? (after / before - 1.0) * 100.0
                                   : std::numeric_limits<double>::infinity())
                  << "%)\n";
        ++regressions;
      }
      continue;
    }
    if (starts_with(key, "trace.") && ends_with(key, "copies")) {
      if (after > before && after > 0.0) {
        std::cout << "  ! " << key << ": " << before << " -> " << after
                  << " (zero-copy guarantee lost)\n";
        ++regressions;
      }
      continue;
    }
    if (ends_with(key, "_coverage") || ends_with(key, "_survival_rate")) {
      if (before > 0.0 && after < before * (1.0 - threshold)) {
        std::cout << "  ! " << key << ": " << before << " -> " << after
                  << " (-" << (1.0 - after / before) * 100.0
                  << "%, fast-path coverage lost)\n";
        ++regressions;
      }
      continue;
    }
    if (ends_with(key, "_series_count")) {
      if (after > before * 2.0) {
        std::cout << "  ! " << key << ": " << before << " -> " << after
                  << " (more than 2x, metric cardinality explosion)\n";
        ++regressions;
      }
      continue;
    }
  }
  for (const Gate& floor : floors) {
    const JsonValue* value = new_run.metrics.find(floor.key);
    if (value == nullptr || !value->is_number()) {
      std::cout << "  ! " << floor.key << ": missing from new run (floor "
                << floor.value << ")\n";
      ++regressions;
      continue;
    }
    if (value->as_number() < floor.value) {
      std::cout << "  ! " << floor.key << ": " << value->as_number()
                << " below floor " << floor.value << "\n";
      ++regressions;
    }
  }
  for (const Gate& ceil : ceils) {
    const JsonValue* value = new_run.metrics.find(ceil.key);
    if (value == nullptr || !value->is_number()) {
      std::cout << "  ! " << ceil.key << ": missing from new run (ceiling "
                << ceil.value << ")\n";
      ++regressions;
      continue;
    }
    if (value->as_number() > ceil.value) {
      std::cout << "  ! " << ceil.key << ": " << value->as_number()
                << " above ceiling " << ceil.value << "\n";
      ++regressions;
    }
  }
  for (const auto& [key, value] : new_run.metrics.as_object()) {
    static_cast<void>(value);
    if (old_run.metrics.find(key) == nullptr) {
      std::cout << "  ~ " << key << ": new metric\n";
    }
  }

  if (regressions == 0) {
    std::cout << "  ok: no regressions\n";
    return 0;
  }
  std::cout << "  " << regressions << " regression(s)\n";
  return 1;
}
