// Compiled with -I include ONLY (see src/CMakeLists.txt): proves the
// installed public surface is self-contained — no public header may
// include an src/-internal header, or this TU fails to compile.

#include <streamrel/streamrel.hpp>

static_assert(STREAMREL_API_VERSION >= 6, "stale public surface");

namespace {

// Touch the load-bearing entry points so the umbrella cannot degrade
// into a header that parses but declares nothing.
[[maybe_unused]] streamrel::SolveReport (*const kSolve)(
    const streamrel::FlowNetwork&, const streamrel::FlowDemand&,
    const streamrel::SolveOptions&) = &streamrel::compute_reliability;

// The compiled-snapshot surface (API v4) and the promoted max-flow
// reference solvers must be reachable from the installed tree alone.
[[maybe_unused]] std::shared_ptr<const streamrel::CompiledNetwork> (
    streamrel::FlowNetwork::*const kCompile)() const =
    &streamrel::FlowNetwork::compile;
[[maybe_unused]] constexpr std::size_t kSolverSizes =
    sizeof(streamrel::EdmondsKarpSolver) + sizeof(streamrel::PushRelabelSolver);

// The wire schema (API v5) must be reachable from the installed tree.
[[maybe_unused]] streamrel::WireRequest (*const kParseWire)(
    std::string_view) = &streamrel::parse_wire_request;
static_assert(streamrel::kWireSchemaVersion >= 1, "wire schema regressed");

}  // namespace
