// Offline analysis of a trace written by `reliability_cli --trace` (or
// any Tracer::export_chrome_json_to_file() output): aggregates the
// Chrome trace-events into a per-phase SELF-TIME table — each span's
// duration minus the time spent in spans nested inside it on the same
// thread — so the hot phase is visible even when spans wrap each other
// (compute_reliability > build_side_array > side_sweep_shard > maxflow).
//
//   trace_report trace.json [--telemetry report.json] [--csv] [--top N]
//
// Accepts any of:
//   * a single Chrome trace object {"traceEvents": [...]} — the classic
//     Tracer export and the flight recorder's PREFIX.trace.json;
//   * a bare JSON array of trace events (Chrome's array format);
//   * a per-request trace BUNDLE: several trace documents concatenated
//     in one file (one per line or back to back), as produced by
//     dumping TraceCapture spans request by request.
// Documents and pids are kept apart when computing self time — spans
// from different requests never nest into each other even when their
// timestamps overlap.
//
// --telemetry merges a solve report produced by `reliability_cli --json`
// (either the whole report object or a bare telemetry tree): its
// counters and timers are flattened into a second table so one document
// answers both "where did the time go" (spans) and "what did the solver
// do" (counters). See docs/OBSERVABILITY.md.

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <iterator>
#include <map>
#include <numeric>
#include <string>
#include <tuple>
#include <vector>

#include "streamrel/util/cli.hpp"
#include "streamrel/util/json.hpp"
#include "streamrel/util/table.hpp"

using namespace streamrel;

namespace {

struct SpanRow {
  std::string name;
  std::string category;
  /// Dense containment-lane id: one lane per (document, pid, tid), so
  /// self-time nesting never crosses requests in a bundle.
  std::uint64_t lane = 0;
  double ts_us = 0.0;
  double dur_us = 0.0;
};

struct PhaseAgg {
  std::uint64_t count = 0;
  double total_us = 0.0;
  double self_us = 0.0;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("cannot open '" + path + "'");
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

/// Assigns a dense lane per (document, pid, tid) and appends the
/// document's complete events to `spans`.
void load_spans(const JsonValue& events, std::size_t doc_index,
                std::map<std::tuple<std::size_t, double, double>,
                         std::uint64_t>& lanes,
                std::vector<SpanRow>& spans) {
  for (const JsonValue& e : events.as_array()) {
    const JsonValue* ph = e.find("ph");
    if (!ph || ph->as_string() != "X") continue;  // only complete events
    SpanRow row;
    row.name = e.find("name") ? e.find("name")->as_string() : "?";
    if (const JsonValue* cat = e.find("cat")) row.category = cat->as_string();
    double pid = 0.0;
    double tid = 0.0;
    if (const JsonValue* p = e.find("pid")) pid = p->as_number();
    if (const JsonValue* t = e.find("tid")) tid = t->as_number();
    const auto [it, inserted] = lanes.try_emplace(
        std::make_tuple(doc_index, pid, tid),
        static_cast<std::uint64_t>(lanes.size()));
    row.lane = it->second;
    if (const JsonValue* ts = e.find("ts")) row.ts_us = ts->as_number();
    if (const JsonValue* dur = e.find("dur")) row.dur_us = dur->as_number();
    spans.push_back(std::move(row));
  }
}

/// The "traceEvents" array of one trace document; a bare top-level
/// array IS the events array (Chrome's array format).
const JsonValue& events_of(const JsonValue& doc) {
  if (doc.is_array()) return doc;
  const JsonValue* events = doc.find("traceEvents");
  if (!events || !events->is_array()) {
    throw std::invalid_argument("no \"traceEvents\" array");
  }
  return *events;
}

/// Loads one trace file that may hold one document or a bundle of
/// several (concatenated or one per line). Returns the spans of every
/// document, lane-separated; `documents` reports how many were found.
std::vector<SpanRow> load_bundle(const std::string& text,
                                 std::size_t& documents) {
  std::map<std::tuple<std::size_t, double, double>, std::uint64_t> lanes;
  std::vector<SpanRow> spans;
  documents = 0;
  try {
    const JsonValue doc = parse_json(text);
    load_spans(events_of(doc), documents++, lanes, spans);
    return spans;
  } catch (const std::invalid_argument&) {
    // Not a single document — fall through to bundle parsing. A
    // missing-traceEvents error also lands here and gets rethrown by
    // the per-document pass below with a document index attached.
  }
  // Bundle: split into documents one top-level value at a time. Each
  // document starts at '{' or '['; find its end by brace counting
  // outside strings (the exporters never break a string across
  // documents).
  std::size_t pos = 0;
  while (pos < text.size()) {
    while (pos < text.size() && (std::isspace(static_cast<unsigned char>(
                                     text[pos])) != 0 ||
                                 text[pos] == ',')) {
      ++pos;
    }
    if (pos >= text.size()) break;
    const std::size_t start = pos;
    int depth = 0;
    bool in_string = false;
    bool escaped = false;
    for (; pos < text.size(); ++pos) {
      const char c = text[pos];
      if (in_string) {
        if (escaped) {
          escaped = false;
        } else if (c == '\\') {
          escaped = true;
        } else if (c == '"') {
          in_string = false;
        }
        continue;
      }
      if (c == '"') {
        in_string = true;
      } else if (c == '{' || c == '[') {
        ++depth;
      } else if (c == '}' || c == ']') {
        if (--depth == 0) {
          ++pos;
          break;
        }
      }
    }
    const std::string chunk = text.substr(start, pos - start);
    try {
      const JsonValue doc = parse_json(chunk);
      load_spans(events_of(doc), documents++, lanes, spans);
    } catch (const std::exception& e) {
      throw std::invalid_argument("bundle document " +
                                  std::to_string(documents) + ": " + e.what());
    }
  }
  if (documents == 0) throw std::invalid_argument("no trace documents found");
  return spans;
}

// Self time via interval containment per thread: sort by start (ties:
// longer span first, so the parent precedes its children), keep a stack
// of open ancestors, and charge each span's duration to its nearest
// enclosing span.
std::map<std::pair<std::string, std::string>, PhaseAgg> aggregate(
    std::vector<SpanRow>& spans) {
  std::stable_sort(spans.begin(), spans.end(),
                   [](const SpanRow& a, const SpanRow& b) {
                     if (a.lane != b.lane) return a.lane < b.lane;
                     if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
                     return a.dur_us > b.dur_us;
                   });
  std::vector<double> child_us(spans.size(), 0.0);
  std::vector<std::size_t> stack;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    while (!stack.empty() &&
           (spans[stack.back()].lane != spans[i].lane ||
            spans[stack.back()].ts_us + spans[stack.back()].dur_us <=
                spans[i].ts_us)) {
      stack.pop_back();
    }
    if (!stack.empty()) child_us[stack.back()] += spans[i].dur_us;
    stack.push_back(i);
  }
  std::map<std::pair<std::string, std::string>, PhaseAgg> agg;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    PhaseAgg& slot = agg[{spans[i].name, spans[i].category}];
    slot.count += 1;
    slot.total_us += spans[i].dur_us;
    slot.self_us += std::max(0.0, spans[i].dur_us - child_us[i]);
  }
  return agg;
}

// Depth-first flatten of a telemetry tree ("side_s": {...} children
// become "side_s/..."). Non-number leaves (histogram objects) recurse
// like children.
void flatten_telemetry(const JsonValue& node, const std::string& prefix,
                       TextTable& table) {
  if (!node.is_object()) return;
  for (const auto& [key, value] : node.as_object()) {
    const std::string path = prefix.empty() ? key : prefix + "/" + key;
    if (value.is_number()) {
      table.new_row().add_cell(path).add_cell(value.as_number(), 6);
    } else if (value.is_object()) {
      flatten_telemetry(value, path, table);
    } else if (value.is_null()) {
      table.new_row().add_cell(path).add_cell("null");
    }
  }
}

int run(const CliArgs& args) {
  if (args.positional().empty()) {
    std::cerr << "usage: trace_report trace.json [--telemetry report.json] "
                 "[--csv] [--top N]\n";
    return 2;
  }
  std::size_t documents = 0;
  std::vector<SpanRow> spans =
      load_bundle(read_file(args.positional().front()), documents);
  auto agg = aggregate(spans);

  // Rank by self time: that is the column that tells you where the
  // wall-clock actually went.
  std::vector<std::pair<std::pair<std::string, std::string>, PhaseAgg>> rows(
      agg.begin(), agg.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.self_us > b.second.self_us;
  });
  const double self_sum = std::accumulate(
      rows.begin(), rows.end(), 0.0,
      [](double acc, const auto& r) { return acc + r.second.self_us; });
  const auto top = static_cast<std::size_t>(
      args.get_int("top", static_cast<std::int64_t>(rows.size())));

  TextTable table(
      {"span", "category", "count", "total_ms", "self_ms", "self_%"});
  for (std::size_t i = 0; i < rows.size() && i < top; ++i) {
    const auto& [key, phase] = rows[i];
    table.new_row()
        .add_cell(key.first)
        .add_cell(key.second)
        .add_cell(phase.count)
        .add_cell(phase.total_us / 1000.0, 4)
        .add_cell(phase.self_us / 1000.0, 4)
        .add_cell(self_sum > 0.0 ? 100.0 * phase.self_us / self_sum : 0.0, 3);
  }
  const bool csv = args.get_bool("csv");
  if (csv) {
    table.print_csv(std::cout);
  } else {
    std::cout << spans.size() << " spans in " << documents
              << (documents == 1 ? " document, " : " documents, ")
              << format_double(self_sum / 1000.0, 4)
              << " ms total self time\n";
    table.print(std::cout);
  }

  if (args.has("telemetry")) {
    const JsonValue report = parse_json(read_file(args.get("telemetry", "")));
    // Accept a full --json solve report or a bare telemetry object.
    const JsonValue* telemetry = report.find("telemetry");
    if (!telemetry) telemetry = &report;
    TextTable counters({"telemetry_key", "value"});
    flatten_telemetry(*telemetry, "", counters);
    if (csv) {
      counters.print_csv(std::cout);
    } else {
      std::cout << "\ntelemetry (flattened):\n";
      counters.print(std::cout);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(CliArgs(argc, argv));
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
