// CI validator for wire-protocol response streams: every line of a
// JSONL file (or stdin) must be a well-formed response envelope
// (api/wire.hpp) — correct schema version, an echoed id, an "ok" bool,
// and a "result" object or an "error" {code, message} to match.
//
//   wire_check [responses.jsonl] [--expect N] [--min-ok N]
//
// Exit 0 and a one-line summary on success; exit 1 with the first
// failed check on stderr otherwise.

#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>

#include "streamrel/api/wire.hpp"
#include "streamrel/util/cli.hpp"

using namespace streamrel;

namespace {

int fail(std::uint64_t line_no, const std::string& message) {
  std::cerr << "wire_check: line " << line_no << ": " << message << "\n";
  return 1;
}

int run(const CliArgs& args) {
  std::ifstream file;
  std::istream* in = &std::cin;
  if (!args.positional().empty()) {
    const std::string& path = args.positional().front();
    file.open(path);
    if (!file) {
      std::cerr << "wire_check: cannot open '" << path << "'\n";
      return 1;
    }
    in = &file;
  }

  std::uint64_t total = 0;
  std::uint64_t ok_count = 0;
  std::uint64_t line_no = 0;
  std::string line;
  while (std::getline(*in, line)) {
    ++line_no;
    if (line.empty()) continue;
    ++total;

    JsonValue doc;
    try {
      doc = parse_json(line);
    } catch (const std::exception& e) {
      return fail(line_no, "malformed JSON: " + std::string(e.what()));
    }
    if (!doc.is_object()) return fail(line_no, "response is not an object");

    const JsonValue* v = doc.find("v");
    if (!v || !v->is_number() ||
        static_cast<int>(v->as_number()) != kWireSchemaVersion) {
      return fail(line_no, "missing or wrong \"v\"");
    }
    if (!doc.find("id")) return fail(line_no, "missing \"id\"");
    const JsonValue* ok = doc.find("ok");
    if (!ok || !ok->is_bool()) return fail(line_no, "missing \"ok\" bool");
    if (ok->as_bool()) {
      const JsonValue* result = doc.find("result");
      if (!result || !result->is_object()) {
        return fail(line_no, "ok response without a \"result\" object");
      }
      ++ok_count;
    } else {
      const JsonValue* error = doc.find("error");
      if (!error || !error->is_object()) {
        return fail(line_no, "error response without an \"error\" object");
      }
      const JsonValue* code = error->find("code");
      const JsonValue* message = error->find("message");
      if (!code || !code->is_string() || !message || !message->is_string()) {
        return fail(line_no, "error object needs string code and message");
      }
    }
  }

  const std::int64_t expect = args.get_int("expect", -1);
  if (expect >= 0 && total != static_cast<std::uint64_t>(expect)) {
    std::cerr << "wire_check: expected " << expect << " responses, got "
              << total << "\n";
    return 1;
  }
  const std::int64_t min_ok = args.get_int("min-ok", -1);
  if (min_ok >= 0 && ok_count < static_cast<std::uint64_t>(min_ok)) {
    std::cerr << "wire_check: expected >= " << min_ok
              << " ok responses, got " << ok_count << "\n";
    return 1;
  }

  std::cout << "ok: " << total << " responses, " << ok_count << " ok, "
            << (total - ok_count) << " errors\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  try {
    return run(args);
  } catch (const std::exception& e) {
    std::cerr << "wire_check: " << e.what() << "\n";
    return 1;
  }
}
