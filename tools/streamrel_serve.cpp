// The reliability service daemon: multi-tenant QuerySession serving
// over the versioned wire schema (api/wire.hpp, docs/SERVER.md).
//
//   streamrel_serve [--port N] [--bind ADDR] [--stdio]
//                   [--workers N] [--bulk-share N] [--max-queue N]
//                   [--memory-cap N] [--interactive-budget-ms MS]
//                   [--bulk-budget-ms MS] [--metrics-interval-ms MS]
//
// --stdio serves newline-delimited JSON on stdin/stdout (the CI smoke
// job and scripting mode); otherwise a TCP listener on --bind:--port
// (port 0 picks an ephemeral port, printed on startup). SIGINT/SIGTERM
// and the "shutdown" verb stop the daemon after in-flight work drains.
// --memory-cap is the global mask-table budget shared by all sessions;
// --metrics-interval-ms > 0 prints a periodic stats line to stderr.

#include <chrono>
#include <condition_variable>
#include <iostream>
#include <mutex>
#include <thread>

#include "streamrel/server/transport.hpp"
#include "streamrel/util/cli.hpp"

using namespace streamrel;

namespace {

int run(const CliArgs& args) {
  ServiceOptions options;
  options.global_mask_tables =
      static_cast<std::size_t>(args.get_int("memory-cap", 256));
  options.interactive_budget_ms =
      args.get_double("interactive-budget-ms", 0.0);
  options.bulk_budget_ms = args.get_double("bulk-budget-ms", 0.0);
  options.scheduler.workers = static_cast<int>(args.get_int("workers", 4));
  options.scheduler.bulk_share =
      static_cast<int>(args.get_int("bulk-share", 2));
  options.scheduler.max_queue =
      static_cast<std::size_t>(args.get_int("max-queue", 256));
  options.start_workers = true;
  ReliabilityService service(options);

  const double metrics_interval_ms =
      args.get_double("metrics-interval-ms", 0.0);
  std::mutex metrics_mu;
  std::condition_variable metrics_cv;
  bool metrics_stop = false;
  std::thread metrics_thread;
  if (metrics_interval_ms > 0.0) {
    metrics_thread = std::thread([&] {
      std::unique_lock<std::mutex> lock(metrics_mu);
      while (!metrics_stop) {
        metrics_cv.wait_for(
            lock, std::chrono::duration<double, std::milli>(
                      metrics_interval_ms),
            [&] { return metrics_stop; });
        if (metrics_stop) break;
        lock.unlock();
        std::cerr << "metrics " << service.stats_json() << "\n";
        lock.lock();
      }
    });
  }
  const auto stop_metrics = [&] {
    if (!metrics_thread.joinable()) return;
    {
      const std::lock_guard<std::mutex> lock(metrics_mu);
      metrics_stop = true;
    }
    metrics_cv.notify_all();
    metrics_thread.join();
  };

  if (args.get_bool("stdio")) {
    const StreamServeResult result =
        serve_stream(service, std::cin, std::cout);
    stop_metrics();
    std::cerr << "served " << result.lines << " requests, "
              << result.responses << " responses"
              << (result.shutdown ? " (shutdown verb)" : "") << "\n";
    return 0;
  }

  TcpServerOptions tcp;
  tcp.bind_address = args.get("bind", "127.0.0.1");
  tcp.port = static_cast<std::uint16_t>(args.get_int("port", 0));
  tcp.shutdown_fd = install_signal_shutdown_pipe();
  try {
    TcpServer server(service, tcp);
    std::cerr << "streamrel_serve listening on " << tcp.bind_address << ":"
              << server.port() << "\n";
    server.run();
  } catch (const std::exception& e) {
    stop_metrics();
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  stop_metrics();
  std::cerr << "streamrel_serve: stopped\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  try {
    return run(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
