// The reliability service daemon: multi-tenant QuerySession serving
// over the versioned wire schema (api/wire.hpp, docs/SERVER.md).
//
//   streamrel_serve [--port N] [--bind ADDR] [--stdio]
//                   [--workers N] [--bulk-share N] [--max-queue N]
//                   [--max-inflight N] [--memory-cap N]
//                   [--interactive-budget-ms MS] [--bulk-budget-ms MS]
//                   [--state-dir DIR] [--wal-compact N] [--no-state-fsync]
//                   [--metrics-interval-ms MS] [--metrics-out FILE]
//                   [--log-json[=FILE]] [--flight-capacity N]
//                   [--flight-out PREFIX]
//
// --stdio serves newline-delimited JSON on stdin/stdout (the CI smoke
// job and scripting mode); otherwise a TCP listener on --bind:--port
// (port 0 picks an ephemeral port, printed on startup). SIGINT/SIGTERM
// and the "shutdown" verb stop the daemon after in-flight work drains.
// --memory-cap is the global mask-table budget shared by all sessions.
//
// Observability (docs/OBSERVABILITY.md):
//   --metrics-interval-ms > 0  prints a periodic stats line to stderr
//                              and drives the --metrics-out self-scrape
//   --metrics-out FILE         Prometheus text written atomically every
//                              interval (default 5 s) and at exit — the
//                              headless scrape for node_exporter-style
//                              textfile collection
//   --log-json[=FILE]          one JSON line per finished request, to
//                              stderr or FILE
//   --flight-capacity N        flight-recorder ring size (default 256)
//   --flight-out PREFIX        SIGUSR1 dumps PREFIX.jsonl +
//                              PREFIX.trace.json (default
//                              "streamrel_flight"); the `dump` verb
//                              does the same on demand
// A live TCP daemon also answers `GET /metrics` on the wire port.
//
// Durability (docs/PERSISTENCE.md):
//   --state-dir DIR       durable session state: restore every loadable
//                         store on boot (corrupt stores cold-start with
//                         a warning, never a crash), checkpoint on
//                         register/shutdown, journal every apply_delta
//   --wal-compact N       journal records per session before an inline
//                         compaction checkpoint (default 64)
//   --no-state-fsync      skip fsync/fdatasync on the durability path
//                         (benchmarks; crash durability is lost)
// --max-inflight caps requests one connection may pipeline before the
// transport answers `overloaded` without entering the service
// (default 64, 0 = uncapped).

#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <thread>

#include "streamrel/server/transport.hpp"
#include "streamrel/util/cli.hpp"

using namespace streamrel;

namespace {

/// Write-then-rename so a scraper never reads a half-written file.
bool write_metrics_file(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out) return false;
    out << text;
    if (!out) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

int run(const CliArgs& args) {
  ServiceOptions options;
  options.global_mask_tables =
      static_cast<std::size_t>(args.get_int("memory-cap", 256));
  options.interactive_budget_ms =
      args.get_double("interactive-budget-ms", 0.0);
  options.bulk_budget_ms = args.get_double("bulk-budget-ms", 0.0);
  options.scheduler.workers = static_cast<int>(args.get_int("workers", 4));
  options.scheduler.bulk_share =
      static_cast<int>(args.get_int("bulk-share", 2));
  options.scheduler.max_queue =
      static_cast<std::size_t>(args.get_int("max-queue", 256));
  options.start_workers = true;
  options.flight_capacity =
      static_cast<std::size_t>(args.get_int("flight-capacity", 256));
  options.state_dir = args.get("state-dir", "");
  options.wal_compact_threshold =
      static_cast<std::size_t>(args.get_int("wal-compact", 64));
  options.state_fsync = !args.get_bool("no-state-fsync");
  const std::size_t max_inflight =
      static_cast<std::size_t>(args.get_int("max-inflight", 64));

  std::ofstream log_file;
  if (args.has("log-json")) {
    const std::string log_path = args.get("log-json", "");
    if (log_path.empty()) {
      options.request_log = &std::cerr;
    } else {
      log_file.open(log_path, std::ios::app);
      if (!log_file) {
        std::cerr << "error: cannot open --log-json file '" << log_path
                  << "'\n";
        return 1;
      }
      options.request_log = &log_file;
    }
  }

  ReliabilityService service(options);
  if (!options.state_dir.empty()) {
    const BootRestoreReport& boot = service.boot_restore();
    for (const std::string& warning : boot.warnings) {
      std::cerr << "warning: " << warning << "\n";
    }
    std::cerr << "state: restored " << boot.restored << " session(s) from '"
              << options.state_dir << "' (" << boot.replayed_deltas
              << " journaled delta(s) replayed";
    if (boot.corrupt > 0) {
      std::cerr << ", " << boot.corrupt << " store(s) refused as corrupt";
    }
    std::cerr << ")\n";
  }

  const std::string metrics_out = args.get("metrics-out", "");
  double metrics_interval_ms = args.get_double("metrics-interval-ms", 0.0);
  // --metrics-out without an explicit interval still wants a periodic
  // self-scrape; 5 s is the Prometheus-default-adjacent cadence.
  if (!metrics_out.empty() && metrics_interval_ms <= 0.0) {
    metrics_interval_ms = 5000.0;
  }
  const bool stats_line = args.get_double("metrics-interval-ms", 0.0) > 0.0;

  std::mutex metrics_mu;
  std::condition_variable metrics_cv;
  bool metrics_stop = false;
  std::thread metrics_thread;
  if (metrics_interval_ms > 0.0) {
    metrics_thread = std::thread([&] {
      std::unique_lock<std::mutex> lock(metrics_mu);
      while (!metrics_stop) {
        metrics_cv.wait_for(
            lock, std::chrono::duration<double, std::milli>(
                      metrics_interval_ms),
            [&] { return metrics_stop; });
        if (metrics_stop) break;
        lock.unlock();
        if (stats_line) std::cerr << "metrics " << service.stats_json() << "\n";
        if (!metrics_out.empty() &&
            !write_metrics_file(metrics_out, service.metrics_text())) {
          std::cerr << "warning: cannot write --metrics-out '" << metrics_out
                    << "'\n";
        }
        lock.lock();
      }
    });
  }
  const auto stop_metrics = [&] {
    if (metrics_thread.joinable()) {
      {
        const std::lock_guard<std::mutex> lock(metrics_mu);
        metrics_stop = true;
      }
      metrics_cv.notify_all();
      metrics_thread.join();
    }
    // Final scrape at exit, so short-lived runs still leave a file.
    if (!metrics_out.empty() &&
        !write_metrics_file(metrics_out, service.metrics_text())) {
      std::cerr << "warning: cannot write --metrics-out '" << metrics_out
                << "'\n";
    }
  };

  // SIGUSR1 -> flight-recorder bundle, via a self-pipe watcher thread
  // (never from the signal handler itself).
  const std::string flight_out = args.get("flight-out", "streamrel_flight");
  const int usr1_fd = install_sigusr1_pipe();
  std::thread flight_thread;
  if (usr1_fd >= 0) {
    flight_thread = std::thread([&service, usr1_fd, flight_out] {
      char byte;
      while (::read(usr1_fd, &byte, 1) == 1) {
        if (service.flight_recorder().dump_to_files(flight_out)) {
          std::cerr << "flight recorder dumped to " << flight_out
                    << ".jsonl + " << flight_out << ".trace.json\n";
        } else {
          std::cerr << "warning: cannot write flight bundle to '" << flight_out
                    << "'\n";
        }
      }
    });
    flight_thread.detach();  // blocked on the pipe for process lifetime
  }

  if (args.get_bool("stdio")) {
    StreamServeOptions stream;
    stream.max_inflight = max_inflight;
    const StreamServeResult result =
        serve_stream(service, std::cin, std::cout, stream);
    stop_metrics();
    std::cerr << "served " << result.lines << " requests, "
              << result.responses << " responses"
              << (result.shutdown ? " (shutdown verb)" : "") << "\n";
    return 0;
  }

  TcpServerOptions tcp;
  tcp.bind_address = args.get("bind", "127.0.0.1");
  tcp.port = static_cast<std::uint16_t>(args.get_int("port", 0));
  tcp.max_inflight = max_inflight;
  tcp.shutdown_fd = install_signal_shutdown_pipe();
  try {
    TcpServer server(service, tcp);
    std::cerr << "streamrel_serve listening on " << tcp.bind_address << ":"
              << server.port() << "\n";
    server.run();
  } catch (const std::exception& e) {
    stop_metrics();
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  stop_metrics();
  std::cerr << "streamrel_serve: stopped\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  try {
    return run(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
