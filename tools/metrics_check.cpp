// Strict validator for Prometheus text-format exposition (the output of
// the `metrics` verb, `GET /metrics` and --metrics-out). CI's
// server-smoke job pipes the daemon's scrape through this tool so a
// malformed exposition — one a real Prometheus server would silently
// drop series from — fails the build instead of a dashboard weeks
// later.
//
//   metrics_check FILE [--require name1,name2,...]
//
// FILE is a path or "-" for stdin. Checks, per the text-format spec:
//   * every sample belongs to a family declared by a preceding
//     `# TYPE` line (samples before their TYPE are an error);
//   * counter family names end in "_total" and their samples carry no
//     extra suffix;
//   * gauge samples match their family name exactly;
//   * histogram samples are only `_bucket` (with an `le` label),
//     `_sum` and `_count`;
//   * per histogram series, `le` thresholds strictly increase, bucket
//     counts never decrease (cumulativity), the last bucket is
//     `le="+Inf"`, and its value equals the series' `_count`;
//   * no duplicate series (same name + label set twice);
//   * sample values parse as numbers.
// --require lists family names that must be present with at least one
// sample — the CI assertion that instrumentation did not silently
// disappear.
//
// Exit status: 0 valid, 1 validation errors (all listed), 2 usage.

#include <cstddef>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "streamrel/util/cli.hpp"

using namespace streamrel;

namespace {

struct Sample {
  std::string name;        ///< full sample name, suffixes included
  std::string labels;      ///< raw text between braces ("" when none)
  double value = 0.0;
  std::size_t line = 0;
};

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

/// Splits a raw label body into sorted key="value" pairs; returns false
/// on malformed syntax. `out` gets the pairs minus any key in `drop`.
bool parse_labels(std::string_view body, std::string_view drop,
                  std::map<std::string, std::string>& out,
                  std::string* dropped_value) {
  std::size_t pos = 0;
  while (pos < body.size()) {
    const std::size_t eq = body.find('=', pos);
    if (eq == std::string_view::npos) return false;
    const std::string key(body.substr(pos, eq - pos));
    if (key.empty() || eq + 1 >= body.size() || body[eq + 1] != '"') {
      return false;
    }
    std::string value;
    std::size_t i = eq + 2;
    for (; i < body.size(); ++i) {
      const char c = body[i];
      if (c == '\\') {
        if (i + 1 >= body.size()) return false;
        const char esc = body[i + 1];
        if (esc == 'n') {
          value.push_back('\n');
        } else if (esc == '\\' || esc == '"') {
          value.push_back(esc);
        } else {
          return false;  // the text format allows exactly \n, \\ and \"
        }
        ++i;
      } else if (c == '"') {
        break;
      } else {
        value.push_back(c);
      }
    }
    if (i >= body.size()) return false;  // unterminated value
    pos = i + 1;
    if (pos < body.size()) {
      if (body[pos] != ',') return false;
      ++pos;
    }
    if (key == drop) {
      if (dropped_value != nullptr) *dropped_value = value;
    } else if (!out.emplace(key, value).second) {
      return false;  // duplicate label key
    }
  }
  return true;
}

std::string canonical_labels(const std::map<std::string, std::string>& kv) {
  std::string out;
  for (const auto& [k, v] : kv) {
    out += k;
    out += '=';
    out += v;
    out += '\x1f';
  }
  return out;
}

struct BucketPoint {
  double le = 0.0;
  bool le_inf = false;
  double count = 0.0;
  std::size_t line = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (args.positional().size() != 1) {
    std::cerr << "usage: metrics_check FILE [--require name1,name2,...]\n";
    return 2;
  }

  std::string text;
  const std::string& path = args.positional().front();
  if (path == "-") {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    text = buf.str();
  } else {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "error: cannot open '" << path << "'\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    text = buf.str();
  }

  std::vector<std::string> errors;
  auto fail = [&](std::size_t line, const std::string& what) {
    errors.push_back("line " + std::to_string(line) + ": " + what);
  };

  // Pass 1: TYPE declarations and samples, in document order.
  std::map<std::string, std::string> family_type;  // name -> counter/...
  std::map<std::string, std::size_t> family_samples;
  std::vector<Sample> samples;
  std::set<std::string> seen_series;  // name + canonical labels
  std::istringstream lines(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(lines, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream meta(line);
      std::string hash;
      std::string kind;
      std::string name;
      meta >> hash >> kind >> name;
      if (kind == "TYPE") {
        std::string type;
        meta >> type;
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "untyped") {
          fail(lineno, "unknown TYPE '" + type + "' for " + name);
        }
        if (!family_type.emplace(name, type).second) {
          fail(lineno, "duplicate TYPE declaration for " + name);
        }
      }
      continue;  // HELP and comments are free-form
    }

    Sample s;
    s.line = lineno;
    const std::size_t brace = line.find('{');
    std::size_t value_start;
    if (brace != std::string::npos) {
      const std::size_t close = line.find('}', brace);
      if (close == std::string::npos) {
        fail(lineno, "unterminated label set");
        continue;
      }
      s.name = line.substr(0, brace);
      s.labels = line.substr(brace + 1, close - brace - 1);
      value_start = close + 1;
    } else {
      const std::size_t space = line.find(' ');
      if (space == std::string::npos) {
        fail(lineno, "sample without value");
        continue;
      }
      s.name = line.substr(0, space);
      value_start = space;
    }
    const std::string value_text = line.substr(value_start);
    try {
      std::size_t used = 0;
      const std::string trimmed =
          value_text.substr(value_text.find_first_not_of(' '));
      if (trimmed == "+Inf" || trimmed == "Inf") {
        s.value = std::numeric_limits<double>::infinity();
      } else {
        s.value = std::stod(trimmed, &used);
        // A trailing timestamp (integer ms) is legal; anything else is
        // not.
        for (std::size_t i = used; i < trimmed.size(); ++i) {
          const char c = trimmed[i];
          if (c != ' ' && (c < '0' || c > '9') && c != '-' && c != '+') {
            throw std::invalid_argument("trailing junk");
          }
        }
      }
    } catch (const std::exception&) {
      fail(lineno, "unparseable value '" + value_text + "' for " + s.name);
      continue;
    }
    samples.push_back(std::move(s));
  }

  // Pass 2: family membership and per-sample rules.
  // Histogram cumulativity state: (series key) -> ordered buckets and
  // the _count value.
  std::map<std::string, std::vector<BucketPoint>> hist_buckets;
  std::map<std::string, std::pair<double, std::size_t>> hist_counts;
  for (const Sample& s : samples) {
    // Resolve the family: exact name, or a histogram/summary suffix.
    std::string family;
    std::string type;
    for (const std::string_view suffix :
         {std::string_view{""}, std::string_view{"_bucket"},
          std::string_view{"_sum"}, std::string_view{"_count"}}) {
      if (!ends_with(s.name, suffix)) continue;
      const std::string candidate =
          s.name.substr(0, s.name.size() - suffix.size());
      const auto it = family_type.find(candidate);
      if (it != family_type.end()) {
        // A bare match wins; suffix matches only count for histogram/
        // summary families.
        if (suffix.empty() || it->second == "histogram" ||
            it->second == "summary") {
          family = candidate;
          type = it->second;
          break;
        }
      }
    }
    if (family.empty()) {
      fail(s.line, "sample '" + s.name + "' has no preceding TYPE family");
      continue;
    }
    ++family_samples[family];

    std::map<std::string, std::string> kv;
    std::string le_value;
    if (!parse_labels(s.labels, type == "histogram" ? "le" : "", kv,
                      &le_value)) {
      fail(s.line, "malformed labels for " + s.name + " {" + s.labels + "}");
      continue;
    }
    const std::string series_key =
        s.name + "\x1e" + canonical_labels(kv) +
        (le_value.empty() ? "" : "\x1e" + le_value);
    if (!seen_series.insert(series_key).second) {
      fail(s.line, "duplicate series " + s.name + "{" + s.labels + "}");
    }

    if (type == "counter") {
      if (s.name != family) {
        fail(s.line, "counter sample '" + s.name +
                         "' does not match family '" + family + "'");
      }
      if (!ends_with(family, "_total")) {
        fail(s.line,
             "counter family '" + family + "' does not end in _total");
      }
      if (s.value < 0.0) {
        fail(s.line, "negative counter " + s.name);
      }
    } else if (type == "gauge") {
      if (s.name != family) {
        fail(s.line, "gauge sample '" + s.name + "' does not match family '" +
                         family + "'");
      }
    } else if (type == "histogram") {
      const std::string sub_key = family + "\x1e" + canonical_labels(kv);
      if (ends_with(s.name, "_bucket")) {
        if (le_value.empty()) {
          fail(s.line, "histogram bucket without le label: " + s.name);
          continue;
        }
        BucketPoint point;
        point.line = s.line;
        point.count = s.value;
        if (le_value == "+Inf") {
          point.le_inf = true;
        } else {
          try {
            point.le = std::stod(le_value);
          } catch (const std::exception&) {
            fail(s.line, "unparseable le=\"" + le_value + "\"");
            continue;
          }
        }
        hist_buckets[sub_key].push_back(point);
      } else if (ends_with(s.name, "_count")) {
        hist_counts[sub_key] = {s.value, s.line};
      } else if (!ends_with(s.name, "_sum")) {
        fail(s.line, "histogram sample '" + s.name +
                         "' is not _bucket/_sum/_count");
      }
    }
  }

  // Pass 3: histogram series invariants.
  for (const auto& [key, buckets] : hist_buckets) {
    const std::string display = key.substr(0, key.find('\x1e'));
    for (std::size_t i = 1; i < buckets.size(); ++i) {
      if (!buckets[i].le_inf && buckets[i - 1].le_inf) {
        fail(buckets[i].line,
             display + ": bucket after le=\"+Inf\"");
      } else if (!buckets[i].le_inf && buckets[i].le <= buckets[i - 1].le) {
        fail(buckets[i].line, display + ": le thresholds not increasing");
      }
      if (buckets[i].count < buckets[i - 1].count) {
        fail(buckets[i].line, display + ": bucket counts not cumulative");
      }
    }
    if (buckets.empty() || !buckets.back().le_inf) {
      fail(buckets.empty() ? 0 : buckets.back().line,
           display + ": missing le=\"+Inf\" bucket");
      continue;
    }
    const auto count_it = hist_counts.find(key);
    if (count_it == hist_counts.end()) {
      fail(buckets.back().line, display + ": missing _count sample");
    } else if (count_it->second.first != buckets.back().count) {
      fail(count_it->second.second,
           display + ": _count != le=\"+Inf\" bucket");
    }
  }

  // --require: named families must exist with samples.
  const std::string require = args.get("require", "");
  std::size_t start = 0;
  while (start < require.size()) {
    std::size_t end = require.find(',', start);
    if (end == std::string::npos) end = require.size();
    const std::string name = require.substr(start, end - start);
    if (!name.empty() && family_samples[name] == 0) {
      errors.push_back("required family '" + name + "' has no samples");
    }
    start = end + 1;
  }

  if (!errors.empty()) {
    for (const std::string& e : errors) std::cerr << "metrics_check: " << e
                                                  << "\n";
    std::cerr << "metrics_check: " << errors.size() << " error(s) in "
              << samples.size() << " samples\n";
    return 1;
  }
  std::cout << "metrics_check: ok (" << family_type.size() << " families, "
            << samples.size() << " samples)\n";
  return 0;
}
