// CI validator for trace files: parses the document with the in-repo
// JSON parser (no external tooling in the smoke job), checks the Chrome
// trace-event envelope, and asserts the spans CI cares about are
// actually present — a silent regression that stops emitting engine or
// sweep spans fails here, not in a human's Perfetto session.
//
//   trace_check trace.json [--min-events N] [--require name1,name2,...]
//
// Exit 0 and a one-line "ok" on success; exit 1 with the first failed
// check on stderr otherwise.

#include <cstdint>
#include <fstream>
#include <iostream>
#include <iterator>
#include <set>
#include <sstream>
#include <string>

#include "streamrel/util/cli.hpp"
#include "streamrel/util/json.hpp"

using namespace streamrel;

namespace {

int fail(const std::string& message) {
  std::cerr << "trace_check: " << message << "\n";
  return 1;
}

int run(const CliArgs& args) {
  if (args.positional().empty()) {
    std::cerr << "usage: trace_check trace.json [--min-events N] "
                 "[--require name1,name2,...]\n";
    return 2;
  }
  const std::string path = args.positional().front();
  std::ifstream in(path);
  if (!in) return fail("cannot open '" + path + "'");
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());

  JsonValue doc;
  try {
    doc = parse_json(text);
  } catch (const std::exception& e) {
    return fail("malformed JSON: " + std::string(e.what()));
  }
  if (!doc.is_object()) return fail("top level is not an object");
  const JsonValue* events = doc.find("traceEvents");
  if (!events || !events->is_array()) {
    return fail("missing \"traceEvents\" array");
  }

  std::set<std::string> names;
  std::uint64_t complete = 0;
  for (const JsonValue& e : events->as_array()) {
    if (!e.is_object()) return fail("event is not an object");
    const JsonValue* name = e.find("name");
    const JsonValue* ph = e.find("ph");
    const JsonValue* ts = e.find("ts");
    const JsonValue* dur = e.find("dur");
    const JsonValue* tid = e.find("tid");
    if (!name || !name->is_string()) return fail("event without a name");
    if (!ph || !ph->is_string() || ph->as_string() != "X") {
      return fail("event '" + name->as_string() + "' is not a complete "
                  "(ph=X) event");
    }
    if (!ts || !ts->is_number() || ts->as_number() < 0.0) {
      return fail("event '" + name->as_string() + "' has a bad ts");
    }
    if (!dur || !dur->is_number() || dur->as_number() < 0.0) {
      return fail("event '" + name->as_string() + "' has a bad dur");
    }
    if (!tid || !tid->is_number()) {
      return fail("event '" + name->as_string() + "' has no tid");
    }
    names.insert(name->as_string());
    complete += 1;
  }

  const auto min_events =
      static_cast<std::uint64_t>(args.get_int("min-events", 1));
  if (complete < min_events) {
    std::ostringstream msg;
    msg << "only " << complete << " events, need >= " << min_events;
    return fail(msg.str());
  }

  std::stringstream required(args.get("require", ""));
  std::string want;
  while (std::getline(required, want, ',')) {
    if (want.empty()) continue;
    if (names.count(want) == 0) {
      return fail("required span '" + want + "' not found");
    }
  }

  std::cout << "ok: " << complete << " events, " << names.size()
            << " distinct spans\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(CliArgs(argc, argv));
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
